//! Per-shard best-first top-k with cross-shard pruning.
//!
//! [`shard_topk`] is the scatter half of scatter-gather: the same
//! pop-and-unfold loop as [`yask_query::topk_tree_with_stats`], extended
//! with a [`SharedBound`] consulted at every node expansion and object
//! scoring. The bound carries certificates published by *other* shards'
//! searches, so a shard whose best upper bound already trails the global
//! k-th best score returns after touching only its root.
//!
//! Exactness: the bound only ever prunes entries scoring *strictly* below
//! k known real object scores, so nothing the prune discards can belong
//! to the global top-k under the workspace total order (score descending,
//! id ascending) — equal-scored candidates are kept and the gather merge
//! breaks their ties by id, exactly as a single tree would.

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use yask_index::{Augmentation, KcRTree, NodeId, NodeKind, ObjectId, RTree, TextualBound};
use yask_query::{Query, RankedObject, ScoreParams, TraversalStats};
use yask_util::Scored;

use crate::bound::SharedBound;
use crate::deadline::{Deadline, DEADLINE_STRIDE};
use crate::pool::WorkerPool;

/// Heap entry: node (keyed by score upper bound) or object (exact score).
/// Derive order puts `Node < Object`, which [`Scored`]'s tie-break turns
/// into "node pops first on an equal key" — required because the node may
/// still hold an equal-scored object with a smaller id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Entry {
    Node(NodeId),
    Object(ObjectId),
}

/// Runs the shard-local best-first top-k, pruning against `shared` and
/// publishing this shard's own best-k certificates into it. Returns the
/// shard's top-k (best-first) and its traversal counters.
pub fn shard_topk<A: Augmentation + TextualBound>(
    tree: &RTree<A>,
    params: &ScoreParams,
    q: &Query,
    shared: &SharedBound,
) -> (Vec<RankedObject>, TraversalStats) {
    let (out, stats, _) = shard_topk_bounded(tree, params, q, shared, None);
    (out, stats)
}

/// [`shard_topk`] with an optional [`Deadline`]: the expansion loop
/// consults the deadline every [`DEADLINE_STRIDE`] node expansions and,
/// once it passes, *saturates* the shared bound (raises it to `+inf`)
/// so every sibling shard's search drains through the existing
/// bound-gating prunes instead of needing its own cancellation channel.
/// The third return is `true` when the search ran to completion; a
/// `false` result is a best-effort prefix of the shard's top-k and must
/// be flagged partial by the caller.
pub fn shard_topk_bounded<A: Augmentation + TextualBound>(
    tree: &RTree<A>,
    params: &ScoreParams,
    q: &Query,
    shared: &SharedBound,
    deadline: Option<Deadline>,
) -> (Vec<RankedObject>, TraversalStats, bool) {
    let mut stats = TraversalStats::default();
    let mut out = Vec::with_capacity(q.k.min(tree.len()));
    if deadline.is_some_and(|d| d.expired()) {
        shared.raise(f64::INFINITY);
        return (out, stats, false);
    }
    let Some(root) = tree.root() else {
        return (out, stats, true);
    };
    let _guard = tree.read_guard();
    let mut heap: BinaryHeap<Scored<Entry>> = BinaryHeap::new();
    let mut seen: yask_util::TopK<ObjectId> = yask_util::TopK::new(q.k);
    let root_node = tree.node(root);
    let root_ub = params.node_upper(&root_node.mbr, root_node.aug(), q);
    if root_ub < shared.get() {
        return (out, stats, true);
    }
    heap.push(Scored::new(root_ub, Entry::Node(root)));
    stats.heap_pushes += 1;

    while let Some(top) = heap.pop() {
        if let Some(d) = deadline {
            if stats.nodes_expanded % DEADLINE_STRIDE == 0 && d.expired() {
                // Out of budget: flag the prefix partial and saturate
                // the shared bound so the sibling shards' searches
                // prune everything and drain fast.
                shared.raise(f64::INFINITY);
                return (out, stats, false);
            }
        }
        match top.item {
            Entry::Object(id) => {
                out.push(RankedObject {
                    id,
                    score: top.score.get(),
                });
                if out.len() == q.k {
                    break;
                }
            }
            Entry::Node(n) => {
                // Both bounds may have tightened while the entry was
                // queued; re-check before paying for the expansion.
                if seen.is_full() && top.score.get() < seen.threshold() {
                    continue;
                }
                if top.score.get() < shared.get() {
                    continue;
                }
                stats.nodes_expanded += 1;
                match &tree.node(n).kind {
                    NodeKind::Leaf(entries) => {
                        for &id in entries {
                            let s = params.score(tree.corpus().get(id), q);
                            stats.objects_scored += 1;
                            if s < shared.get() {
                                continue;
                            }
                            // Not retained locally ⇒ k better objects in
                            // this shard alone ⇒ out of the global top-k.
                            if seen.push(s, id) {
                                stats.heap_pushes += 1;
                                heap.push(Scored::new(s, Entry::Object(id)));
                                if seen.is_full() {
                                    shared.raise(seen.threshold());
                                }
                            }
                        }
                    }
                    NodeKind::Internal(children) => {
                        let global = shared.get();
                        for &c in children {
                            let child = tree.node(c);
                            let ub = params.node_upper(&child.mbr, child.aug(), q);
                            if (seen.is_full() && ub < seen.threshold()) || ub < global {
                                continue;
                            }
                            stats.heap_pushes += 1;
                            heap.push(Scored::new(ub, Entry::Node(c)));
                        }
                    }
                }
            }
        }
    }
    (out, stats, true)
}

/// The one scatter-gather loop both top-k entry points share (the
/// user-facing `Executor` path and the why-not fan-out's internal
/// result-set computation): fan `query` out to every shard tree on the
/// pool, gather the per-shard lists, merge. `observe` fires once per
/// gathered shard with its index, traversal counters and wall-clock (the
/// executor records them; the why-not path passes a no-op). Returns
/// `None` when any shard's result went missing (a worker died
/// mid-query) — callers fall back to an exact scan.
///
/// Under a deadline (`Some`), the second return is `true` only when
/// every shard ran its search to completion: a `false` means at least
/// one shard hit the deadline and the merged list is a best-effort
/// partial answer.
pub(crate) fn scatter_topk_bounded(
    shards: &[Arc<KcRTree>],
    pool: &WorkerPool,
    params: ScoreParams,
    query: &Query,
    deadline: Option<Deadline>,
    mut observe: impl FnMut(usize, &TraversalStats, Duration),
    on_gather: impl FnOnce(Duration),
) -> Option<(Vec<RankedObject>, bool)> {
    let bound = Arc::new(SharedBound::new());
    let expected = shards.len();
    let (tx, rx) = crossbeam::channel::unbounded();
    for (i, tree) in shards.iter().enumerate() {
        let tree = Arc::clone(tree);
        let q = query.clone();
        let bound = Arc::clone(&bound);
        let tx = tx.clone();
        // Backpressure point: at queue capacity the shard search runs
        // inline on the scatter caller instead of deepening the queue.
        pool.submit_or_run(move || {
            // Chaos hook: `error` drops this shard's reply (the gather
            // comes up short and the caller falls back to the exact
            // scan), `delay` stalls the shard, `panic` kills the
            // worker job (the pool's catch_unwind absorbs it).
            if yask_util::failpoint::eval("exec.shard") == Some(yask_util::failpoint::Action::Error)
            {
                return;
            }
            let t0 = Instant::now();
            let (result, stats, complete) = shard_topk_bounded(&tree, &params, &q, &bound, deadline);
            let _ = tx.send((i, result, stats, t0.elapsed(), complete));
        });
    }
    drop(tx);

    let mut candidates = Vec::with_capacity(expected * query.k.min(64));
    let mut gathered = 0usize;
    let mut complete = true;
    while let Ok((i, result, stats, elapsed, shard_complete)) = rx.recv() {
        observe(i, &stats, elapsed);
        candidates.extend(result);
        gathered += 1;
        complete &= shard_complete;
    }
    // The gather proper: the merge once every shard reported (waiting on
    // the slowest shard is charged to the scatter, not here).
    let t_gather = Instant::now();
    let merged = (gathered == expected).then(|| merge_topk(candidates, query.k));
    on_gather(t_gather.elapsed());
    merged.map(|m| (m, complete))
}

/// Merges per-shard top-k lists into the exact global top-k: the workspace
/// total order (score descending, id ascending) over the union, truncated
/// to `k`. Shards are disjoint, so ids never collide.
pub fn merge_topk(mut candidates: Vec<RankedObject>, k: usize) -> Vec<RankedObject> {
    candidates.sort_unstable_by(|a, b| {
        yask_util::OrderedF64(b.score)
            .cmp(&yask_util::OrderedF64(a.score))
            .then_with(|| a.id.cmp(&b.id))
    });
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::{Corpus, CorpusBuilder, KcRTree, RTreeParams};
    use yask_query::{topk_tree, Weights};
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    use crate::shard::ShardedIndex;

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(5)).map(|_| rng.below(20) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    fn random_query(rng: &mut Xoshiro256) -> Query {
        Query::with_weights(
            Point::new(rng.next_f64(), rng.next_f64()),
            KeywordSet::from_raw((0..1 + rng.below(3)).map(|_| rng.below(20) as u32)),
            1 + rng.below(12),
            Weights::from_ws(rng.range_f64(0.05, 0.95)),
        )
    }

    #[test]
    fn single_shard_with_idle_bound_matches_topk_tree() {
        let corpus = random_corpus(400, 31);
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::default());
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..25 {
            let q = random_query(&mut rng);
            let bound = SharedBound::new();
            let (got, _) = shard_topk(&tree, &params, &q, &bound);
            let want = topk_tree(&tree, &params, &q);
            assert_eq!(
                got.iter().map(|r| r.id).collect::<Vec<_>>(),
                want.iter().map(|r| r.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn sharded_merge_equals_single_tree() {
        let corpus = random_corpus(600, 32);
        let params = ScoreParams::new(corpus.space());
        let single = KcRTree::bulk_load(corpus.clone(), RTreeParams::default());
        for shards in [2, 3, 5, 8] {
            let sharded = ShardedIndex::build(corpus.clone(), shards, RTreeParams::default());
            let mut rng = Xoshiro256::seed_from_u64(2);
            for case in 0..25 {
                let q = random_query(&mut rng);
                let bound = SharedBound::new();
                let mut all = Vec::new();
                for tree in sharded.shards() {
                    all.extend(shard_topk(tree, &params, &q, &bound).0);
                }
                let got = merge_topk(all, q.k);
                let want = topk_tree(&single, &params, &q);
                assert_eq!(
                    got.iter().map(|r| r.id).collect::<Vec<_>>(),
                    want.iter().map(|r| r.id).collect::<Vec<_>>(),
                    "shards = {shards}, case = {case}, q = {q:?}"
                );
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.score - w.score).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn shared_bound_prunes_late_shards() {
        // Run the shards sequentially: once early shards have published a
        // full-k certificate, later shards expand (usually far) fewer
        // nodes than they would alone.
        let corpus = random_corpus(3000, 33);
        let params = ScoreParams::new(corpus.space());
        let sharded = ShardedIndex::build(corpus.clone(), 8, RTreeParams::default());
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut with_bound = 0usize;
        let mut without = 0usize;
        for _ in 0..15 {
            let q = random_query(&mut rng);
            let bound = SharedBound::new();
            for tree in sharded.shards() {
                with_bound += shard_topk(tree, &params, &q, &bound).1.nodes_expanded;
            }
            for tree in sharded.shards() {
                let idle = SharedBound::new();
                without += shard_topk(tree, &params, &q, &idle).1.nodes_expanded;
            }
        }
        assert!(
            with_bound < without,
            "shared bound never pruned: {with_bound} vs {without}"
        );
    }

    #[test]
    fn saturated_bound_skips_everything() {
        let corpus = random_corpus(100, 34);
        let params = ScoreParams::new(corpus.space());
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::default());
        let q = Query::new(Point::new(0.5, 0.5), KeywordSet::from_raw([1]), 5);
        let bound = SharedBound::new();
        bound.raise(2.0); // above any reachable ST score
        let (res, stats) = shard_topk(&tree, &params, &q, &bound);
        assert!(res.is_empty());
        assert_eq!(stats.nodes_expanded, 0);
    }

    #[test]
    fn merge_breaks_ties_by_id() {
        let c = vec![
            RankedObject { id: ObjectId(7), score: 0.5 },
            RankedObject { id: ObjectId(3), score: 0.5 },
            RankedObject { id: ObjectId(1), score: 0.2 },
        ];
        let m = merge_topk(c, 2);
        assert_eq!(m[0].id, ObjectId(3));
        assert_eq!(m[1].id, ObjectId(7));
    }
}
