//! The executor's workload observatory: *recent* behaviour per route,
//! and *where* the demand lands.
//!
//! PR 7's counters and histograms are all since-boot; this module adds
//! the time-local view those can't give — sliding-window rates and
//! quantiles per query route (1 s / 10 s / 1 m horizons), per-STR-cell
//! query/write heat with exponential decay, and a keyword-frequency
//! sketch. Everything is recorded inline on the hot paths with the same
//! lock-free discipline as the histograms (a handful of relaxed atomic
//! ops per sample; the keyword sketch takes one short mutex per query,
//! off the per-shard fan-out). The [`WorkloadSnapshot`] feeds
//! `/debug/health`, `/debug/heatmap` and the windowed `/metrics`
//! gauges, and is the load-bearing input for load shedding and
//! workload-aware cache admission (ROADMAP item 2) without committing
//! to those policies here.

use std::time::Duration;

use yask_obs::{HeatMap, SlidingWindow, TopKSketch, WindowSnapshot};

use crate::cache::WhyNotKind;

/// Horizons exported everywhere windows appear, in seconds.
pub const WINDOW_HORIZONS_SECS: [usize; 3] = [1, 10, 60];

/// How many keywords the hot-keyword sketch tracks (error ≤ total/65).
const KEYWORD_SKETCH_CAP: usize = 64;

/// How many hot keywords a snapshot reports.
const KEYWORD_TOP_N: usize = 16;

fn kind_index(kind: WhyNotKind) -> usize {
    match kind {
        WhyNotKind::Explain => 0,
        WhyNotKind::Preference => 1,
        WhyNotKind::Keyword => 2,
        WhyNotKind::Combined => 3,
        WhyNotKind::Full => 4,
    }
}

const KIND_NAMES: [&str; 5] = ["explain", "preference", "keyword", "combined", "full"];

/// The live recording side, owned by the executor (one per process).
pub(crate) struct Workload {
    /// Uncached top-k compute latency.
    topk: SlidingWindow,
    /// Top-k cache-hit latency.
    topk_hit: SlidingWindow,
    /// Per-module why-not compute latency, indexed by [`kind_index`].
    whynot: [SlidingWindow; 5],
    /// Whole write-batch publish latency.
    writes: SlidingWindow,
    /// Query touches per STR cell (top-k and why-not demand, cache hits
    /// included — the heat map tracks demand, not compute).
    query_heat: HeatMap,
    /// Write ops routed per STR cell.
    write_heat: HeatMap,
    /// Keyword frequencies across query keyword sets.
    keywords: TopKSketch,
}

impl Workload {
    pub(crate) fn new(cells: usize, heat_half_life: Duration) -> Workload {
        Workload {
            topk: SlidingWindow::standard(),
            topk_hit: SlidingWindow::standard(),
            whynot: std::array::from_fn(|_| SlidingWindow::standard()),
            writes: SlidingWindow::standard(),
            query_heat: HeatMap::new(cells, heat_half_life),
            write_heat: HeatMap::new(cells, heat_half_life),
            keywords: TopKSketch::new(KEYWORD_SKETCH_CAP),
        }
    }

    pub(crate) fn record_topk(&self, elapsed: Duration) {
        self.topk.record(elapsed);
    }

    pub(crate) fn record_topk_hit(&self, elapsed: Duration) {
        self.topk_hit.record(elapsed);
    }

    pub(crate) fn record_whynot(&self, kind: WhyNotKind, elapsed: Duration) {
        self.whynot[kind_index(kind)].record(elapsed);
    }

    pub(crate) fn record_write(&self, elapsed: Duration) {
        self.writes.record(elapsed);
    }

    /// One query landed in `cell`; its keyword set feeds the sketch.
    pub(crate) fn record_query(&self, cell: usize, keyword_ids: &[u32]) {
        self.query_heat.record(cell);
        self.keywords.record_all(keyword_ids.iter().copied());
    }

    /// `ops` write operations were routed to `cell` by one batch.
    pub(crate) fn record_write_cell(&self, cell: usize, ops: usize) {
        if ops > 0 {
            self.write_heat.record_many(cell, ops as u64);
        }
    }

    /// Top-k compute p99 over the last 10 s, in nanoseconds — the cheap
    /// point read the admission check makes per request (one window
    /// fold, no full snapshot).
    pub(crate) fn topk_p99_10s_ns(&self) -> u64 {
        self.topk.snapshot(10).p99()
    }

    /// `cell`'s query heat over the mean cell heat (1.0 when idle or
    /// out of range) — the hot-cell admission signal.
    pub(crate) fn cell_heat_ratio(&self, cell: usize) -> f64 {
        let heats = self.query_heat.heats();
        if heats.is_empty() {
            return 1.0;
        }
        let mean = heats.iter().sum::<f64>() / heats.len() as f64;
        if mean <= f64::EPSILON {
            return 1.0;
        }
        heats.get(cell).copied().unwrap_or(0.0) / mean
    }

    pub(crate) fn snapshot(&self) -> WorkloadSnapshot {
        let query_heat = self.query_heat.heats();
        let write_heat = self.write_heat.heats();
        WorkloadSnapshot {
            topk: RouteWindows::of(&self.topk),
            topk_hit: RouteWindows::of(&self.topk_hit),
            whynot: std::array::from_fn(|i| RouteWindows::of(&self.whynot[i])),
            writes: RouteWindows::of(&self.writes),
            query_skew: HeatMap::skew_of(&query_heat),
            write_skew: HeatMap::skew_of(&write_heat),
            query_heat,
            write_heat,
            query_touches: self.query_heat.touches(),
            write_touches: self.write_heat.touches(),
            heat_half_life: self.query_heat.half_life(),
            hot_keywords: self.keywords.top(KEYWORD_TOP_N),
            keyword_total: self.keywords.total(),
        }
    }
}

/// One route's windowed aggregates at the three standard horizons.
#[derive(Clone, Debug, Default)]
pub struct RouteWindows {
    pub h1: WindowSnapshot,
    pub h10: WindowSnapshot,
    pub h60: WindowSnapshot,
}

impl RouteWindows {
    fn of(w: &SlidingWindow) -> RouteWindows {
        RouteWindows {
            h1: w.snapshot(WINDOW_HORIZONS_SECS[0]),
            h10: w.snapshot(WINDOW_HORIZONS_SECS[1]),
            h60: w.snapshot(WINDOW_HORIZONS_SECS[2]),
        }
    }

    /// The horizons with their exported label values, in a fixed order.
    pub fn iter_named(&self) -> [(&'static str, &WindowSnapshot); 3] {
        [("1s", &self.h1), ("10s", &self.h10), ("1m", &self.h60)]
    }
}

/// Point-in-time view of the observatory, carried on
/// [`crate::ExecSnapshot`] when the observatory is enabled.
#[derive(Clone, Debug, Default)]
pub struct WorkloadSnapshot {
    /// Uncached top-k compute latency windows.
    pub topk: RouteWindows,
    /// Top-k cache-hit latency windows.
    pub topk_hit: RouteWindows,
    /// Per-module why-not latency windows (see
    /// [`WorkloadSnapshot::whynot_named`] for the label order).
    pub whynot: [RouteWindows; 5],
    /// Write-batch publish latency windows.
    pub writes: RouteWindows,
    /// Decayed query touches per STR cell ("demand now").
    pub query_heat: Vec<f64>,
    /// Decayed write ops per STR cell.
    pub write_heat: Vec<f64>,
    /// Raw since-boot query touches per cell.
    pub query_touches: Vec<u64>,
    /// Raw since-boot write ops per cell.
    pub write_touches: Vec<u64>,
    /// Query-heat skew ratio: hottest cell / mean cell (0 when cold,
    /// 1 balanced, `cells` fully concentrated).
    pub query_skew: f64,
    /// Write-heat skew ratio, same scale.
    pub write_skew: f64,
    /// The decay half-life both heat maps use.
    pub heat_half_life: Duration,
    /// Top keywords by estimated frequency, count-descending.
    pub hot_keywords: Vec<(u32, u64)>,
    /// Total keyword occurrences the sketch has seen.
    pub keyword_total: u64,
}

impl WorkloadSnapshot {
    /// The why-not modules with their exported label values, in the same
    /// order as `WhyNotHistSnapshots::iter_named`.
    pub fn whynot_named(&self) -> [(&'static str, &RouteWindows); 5] {
        std::array::from_fn(|i| (KIND_NAMES[i], &self.whynot[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_record_independently() {
        let w = Workload::new(4, Duration::from_secs(60));
        w.record_topk(Duration::from_micros(500));
        w.record_topk_hit(Duration::from_micros(3));
        w.record_whynot(WhyNotKind::Keyword, Duration::from_millis(2));
        w.record_write(Duration::from_millis(1));
        let s = w.snapshot();
        assert_eq!(s.topk.h60.count, 1);
        assert_eq!(s.topk_hit.h60.count, 1);
        assert_eq!(s.writes.h60.count, 1);
        let named = s.whynot_named();
        assert_eq!(named[2].0, "keyword");
        assert_eq!(named[2].1.h60.count, 1);
        assert_eq!(named[0].1.h60.count, 0);
        // The horizons nest: anything in 1 s is also in 10 s and 1 m.
        assert!(s.topk.h1.count <= s.topk.h10.count);
        assert!(s.topk.h10.count <= s.topk.h60.count);
    }

    #[test]
    fn heat_and_keywords_accumulate() {
        let w = Workload::new(4, Duration::from_secs(3600));
        for _ in 0..30 {
            w.record_query(2, &[7, 9]);
        }
        w.record_query(0, &[7]);
        w.record_write_cell(1, 5);
        w.record_write_cell(3, 0); // no-op
        let s = w.snapshot();
        assert_eq!(s.query_touches, vec![1, 0, 30, 0]);
        assert_eq!(s.write_touches, vec![0, 5, 0, 0]);
        assert!(s.query_skew > 3.0, "30/31 of demand in one of 4 cells");
        assert_eq!(s.write_skew, 4.0);
        assert_eq!(s.hot_keywords[0].0, 7);
        assert_eq!(s.hot_keywords[0].1, 31);
        assert_eq!(s.keyword_total, 61);
    }
}
