//! The scatter-gather executor: the concurrency layer between the YASK
//! engine and the server.
//!
//! An [`Executor`] owns the single-tree [`Yask`] engine (the why-not
//! modules and the `shards = 1` fast path), an optional [`ShardedIndex`]
//! with a [`WorkerPool`] (the scatter-gather top-k path), the two LRU
//! answer caches, and the [`ExecSnapshot`] metrics surface. Every result
//! it returns is bit-identical to what the single-tree engine would
//! produce — sharding and caching are transparent optimizations, proven
//! equivalent by the property suite in `tests/`.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use yask_core::{
    CombinedRefinement, Explanation, KeywordRefinement, PreferenceRefinement, WhyNotAnswer,
    WhyNotError, Yask, YaskConfig,
};
use yask_index::{Corpus, ObjectId};
use yask_query::{Query, RankedObject};

use crate::bound::SharedBound;
use crate::cache::{AnswerKey, CachedAnswer, LruCache, QueryKey, WhyNotKind};
use crate::pool::WorkerPool;
use crate::search::{merge_topk, shard_topk};
use crate::shard::ShardedIndex;
use crate::stats::{ExecCounters, ExecSnapshot};

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Shard count; 1 selects the single-tree path (no pool, no shards).
    pub shards: usize,
    /// Worker threads for the scatter pool; 0 (the [`Default`]) resolves
    /// to the shard count.
    pub workers: usize,
    /// Top-k result cache capacity; 0 disables the cache.
    pub topk_cache: usize,
    /// Why-not answer cache capacity; 0 disables the cache.
    pub answer_cache: usize,
    /// The wrapped engine's configuration.
    pub yask: YaskConfig,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            shards: 4,
            workers: 0, // resolves to the shard count
            topk_cache: 1024,
            answer_cache: 256,
            yask: YaskConfig::default(),
        }
    }
}

impl ExecConfig {
    /// A single-tree configuration (the seed engine's behaviour) with
    /// caches still enabled.
    pub fn single_tree(yask: YaskConfig) -> Self {
        ExecConfig {
            shards: 1,
            workers: 1,
            yask,
            ..ExecConfig::default()
        }
    }
}

/// The sharded, concurrent, caching query executor.
pub struct Executor {
    yask: Yask,
    config: ExecConfig,
    sharded: Option<ShardedIndex>,
    pool: Option<WorkerPool>,
    // Values are Arc'd so a cache hit only bumps a refcount inside the
    // lock; the deep clone happens after the guard drops.
    topk_cache: Option<Mutex<LruCache<QueryKey, Arc<Vec<RankedObject>>>>>,
    answer_cache: Option<Mutex<LruCache<AnswerKey, Arc<CachedAnswer>>>>,
    counters: ExecCounters,
}

impl Executor {
    /// Builds the executor over a corpus: the single tree always, plus K
    /// shard trees (built in parallel) when `config.shards > 1`.
    pub fn new(corpus: Corpus, mut config: ExecConfig) -> Self {
        config.shards = config.shards.max(1);
        config.workers = if config.workers == 0 {
            config.shards
        } else {
            config.workers
        };
        let yask = Yask::new(corpus.clone(), config.yask);
        let (sharded, pool) = if config.shards > 1 {
            (
                Some(ShardedIndex::build(
                    corpus,
                    config.shards,
                    config.yask.tree_params,
                )),
                Some(WorkerPool::new(config.workers)),
            )
        } else {
            (None, None)
        };
        Executor {
            counters: ExecCounters::new(config.shards),
            topk_cache: (config.topk_cache > 0).then(|| Mutex::new(LruCache::new(config.topk_cache))),
            answer_cache: (config.answer_cache > 0)
                .then(|| Mutex::new(LruCache::new(config.answer_cache))),
            yask,
            config,
            sharded,
            pool,
        }
    }

    /// Builds with the default configuration (4 shards, 4 workers).
    pub fn with_defaults(corpus: Corpus) -> Self {
        Executor::new(corpus, ExecConfig::default())
    }

    /// The wrapped single-tree engine (why-not internals, white-box tests).
    pub fn yask(&self) -> &Yask {
        &self.yask
    }

    /// The corpus.
    pub fn corpus(&self) -> &Corpus {
        self.yask.corpus()
    }

    /// The executor configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Number of shards (1 = single-tree path).
    pub fn shard_count(&self) -> usize {
        self.config.shards
    }

    // -- top-k --------------------------------------------------------------

    /// Runs a spatial keyword top-k query: answer cache first, then the
    /// scatter-gather (or single-tree) computation.
    pub fn top_k(&self, query: &Query) -> Vec<RankedObject> {
        let key = self.topk_cache.as_ref().map(|_| QueryKey::of(query));
        if let (Some(cache), Some(key)) = (&self.topk_cache, &key) {
            if let Some(hit) = cache.lock().get(key) {
                return (*hit).clone();
            }
        }
        let result = self.compute_top_k(query);
        if let (Some(cache), Some(key)) = (&self.topk_cache, key) {
            let value = Arc::new(result.clone());
            cache.lock().insert(key, value);
        }
        result
    }

    /// The uncached top-k computation (the benches' cold path).
    pub fn compute_top_k(&self, query: &Query) -> Vec<RankedObject> {
        match (&self.sharded, &self.pool) {
            (Some(sharded), Some(pool)) => match self.scatter_gather(sharded, pool, query) {
                Some(result) => {
                    self.counters.record_query(true);
                    result
                }
                // A shard worker died mid-query (job panic): stay exact
                // by falling back to the single tree.
                None => {
                    self.counters.record_query(false);
                    self.yask.top_k(query)
                }
            },
            _ => {
                self.counters.record_query(false);
                self.yask.top_k(query)
            }
        }
    }

    /// Fans the query out to every shard, gathers per-shard top-k lists
    /// and merges them. Returns `None` if any shard result went missing.
    fn scatter_gather(
        &self,
        sharded: &ShardedIndex,
        pool: &WorkerPool,
        query: &Query,
    ) -> Option<Vec<RankedObject>> {
        let params = self.yask.score_params();
        let bound = Arc::new(SharedBound::new());
        let (tx, rx) = crossbeam::channel::unbounded();
        let expected = sharded.shard_count();
        for (i, tree) in sharded.shards().iter().enumerate() {
            let tree = Arc::clone(tree);
            let q = query.clone();
            let bound = Arc::clone(&bound);
            let tx = tx.clone();
            pool.submit(move || {
                let t0 = Instant::now();
                let (result, stats) = shard_topk(&tree, &params, &q, &bound);
                let _ = tx.send((i, result, stats, t0.elapsed()));
            });
        }
        drop(tx);

        let mut candidates = Vec::with_capacity(expected * query.k.min(64));
        let mut gathered = 0usize;
        while let Ok((i, result, stats, elapsed)) = rx.recv() {
            self.counters.shards[i].record(elapsed, stats.nodes_expanded, stats.objects_scored);
            candidates.extend(result);
            gathered += 1;
        }
        (gathered == expected).then(|| merge_topk(candidates, query.k))
    }

    /// Boolean (conjunctive) top-k, delegated to the engine.
    pub fn boolean_top_k(&self, query: &Query) -> Vec<RankedObject> {
        self.yask.boolean_top_k(query)
    }

    /// Viewport query, delegated to the engine.
    pub fn viewport(
        &self,
        rect: &yask_geo::Rect,
        doc: &yask_text::KeywordSet,
        mode: yask_query::MatchMode,
    ) -> Vec<ObjectId> {
        self.yask.viewport(rect, doc, mode)
    }

    // -- why-not (cached) ---------------------------------------------------

    /// Cached why-not explanations.
    pub fn explain(
        &self,
        query: &Query,
        desired: &[ObjectId],
    ) -> Result<Vec<Explanation>, WhyNotError> {
        self.cached_whynot(query, desired, 0.0, WhyNotKind::Explain, |e| {
            e.yask.explain(query, desired).map(CachedAnswer::Explain)
        })
        .map(|c| match &*c {
            CachedAnswer::Explain(v) => v.clone(),
            _ => unreachable!("kind-tagged cache entry"),
        })
    }

    /// Cached preference-adjusted refinement (Definition 2).
    pub fn refine_preference(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<PreferenceRefinement, WhyNotError> {
        self.cached_whynot(query, missing, lambda, WhyNotKind::Preference, |e| {
            e.yask
                .refine_preference(query, missing, lambda)
                .map(CachedAnswer::Preference)
        })
        .map(|c| match &*c {
            CachedAnswer::Preference(v) => v.clone(),
            _ => unreachable!("kind-tagged cache entry"),
        })
    }

    /// Cached keyword-adapted refinement (Definition 3).
    pub fn refine_keywords(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<KeywordRefinement, WhyNotError> {
        self.cached_whynot(query, missing, lambda, WhyNotKind::Keyword, |e| {
            e.yask
                .refine_keywords(query, missing, lambda)
                .map(CachedAnswer::Keyword)
        })
        .map(|c| match &*c {
            CachedAnswer::Keyword(v) => v.clone(),
            _ => unreachable!("kind-tagged cache entry"),
        })
    }

    /// Cached combined refinement.
    pub fn refine_combined(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<CombinedRefinement, WhyNotError> {
        self.cached_whynot(query, missing, lambda, WhyNotKind::Combined, |e| {
            e.yask
                .refine_combined(query, missing, lambda)
                .map(CachedAnswer::Combined)
        })
        .map(|c| match &*c {
            CachedAnswer::Combined(v) => v.clone(),
            _ => unreachable!("kind-tagged cache entry"),
        })
    }

    /// Cached full why-not answer with the engine's default λ.
    pub fn answer(&self, query: &Query, missing: &[ObjectId]) -> Result<WhyNotAnswer, WhyNotError> {
        self.answer_with_lambda(query, missing, self.yask.config().default_lambda)
    }

    /// Cached full why-not answer with an explicit λ.
    pub fn answer_with_lambda(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<WhyNotAnswer, WhyNotError> {
        self.cached_whynot(query, missing, lambda, WhyNotKind::Full, |e| {
            e.yask
                .answer_with_lambda(query, missing, lambda)
                .map(CachedAnswer::Full)
        })
        .map(|c| match &*c {
            CachedAnswer::Full(v) => v.clone(),
            _ => unreachable!("kind-tagged cache entry"),
        })
    }

    /// Cache-through wrapper: errors are returned but never cached.
    fn cached_whynot(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
        kind: WhyNotKind,
        compute: impl FnOnce(&Self) -> Result<CachedAnswer, WhyNotError>,
    ) -> Result<Arc<CachedAnswer>, WhyNotError> {
        let key = self
            .answer_cache
            .as_ref()
            .map(|_| AnswerKey::of(query, missing, lambda, kind));
        if let (Some(cache), Some(key)) = (&self.answer_cache, &key) {
            if let Some(hit) = cache.lock().get(key) {
                return Ok(hit);
            }
        }
        let value = Arc::new(compute(self)?);
        if let (Some(cache), Some(key)) = (&self.answer_cache, key) {
            let clone = Arc::clone(&value);
            cache.lock().insert(key, clone);
        }
        Ok(value)
    }

    // -- metrics ------------------------------------------------------------

    /// Snapshots every counter the executor maintains.
    pub fn stats(&self) -> ExecSnapshot {
        let shard_sizes: Vec<usize> = match &self.sharded {
            Some(s) => s.shards().iter().map(|t| t.len()).collect(),
            None => vec![self.yask.corpus().len()],
        };
        self.counters.snapshot(
            &shard_sizes,
            self.pool.as_ref().map_or(0, |p| p.workers()),
            self.pool.as_ref().map_or(0, |p| p.queue_depth()),
            self.topk_cache
                .as_ref()
                .map(|c| c.lock().snapshot())
                .unwrap_or_default(),
            self.answer_cache
                .as_ref()
                .map(|c| c.lock().snapshot())
                .unwrap_or_default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_query::topk_scan;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(12) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn sharded_top_k_matches_scan() {
        let corpus = random_corpus(350, 51);
        let exec = Executor::with_defaults(corpus.clone());
        let params = exec.yask().score_params();
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..20 {
            let q = Query::new(
                Point::new(rng.next_f64(), rng.next_f64()),
                ks(&[rng.below(12) as u32, rng.below(12) as u32]),
                1 + rng.below(8),
            );
            let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
            let want: Vec<ObjectId> = topk_scan(&corpus, &params, &q).iter().map(|r| r.id).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn topk_cache_hits_on_repeat() {
        let corpus = random_corpus(200, 52);
        let exec = Executor::with_defaults(corpus);
        let q = Query::new(Point::new(0.3, 0.3), ks(&[1, 2]), 5);
        let a = exec.top_k(&q);
        let b = exec.top_k(&q);
        assert_eq!(a, b);
        let s = exec.stats();
        assert_eq!(s.topk_cache.hits, 1);
        assert_eq!(s.topk_cache.misses, 1);
        assert_eq!(s.queries, 1, "second call must not recompute");
    }

    #[test]
    fn answer_cache_hits_on_repeat() {
        let corpus = random_corpus(250, 53);
        let exec = Executor::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.2, 0.7), ks(&[2, 3]), 4);
        let all = topk_scan(&corpus, &exec.yask().score_params(), &q.with_k(corpus.len()));
        let missing = vec![all[q.k + 2].id];
        let a = exec.answer(&q, &missing).unwrap();
        let b = exec.answer(&q, &missing).unwrap();
        assert_eq!(a.preference.penalty, b.preference.penalty);
        assert_eq!(a.keyword.penalty, b.keyword.penalty);
        let s = exec.stats();
        assert_eq!(s.answer_cache.hits, 1);
        assert_eq!(s.answer_cache.misses, 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let corpus = random_corpus(60, 54);
        let exec = Executor::with_defaults(corpus);
        let q = Query::new(Point::new(0.5, 0.5), ks(&[1]), 3);
        for _ in 0..2 {
            assert!(matches!(
                exec.answer(&q, &[]),
                Err(WhyNotError::EmptyMissingSet)
            ));
        }
        let s = exec.stats();
        assert_eq!(s.answer_cache.insertions, 0);
        assert_eq!(s.answer_cache.misses, 2);
    }

    #[test]
    fn explain_cache_respects_missing_order_and_multiplicity() {
        let corpus = random_corpus(200, 59);
        let exec = Executor::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.4, 0.4), ks(&[1, 2]), 3);
        let all = topk_scan(&corpus, &exec.yask().score_params(), &q.with_k(corpus.len()));
        let (a, b) = (all[q.k].id, all[q.k + 1].id);
        // Warm the cache with [a, b], then ask permuted and duplicated
        // variants: each must match the engine exactly, never a reordered
        // or shortened cached payload.
        for missing in [vec![a, b], vec![b, a], vec![a, a]] {
            let via_exec = exec.explain(&q, &missing).unwrap();
            let via_engine = exec.yask().explain(&q, &missing).unwrap();
            assert_eq!(via_exec.len(), via_engine.len(), "{missing:?}");
            for (x, y) in via_exec.iter().zip(&via_engine) {
                assert_eq!(x.object, y.object, "{missing:?}");
                assert_eq!(x.rank, y.rank, "{missing:?}");
            }
        }
    }

    #[test]
    fn default_workers_match_shard_count() {
        let corpus = random_corpus(80, 60);
        let exec = Executor::new(
            corpus,
            ExecConfig {
                shards: 6,
                ..ExecConfig::default()
            },
        );
        assert_eq!(exec.config().workers, 6);
        assert_eq!(exec.stats().workers, 6);
    }

    #[test]
    fn single_shard_config_skips_pool() {
        let corpus = random_corpus(120, 55);
        let exec = Executor::new(corpus.clone(), ExecConfig::single_tree(YaskConfig::default()));
        assert_eq!(exec.shard_count(), 1);
        let q = Query::new(Point::new(0.4, 0.6), ks(&[1]), 5);
        let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
        let want: Vec<ObjectId> = exec.yask().top_k(&q).iter().map(|r| r.id).collect();
        assert_eq!(got, want);
        let s = exec.stats();
        assert_eq!(s.workers, 0);
        assert_eq!(s.single_queries, 1);
        assert_eq!(s.scatter_queries, 0);
    }

    #[test]
    fn caches_can_be_disabled() {
        let corpus = random_corpus(100, 56);
        let exec = Executor::new(
            corpus,
            ExecConfig {
                topk_cache: 0,
                answer_cache: 0,
                ..ExecConfig::default()
            },
        );
        let q = Query::new(Point::new(0.5, 0.5), ks(&[2]), 3);
        exec.top_k(&q);
        exec.top_k(&q);
        let s = exec.stats();
        assert_eq!(s.queries, 2, "cacheless executor recomputes");
        assert_eq!(s.topk_cache.hits + s.topk_cache.misses, 0);
    }

    #[test]
    fn stats_expose_per_shard_work() {
        let corpus = random_corpus(400, 57);
        let exec = Executor::with_defaults(corpus);
        let q = Query::new(Point::new(0.5, 0.5), ks(&[1, 2, 3]), 10);
        exec.top_k(&q);
        let s = exec.stats();
        assert_eq!(s.shards, 4);
        assert_eq!(s.workers, 4);
        assert_eq!(s.per_shard.len(), 4);
        assert_eq!(s.per_shard.iter().map(|p| p.objects).sum::<usize>(), 400);
        assert_eq!(s.per_shard.iter().map(|p| p.queries).sum::<u64>(), 4);
        assert!(s.per_shard.iter().any(|p| p.nodes_expanded > 0));
    }

    #[test]
    fn concurrent_queries_stay_exact() {
        let corpus = random_corpus(500, 58);
        let exec = std::sync::Arc::new(Executor::new(
            corpus.clone(),
            ExecConfig {
                shards: 4,
                workers: 2, // fewer workers than shards: jobs queue up
                topk_cache: 0,
                ..ExecConfig::default()
            },
        ));
        let params = exec.yask().score_params();
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let exec = exec.clone();
            let corpus = corpus.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(100 + t);
                for _ in 0..10 {
                    let q = Query::new(
                        Point::new(rng.next_f64(), rng.next_f64()),
                        KeywordSet::from_raw([rng.below(12) as u32]),
                        1 + rng.below(6),
                    );
                    let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
                    let want: Vec<ObjectId> =
                        topk_scan(&corpus, &params, &q).iter().map(|r| r.id).collect();
                    assert_eq!(got, want);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(exec.stats().scatter_queries, 60);
    }
}
