//! The scatter-gather executor: the concurrency layer between the YASK
//! engine and the server.
//!
//! An [`Executor`] owns the current *engine epoch* — **either** the
//! single-tree [`Yask`] engine (`shards = 1`, the retained seed path)
//! **or** a [`ShardedIndex`], never both — published through an
//! arc-swap-style [`EpochCell`]. The sharded path answers *everything*
//! from the shard trees: top-k by scatter-gather, and the why-not modules
//! (explain, preference adjustment, keyword adaptation, combined) by the
//! per-shard fan-out in `crate::whynot` — there is no global KcR-tree,
//! so index memory and per-batch copy-on-write work cover the shard trees
//! only. Readers pin an epoch for the duration of a query, so a
//! concurrent write batch never tears the corpus or the trees out from
//! under an in-flight computation; [`Executor::apply_batch`] derives the
//! next epoch copy-on-write (only *touched* shard trees cloned) and
//! publishes it atomically. The two LRU answer caches key by `(epoch,
//! canonical request)`, so entries computed against a superseded corpus
//! version can never be served — invalidation is a generation tag, not a
//! scan. Every result is bit-identical to what a freshly built
//! single-tree engine over the same live corpus would produce — sharding,
//! caching and incremental maintenance are transparent optimizations,
//! proven equivalent by the property suites in `tests/` and the ingest
//! crate's oracle.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use yask_obs::Trace;
use yask_core::{
    CombinedRefinement, Explanation, KeywordRefinement, PreferenceRefinement, WhyNotAnswer,
    WhyNotError, Yask, YaskConfig,
};
use yask_index::{Corpus, ObjectId};
use yask_query::{topk_scan, Query, RankedObject, ScoreParams};
use yask_util::EpochCell;

use yask_index::KcAug;
use yask_pager::{page_out_tree, BufferPool, PagedNodeSource};

use crate::admission::Pressure;
use crate::cache::{AnswerKey, CachedAnswer, LruCache, QueryKey, WhyNotKind};
use crate::deadline::Deadline;
use crate::observe::Workload;
use crate::pool::WorkerPool;
use crate::search::merge_topk;
use crate::shard::ShardedIndex;
use crate::stats::{ExecCounters, ExecSnapshot, PagerSnapshot, ShardShape, SnapshotInputs};
use crate::whynot::ShardFanout;

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Shard count; 1 selects the single-tree path (no pool, no shards).
    pub shards: usize,
    /// Worker threads for the scatter pool; 0 (the [`Default`]) resolves
    /// to the shard count.
    pub workers: usize,
    /// Pending-job bound for the scatter pool's backpressure path
    /// ([`WorkerPool::submit_or_run`]): once this many jobs are queued,
    /// scatter callers run their shard searches inline instead of
    /// deepening the queue. 0 disables the bound (unbounded queue).
    pub queue_cap: usize,
    /// Top-k result cache capacity; 0 disables the cache.
    pub topk_cache: usize,
    /// Why-not answer cache capacity; 0 disables the cache.
    pub answer_cache: usize,
    /// Rebalance trigger: after a write batch, when the largest shard
    /// exceeds `rebalance_skew ×` the ideal (live / shards) size, the STR
    /// partition is re-split from scratch. Values ≤ 1 make any imbalance
    /// eligible; [`f64::INFINITY`] disables rebalancing.
    pub rebalance_skew: f64,
    /// Rebalancing is suppressed below this live-object count (tiny
    /// corpora are always "skewed" by integer effects).
    pub rebalance_min: usize,
    /// Whether the workload observatory records (sliding-window rates,
    /// per-cell heat, keyword sketch). On by default; the bench harness
    /// turns it off to price the recording overhead.
    pub observatory: bool,
    /// Half-life of the per-cell heat decay: a query's contribution to
    /// its cell's heat halves every `heat_half_life`.
    pub heat_half_life: Duration,
    /// Out-of-core serving: when set, every published shard tree's node
    /// arena is encoded into a shared buffer-pool page file and served
    /// by faulting chunks on access, keeping at most this many bytes of
    /// decoded chunks resident *per tree*. Answers stay byte-identical
    /// to fully resident serving; only the memory/latency trade moves.
    /// `None` (the default) keeps every arena resident.
    pub resident_budget: Option<usize>,
    /// The wrapped engine's configuration.
    pub yask: YaskConfig,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            shards: 4,
            workers: 0, // resolves to the shard count
            queue_cap: 1024,
            topk_cache: 1024,
            answer_cache: 256,
            rebalance_skew: 2.0,
            rebalance_min: 128,
            observatory: true,
            heat_half_life: Duration::from_secs(60),
            resident_budget: None,
            yask: YaskConfig::default(),
        }
    }
}

impl ExecConfig {
    /// A single-tree configuration (the seed engine's behaviour) with
    /// caches still enabled.
    pub fn single_tree(yask: YaskConfig) -> Self {
        ExecConfig {
            shards: 1,
            workers: 1,
            yask,
            ..ExecConfig::default()
        }
    }
}

/// The executor's out-of-core substrate: one buffer pool shared by every
/// epoch's paged trees (so page-level hit/miss/eviction counters are
/// monotonic across epochs) plus a registry of the live decoded-chunk
/// caches for stats aggregation. The backing page file lives in the
/// temp directory and is unlinked immediately after creation — the open
/// handle keeps it alive, the filesystem entry never outlives the
/// executor.
struct Pager {
    pool: Arc<BufferPool>,
    budget: usize,
    sources: Mutex<Vec<std::sync::Weak<PagedNodeSource<KcAug>>>>,
}

impl Pager {
    fn new(budget: usize) -> Pager {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "yask-exec-pager-{}-{}.pages",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        // Page-cache capacity scales with the chunk budget: enough pages
        // to back one tree's decoded window, floored so tiny budgets
        // still make progress.
        let capacity = (budget / yask_pager::PAGE_SIZE).max(16);
        let pool = BufferPool::create(&path, capacity).expect("create pager backing file");
        let _ = std::fs::remove_file(&path);
        Pager {
            pool: Arc::new(pool),
            budget,
            sources: Mutex::new(Vec::new()),
        }
    }

    /// Pages out one resident tree, registering its chunk cache.
    fn page_tree(&self, tree: &mut yask_index::KcRTree) {
        if tree.is_paged() {
            return;
        }
        let src = page_out_tree(&self.pool, tree, self.budget).expect("page out shard tree");
        self.sources.lock().push(Arc::downgrade(&src));
    }

    /// Pages out every resident tree of an engine about to be published.
    /// Trees already paged (epoch-shared, untouched by the batch) keep
    /// their source — and their warm chunk cache.
    fn page_engine(&self, engine: &mut EngineKind, config: YaskConfig) {
        match engine {
            EngineKind::Single(y) => {
                if !y.tree().is_paged() {
                    let mut tree = y.tree().clone();
                    self.page_tree(&mut tree);
                    *y = Yask::from_tree(tree, config);
                }
            }
            EngineKind::Sharded(s) => s.page_resident_trees(|t| self.page_tree(t)),
        }
    }

    fn snapshot(&self) -> PagerSnapshot {
        let mut snap = PagerSnapshot {
            budget_bytes: self.budget,
            pool_capacity: self.pool.capacity(),
            pool_pages: self.pool.page_count(),
            ..PagerSnapshot::default()
        };
        let ps = self.pool.stats();
        snap.pool_hits = ps.hits;
        snap.pool_misses = ps.misses;
        snap.pool_evictions = ps.evictions;
        let mut sources = self.sources.lock();
        sources.retain(|w| {
            let Some(s) = w.upgrade() else { return false };
            let st = s.stats();
            snap.chunk_hits += st.hits;
            snap.chunk_misses += st.misses;
            snap.chunk_evictions += st.evictions;
            snap.resident_chunks += st.resident_chunks;
            snap.chunk_count += st.chunk_count;
            snap.paged_trees += 1;
            true
        });
        snap
    }
}

/// The index backing one epoch: exactly one of the two forms.
enum EngineKind {
    /// One KcR-tree over the whole corpus (`shards = 1`, the seed path —
    /// and the oracle the sharded path is property-tested against).
    Single(Yask),
    /// K shard trees disjointly covering the corpus; every query class
    /// (top-k *and* why-not) is computed from these alone.
    Sharded(ShardedIndex),
}

impl EngineKind {
    fn corpus(&self) -> &Corpus {
        match self {
            EngineKind::Single(y) => y.corpus(),
            EngineKind::Sharded(s) => s.corpus(),
        }
    }
}

/// One published engine epoch: a consistent corpus version with the trees
/// built over exactly its live objects.
struct EngineState {
    epoch: u64,
    params: ScoreParams,
    engine: EngineKind,
    /// Index shape (per-shard node/byte counters), computed lazily on
    /// the first `/stats` call against this epoch and cached — the trees
    /// are immutable once published, and walking every node per poll
    /// would make monitoring cost scale with corpus size.
    shapes: std::sync::OnceLock<Vec<ShardShape>>,
}

impl EngineState {
    fn shard_shapes(&self) -> &[ShardShape] {
        self.shapes.get_or_init(|| match &self.engine {
            EngineKind::Single(y) => vec![ShardShape::of(y.tree())],
            EngineKind::Sharded(s) => s.shards().iter().map(|t| ShardShape::of(t)).collect(),
        })
    }
}

/// A pinned engine epoch: a consistent corpus version plus scoring
/// configuration that stays valid however many write batches are
/// published while the pin is held. Cloning shares the pin (one
/// refcount); the `*_on` executor methods answer queries against a
/// pinned epoch instead of the current one — the substrate of per-epoch
/// why-not sessions, whose follow-up questions keep referencing the
/// corpus version their initial query ran on even after later deletes.
#[derive(Clone)]
pub struct EngineHandle(Arc<EngineState>);

impl EngineHandle {
    /// The pinned epoch number.
    pub fn epoch(&self) -> u64 {
        self.0.epoch
    }

    /// The pinned corpus version.
    pub fn corpus(&self) -> &Corpus {
        self.0.engine.corpus()
    }

    /// The scoring configuration of the pinned epoch.
    pub fn score_params(&self) -> ScoreParams {
        self.0.params
    }
}

/// What a write batch did to the executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The newly published epoch.
    pub epoch: u64,
    /// Whether the batch tripped the skew trigger and the STR partition
    /// was re-split.
    pub rebalanced: bool,
}

/// A top-k answer that may have been truncated by a deadline.
#[derive(Clone, Debug)]
pub struct TopKOutcome {
    /// The merged result list — exact when `complete`, a best-effort
    /// prefix otherwise.
    pub results: Vec<RankedObject>,
    /// True when every shard ran its search to completion. Partial
    /// results never enter the top-k cache.
    pub complete: bool,
}

/// A cache keyed by `(epoch, canonical request)` — the epoch tag is the
/// invalidation mechanism.
type EpochCache<K, V> = Option<Mutex<LruCache<(u64, K), Arc<V>>>>;

/// The sharded, concurrent, caching, *writable* query executor.
pub struct Executor {
    state: EpochCell<EngineState>,
    config: ExecConfig,
    pool: Option<WorkerPool>,
    /// Serializes write batches; readers never take it.
    writer: Mutex<()>,
    // Values are Arc'd so a cache hit only bumps a refcount inside the
    // lock; the deep clone happens after the guard drops. Keys carry the
    // epoch the entry was computed against: superseded entries can never
    // hit and age out through normal LRU pressure.
    topk_cache: EpochCache<QueryKey, Vec<RankedObject>>,
    answer_cache: EpochCache<AnswerKey, CachedAnswer>,
    counters: ExecCounters,
    /// The workload observatory (None when `config.observatory` is off).
    workload: Option<Workload>,
    /// Out-of-core substrate (None when `config.resident_budget` is
    /// unset — the fully resident default).
    pager: Option<Pager>,
}

impl Executor {
    /// Builds the executor over a corpus: one single tree when
    /// `config.shards == 1`, otherwise K shard trees (built in parallel)
    /// and nothing else — the shard trees are the whole index.
    pub fn new(corpus: Corpus, config: ExecConfig) -> Self {
        Executor::new_at_epoch(corpus, config, 0)
    }

    /// [`Executor::new`] starting from a given epoch number — used after
    /// a write-ahead-log replay so the in-memory epoch continues the
    /// durable one instead of restarting at zero.
    pub fn new_at_epoch(corpus: Corpus, mut config: ExecConfig, epoch: u64) -> Self {
        config.shards = config.shards.max(1);
        config.workers = if config.workers == 0 {
            config.shards
        } else {
            config.workers
        };
        let params = ScoreParams::new(corpus.space()).with_model(config.yask.model);
        let pager = config.resident_budget.map(Pager::new);
        let (mut engine, pool) = if config.shards > 1 {
            (
                EngineKind::Sharded(ShardedIndex::build(
                    corpus,
                    config.shards,
                    config.yask.tree_params,
                )),
                Some(WorkerPool::with_capacity(
                    config.workers,
                    if config.queue_cap == 0 {
                        usize::MAX
                    } else {
                        config.queue_cap
                    },
                )),
            )
        } else {
            (EngineKind::Single(Yask::new(corpus, config.yask)), None)
        };
        if let Some(p) = &pager {
            p.page_engine(&mut engine, config.yask);
        }
        Executor {
            counters: ExecCounters::new(config.shards),
            workload: config
                .observatory
                .then(|| Workload::new(config.shards, config.heat_half_life)),
            topk_cache: (config.topk_cache > 0).then(|| Mutex::new(LruCache::new(config.topk_cache))),
            answer_cache: (config.answer_cache > 0)
                .then(|| Mutex::new(LruCache::new(config.answer_cache))),
            state: EpochCell::from(EngineState {
                epoch,
                params,
                engine,
                shapes: std::sync::OnceLock::new(),
            }),
            config,
            pool,
            writer: Mutex::new(()),
            pager,
        }
    }

    /// Builds with the default configuration (4 shards, 4 workers).
    pub fn with_defaults(corpus: Corpus) -> Self {
        Executor::new(corpus, ExecConfig::default())
    }

    /// Pins the current engine epoch (white-box tests, demo tooling).
    pub fn engine(&self) -> EngineHandle {
        EngineHandle(self.state.load())
    }

    /// The current epoch's corpus version.
    pub fn corpus(&self) -> Corpus {
        self.state.load().engine.corpus().clone()
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.state.load().epoch
    }

    /// The executor configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Number of shards (1 = single-tree path).
    pub fn shard_count(&self) -> usize {
        self.config.shards
    }

    // -- writes -------------------------------------------------------------

    /// Applies one validated write batch and publishes the next epoch.
    ///
    /// `corpus` is the next corpus version (derived through
    /// [`Corpus::with_updates`] from the current epoch's version),
    /// `inserted` its freshly appended slots and `deleted` the newly
    /// tombstoned ones. Trees are derived *persistently* through
    /// [`yask_index::RTree::with_updates`]: the next epoch's tree shares
    /// every node-arena chunk the batch's root-to-leaf paths did not
    /// write into with the previous epoch's, so per-batch write
    /// amplification is O(spine), independent of tree (and shard) size.
    /// On the sharded path inserts are first routed to their owning STR
    /// cell and deletes to the shard that indexed them; untouched shards
    /// are shared wholesale. The copy bill is accumulated into the
    /// `index_chunks_copied`/`index_copy_bytes` snapshot counters. The
    /// skew trigger may re-split the partition. In-flight readers keep
    /// the previous epoch; both caches are invalidated by the epoch tag.
    ///
    /// Validation (ids live, locations finite, no duplicate deletes) is
    /// the caller's job — the ingest layer rejects bad batches before the
    /// write-ahead log ever sees them.
    pub fn apply_batch(
        &self,
        corpus: Corpus,
        inserted: &[ObjectId],
        deleted: &[ObjectId],
    ) -> UpdateOutcome {
        let _guard = self.writer.lock();
        let t0 = Instant::now();
        let cur = self.state.load();

        let mut rebalanced = false;
        let mut engine = match &cur.engine {
            // Single tree: derive the next epoch's tree persistently —
            // only the arena chunks under the batch's paths are copied.
            EngineKind::Single(yask) => {
                let (tree, copy) = yask.tree().with_updates(corpus, inserted, deleted);
                self.counters.record_index_copy(&copy);
                if let Some(wl) = &self.workload {
                    wl.record_write_cell(0, inserted.len() + deleted.len());
                }
                EngineKind::Single(Yask::from_tree(tree, self.config.yask))
            }
            // Shard trees: copy-on-write routing, then the rebalance check.
            EngineKind::Sharded(s) => {
                let (next, deltas, copy) = s.apply(corpus.clone(), inserted, deleted);
                for (i, &(ins, del)) in deltas.iter().enumerate() {
                    self.counters.shards[i].record_writes(ins, del);
                    if let Some(wl) = &self.workload {
                        wl.record_write_cell(i, ins + del);
                    }
                }
                self.counters.record_index_copy(&copy);
                EngineKind::Sharded(if self.skew_exceeded(&next) {
                    rebalanced = true;
                    ShardedIndex::build(corpus, self.config.shards, self.config.yask.tree_params)
                } else {
                    next
                })
            }
        };

        // Out-of-core: the batch's touched trees materialized back to
        // resident form to mutate; page them out again before publishing.
        // Untouched (epoch-shared) trees are already paged and keep
        // their warm chunk caches.
        if let Some(p) = &self.pager {
            p.page_engine(&mut engine, self.config.yask);
        }

        let epoch = cur.epoch + 1;
        self.counters
            .record_batch(inserted.len(), deleted.len(), rebalanced);
        self.state.store(Arc::new(EngineState {
            epoch,
            params: cur.params,
            engine,
            shapes: std::sync::OnceLock::new(),
        }));
        if let Some(wl) = &self.workload {
            wl.record_write(t0.elapsed());
        }
        UpdateOutcome { epoch, rebalanced }
    }

    fn skew_exceeded(&self, sharded: &ShardedIndex) -> bool {
        let live = sharded.len();
        if sharded.shard_count() < 2 || live < self.config.rebalance_min {
            return false;
        }
        let ideal = (live as f64 / sharded.shard_count() as f64).max(1.0);
        sharded.max_shard_len() as f64 > self.config.rebalance_skew * ideal
    }

    // -- top-k --------------------------------------------------------------

    /// Runs a spatial keyword top-k query: answer cache first, then the
    /// scatter-gather (or single-tree) computation, all against one
    /// pinned epoch.
    pub fn top_k(&self, query: &Query) -> Vec<RankedObject> {
        self.top_k_on(&self.engine(), query)
    }

    /// [`Executor::top_k`] against a *pinned* epoch instead of the
    /// current one (per-epoch sessions). The cache still works: keys
    /// carry the pinned epoch, so entries never leak across versions.
    pub fn top_k_on(&self, handle: &EngineHandle, query: &Query) -> Vec<RankedObject> {
        self.top_k_on_traced(handle, query, None)
    }

    /// [`Executor::top_k_on`] with an optional [`Trace`] collecting spans
    /// for the cache lookup, the scatter and each shard's search. The
    /// latency histograms record either way; tracing only adds span
    /// bookkeeping for requests that opted in (or are sampled into the
    /// server's trace ring).
    pub fn top_k_on_traced(
        &self,
        handle: &EngineHandle,
        query: &Query,
        trace: Option<&Trace>,
    ) -> Vec<RankedObject> {
        self.top_k_deadline_on_traced(handle, query, trace, None)
            .results
    }

    /// [`Executor::top_k_on_traced`] under an optional [`Deadline`]: the
    /// shard searches stop expanding once the budget is spent and the
    /// outcome is flagged partial. Partial results are *not* cached —
    /// the cache stores exact answers only.
    pub fn top_k_deadline_on_traced(
        &self,
        handle: &EngineHandle,
        query: &Query,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> TopKOutcome {
        let state = &handle.0;
        let t0 = Instant::now();
        // Heat tracks *demand* (cache hits included): where queries land,
        // not where compute happens.
        if let Some(wl) = &self.workload {
            wl.record_query(self.route_cell(state, query), query.doc.raw());
        }
        let key = self
            .topk_cache
            .as_ref()
            .map(|_| (state.epoch, QueryKey::of(query)));
        if let (Some(cache), Some(key)) = (&self.topk_cache, &key) {
            let hit = {
                let _span = trace.map(|t| t.span("cache_lookup"));
                cache.lock().get(key)
            };
            if let Some(hit) = hit {
                self.counters.topk_hit.record(t0.elapsed());
                if let Some(wl) = &self.workload {
                    wl.record_topk_hit(t0.elapsed());
                }
                return TopKOutcome {
                    results: (*hit).clone(),
                    complete: true,
                };
            }
        }
        let (result, complete) = self.compute_top_k_traced(state, query, trace, deadline);
        if complete {
            if let (Some(cache), Some(key)) = (&self.topk_cache, key) {
                let value = Arc::new(result.clone());
                cache.lock().insert(key, value);
            }
        }
        TopKOutcome {
            results: result,
            complete,
        }
    }

    /// Probes the top-k cache for this query at the pinned epoch *or any
    /// of the `lookback` epochs before it* — the degraded-mode read
    /// path: when the engine is overloaded, a slightly stale cached
    /// answer (flagged `degraded` by the server) beats either queueing
    /// more work or a 429. Returns the hit and its age in epochs
    /// (0 = current, i.e. not actually stale).
    pub fn cached_topk_stale(
        &self,
        handle: &EngineHandle,
        query: &Query,
        lookback: u64,
    ) -> Option<(Vec<RankedObject>, u64)> {
        let cache = self.topk_cache.as_ref()?;
        let epoch = handle.0.epoch;
        let key = QueryKey::of(query);
        let mut cache = cache.lock();
        for age in 0..=lookback.min(epoch) {
            if let Some(hit) = cache.get(&(epoch - age, key.clone())) {
                return Some(((*hit).clone(), age));
            }
        }
        None
    }

    /// The uncached top-k computation (the benches' cold path).
    pub fn compute_top_k(&self, query: &Query) -> Vec<RankedObject> {
        self.compute_top_k_traced(&self.state.load(), query, None, None).0
    }

    /// [`Executor::compute_top_k`] with an optional trace (bench harness
    /// overhead row; the server goes through [`Executor::top_k_on_traced`]).
    pub fn compute_top_k_with_trace(&self, query: &Query, trace: &Trace) -> Vec<RankedObject> {
        self.compute_top_k_traced(&self.state.load(), query, Some(trace), None)
            .0
    }

    fn compute_top_k_traced(
        &self,
        state: &EngineState,
        query: &Query,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> (Vec<RankedObject>, bool) {
        let t0 = Instant::now();
        let (result, complete) = match (&state.engine, &self.pool) {
            (EngineKind::Sharded(sharded), Some(pool)) => {
                match self.scatter_gather(state.params, sharded, pool, query, trace, deadline) {
                    Some((result, complete)) => {
                        self.counters.record_query(true);
                        (result, complete)
                    }
                    // A shard worker died mid-query (job panic): stay
                    // exact by falling back to the scan oracle over the
                    // pinned corpus version — unless the deadline is
                    // already spent, in which case the honest answer is
                    // an empty partial, not a late exact scan.
                    None => {
                        self.counters.record_query(false);
                        if deadline.is_some_and(|d| d.expired()) {
                            (Vec::new(), false)
                        } else {
                            (topk_scan(state.engine.corpus(), &state.params, query), true)
                        }
                    }
                }
            }
            (EngineKind::Single(yask), _) => {
                self.counters.record_query(false);
                // The single tree has no scatter to bound; an already
                // expired budget still returns the honest empty partial.
                if deadline.is_some_and(|d| d.expired()) {
                    (Vec::new(), false)
                } else {
                    (yask.top_k(query), true)
                }
            }
            (EngineKind::Sharded(sharded), None) => {
                // Unreachable by construction (sharded implies a pool),
                // but stay exact if it ever happens.
                self.counters.record_query(false);
                (topk_scan(sharded.corpus(), &state.params, query), true)
            }
        };
        self.counters.topk.record(t0.elapsed());
        if let Some(wl) = &self.workload {
            wl.record_topk(t0.elapsed());
        }
        (result, complete)
    }

    /// The STR cell a query's location routes to (0 on the single-tree
    /// path, whose one "cell" is the whole space).
    fn route_cell(&self, state: &EngineState, query: &Query) -> usize {
        match &state.engine {
            EngineKind::Sharded(s) => s.route(query.loc),
            EngineKind::Single(_) => 0,
        }
    }

    /// Fans the query out to every shard, gathers per-shard top-k lists
    /// and merges them, recording per-shard work counters (and, when a
    /// trace rides along, one span per shard under a `scatter` span plus
    /// a `gather` span for the merge). Returns `None` if any shard
    /// result went missing; the bool is false when a deadline cut a
    /// shard's search short.
    fn scatter_gather(
        &self,
        params: ScoreParams,
        sharded: &ShardedIndex,
        pool: &WorkerPool,
        query: &Query,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> Option<(Vec<RankedObject>, bool)> {
        let scatter = trace.map(|t| t.span("scatter"));
        crate::search::scatter_topk_bounded(
            sharded.shards(),
            pool,
            params,
            query,
            deadline,
            |i, stats, elapsed| {
                self.counters.shards[i].record(elapsed, stats.nodes_expanded, stats.objects_scored);
                if let (Some(t), Some(sc)) = (trace, &scatter) {
                    t.add_span_elapsed(
                        sc.id(),
                        format!("shard{i}"),
                        elapsed.as_nanos().min(u64::MAX as u128) as u64,
                    );
                }
            },
            |gather_elapsed| {
                if let (Some(t), Some(sc)) = (trace, &scatter) {
                    t.add_span_elapsed(
                        sc.id(),
                        "gather",
                        gather_elapsed.as_nanos().min(u64::MAX as u128) as u64,
                    );
                }
            },
        )
    }

    /// Boolean (conjunctive) top-k: per-shard boolean searches merged
    /// under the workspace total order, or the single tree directly.
    pub fn boolean_top_k(&self, query: &Query) -> Vec<RankedObject> {
        let state = self.state.load();
        match &state.engine {
            EngineKind::Single(yask) => yask.boolean_top_k(query),
            EngineKind::Sharded(sharded) => {
                let mut all = Vec::new();
                for tree in sharded.shards() {
                    all.extend(yask_query::boolean_topk_tree(tree, &state.params, query));
                }
                merge_topk(all, query.k)
            }
        }
    }

    /// Viewport query: all objects in `rect` passing the keyword filter,
    /// id-ascending (per-shard ranges concatenate in shard order, so the
    /// result is sorted for a deterministic, shard-count-independent
    /// answer).
    pub fn viewport(
        &self,
        rect: &yask_geo::Rect,
        doc: &yask_text::KeywordSet,
        mode: yask_query::MatchMode,
    ) -> Vec<ObjectId> {
        let state = self.state.load();
        let mut ids = match &state.engine {
            EngineKind::Single(yask) => yask.viewport(rect, doc, mode),
            EngineKind::Sharded(sharded) => sharded
                .shards()
                .iter()
                .flat_map(|tree| yask_query::range_keyword_tree(tree, rect, doc, mode))
                .collect(),
        };
        ids.sort_unstable();
        ids
    }

    // -- why-not (cached) ---------------------------------------------------

    /// The per-shard why-not fan-out over a pinned sharded epoch.
    fn fanout<'s>(
        &'s self,
        state: &'s EngineState,
        sharded: &'s ShardedIndex,
        deadline: Option<Deadline>,
    ) -> ShardFanout<'s> {
        ShardFanout::new(
            sharded,
            self.pool
                .as_ref()
                .expect("sharded engine always has a pool"),
            state.params,
            self.config.yask.keyword_options,
        )
        .with_deadline(deadline)
    }

    /// Cached why-not explanations.
    pub fn explain(
        &self,
        query: &Query,
        desired: &[ObjectId],
    ) -> Result<Vec<Explanation>, WhyNotError> {
        self.explain_on(&self.engine(), query, desired)
    }

    /// [`Executor::explain`] against a pinned epoch.
    pub fn explain_on(
        &self,
        handle: &EngineHandle,
        query: &Query,
        desired: &[ObjectId],
    ) -> Result<Vec<Explanation>, WhyNotError> {
        self.explain_on_traced(handle, query, desired, None, None)
    }

    /// [`Executor::explain_on`] with an optional trace and deadline.
    pub fn explain_on_traced(
        &self,
        handle: &EngineHandle,
        query: &Query,
        desired: &[ObjectId],
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> Result<Vec<Explanation>, WhyNotError> {
        self.cached_whynot(handle, query, desired, 0.0, WhyNotKind::Explain, trace, deadline, |state| {
            match &state.engine {
                EngineKind::Single(y) => y.explain(query, desired),
                EngineKind::Sharded(s) => self.fanout(state, s, deadline).explain(query, desired),
            }
            .map(CachedAnswer::Explain)
        })
        .map(|c| match &*c {
            CachedAnswer::Explain(v) => v.clone(),
            _ => unreachable!("kind-tagged cache entry"),
        })
    }

    /// Cached preference-adjusted refinement (Definition 2).
    pub fn refine_preference(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<PreferenceRefinement, WhyNotError> {
        self.refine_preference_on(&self.engine(), query, missing, lambda)
    }

    /// [`Executor::refine_preference`] against a pinned epoch.
    pub fn refine_preference_on(
        &self,
        handle: &EngineHandle,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<PreferenceRefinement, WhyNotError> {
        self.refine_preference_on_traced(handle, query, missing, lambda, None, None)
    }

    /// [`Executor::refine_preference_on`] with an optional trace and deadline.
    pub fn refine_preference_on_traced(
        &self,
        handle: &EngineHandle,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> Result<PreferenceRefinement, WhyNotError> {
        self.cached_whynot(handle, query, missing, lambda, WhyNotKind::Preference, trace, deadline, |state| {
            match &state.engine {
                EngineKind::Single(y) => y.refine_preference(query, missing, lambda),
                EngineKind::Sharded(s) => {
                    self.fanout(state, s, deadline).refine_preference(query, missing, lambda)
                }
            }
            .map(CachedAnswer::Preference)
        })
        .map(|c| match &*c {
            CachedAnswer::Preference(v) => v.clone(),
            _ => unreachable!("kind-tagged cache entry"),
        })
    }

    /// Cached keyword-adapted refinement (Definition 3).
    pub fn refine_keywords(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<KeywordRefinement, WhyNotError> {
        self.refine_keywords_on(&self.engine(), query, missing, lambda)
    }

    /// [`Executor::refine_keywords`] against a pinned epoch.
    pub fn refine_keywords_on(
        &self,
        handle: &EngineHandle,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<KeywordRefinement, WhyNotError> {
        self.refine_keywords_on_traced(handle, query, missing, lambda, None, None)
    }

    /// [`Executor::refine_keywords_on`] with an optional trace and deadline.
    pub fn refine_keywords_on_traced(
        &self,
        handle: &EngineHandle,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> Result<KeywordRefinement, WhyNotError> {
        self.cached_whynot(handle, query, missing, lambda, WhyNotKind::Keyword, trace, deadline, |state| {
            match &state.engine {
                EngineKind::Single(y) => y.refine_keywords(query, missing, lambda),
                EngineKind::Sharded(s) => {
                    self.fanout(state, s, deadline).refine_keywords(query, missing, lambda)
                }
            }
            .map(CachedAnswer::Keyword)
        })
        .map(|c| match &*c {
            CachedAnswer::Keyword(v) => v.clone(),
            _ => unreachable!("kind-tagged cache entry"),
        })
    }

    /// Cached combined refinement.
    pub fn refine_combined(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<CombinedRefinement, WhyNotError> {
        self.refine_combined_on(&self.engine(), query, missing, lambda)
    }

    /// [`Executor::refine_combined`] against a pinned epoch.
    pub fn refine_combined_on(
        &self,
        handle: &EngineHandle,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<CombinedRefinement, WhyNotError> {
        self.refine_combined_on_traced(handle, query, missing, lambda, None, None)
    }

    /// [`Executor::refine_combined_on`] with an optional trace and deadline.
    pub fn refine_combined_on_traced(
        &self,
        handle: &EngineHandle,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> Result<CombinedRefinement, WhyNotError> {
        self.cached_whynot(handle, query, missing, lambda, WhyNotKind::Combined, trace, deadline, |state| {
            match &state.engine {
                EngineKind::Single(y) => y.refine_combined(query, missing, lambda),
                EngineKind::Sharded(s) => {
                    self.fanout(state, s, deadline).refine_combined(query, missing, lambda)
                }
            }
            .map(CachedAnswer::Combined)
        })
        .map(|c| match &*c {
            CachedAnswer::Combined(v) => v.clone(),
            _ => unreachable!("kind-tagged cache entry"),
        })
    }

    /// Cached full why-not answer with the engine's default λ.
    pub fn answer(&self, query: &Query, missing: &[ObjectId]) -> Result<WhyNotAnswer, WhyNotError> {
        self.answer_with_lambda(query, missing, self.config.yask.default_lambda)
    }

    /// Cached full why-not answer with an explicit λ.
    pub fn answer_with_lambda(
        &self,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<WhyNotAnswer, WhyNotError> {
        self.answer_with_lambda_on(&self.engine(), query, missing, lambda)
    }

    /// [`Executor::answer_with_lambda`] against a pinned epoch.
    pub fn answer_with_lambda_on(
        &self,
        handle: &EngineHandle,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
    ) -> Result<WhyNotAnswer, WhyNotError> {
        self.answer_with_lambda_on_traced(handle, query, missing, lambda, None, None)
    }

    /// [`Executor::answer_with_lambda_on`] with an optional trace and deadline.
    pub fn answer_with_lambda_on_traced(
        &self,
        handle: &EngineHandle,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
    ) -> Result<WhyNotAnswer, WhyNotError> {
        self.cached_whynot(handle, query, missing, lambda, WhyNotKind::Full, trace, deadline, |state| {
            match &state.engine {
                EngineKind::Single(y) => y.answer_with_lambda(query, missing, lambda),
                EngineKind::Sharded(s) => {
                    self.fanout(state, s, deadline).answer(query, missing, lambda)
                }
            }
            .map(CachedAnswer::Full)
        })
        .map(|c| match &*c {
            CachedAnswer::Full(v) => v.clone(),
            _ => unreachable!("kind-tagged cache entry"),
        })
    }

    /// Cache-through wrapper: the computation runs against the pinned
    /// epoch `handle` carries, the cache key carries that epoch, and
    /// errors are returned but never cached. The per-module latency
    /// histogram samples every computed (non-cache-hit) run, errors
    /// included — a failing module still spent the time. A deadline that
    /// expired before the compute starts (time burned queueing) returns
    /// [`WhyNotError::DeadlineExceeded`] — but a cache hit is served
    /// regardless, since it costs nothing.
    #[allow(clippy::too_many_arguments)]
    fn cached_whynot(
        &self,
        handle: &EngineHandle,
        query: &Query,
        missing: &[ObjectId],
        lambda: f64,
        kind: WhyNotKind,
        trace: Option<&Trace>,
        deadline: Option<Deadline>,
        compute: impl FnOnce(&EngineState) -> Result<CachedAnswer, WhyNotError>,
    ) -> Result<Arc<CachedAnswer>, WhyNotError> {
        let state = &handle.0;
        if let Some(wl) = &self.workload {
            wl.record_query(self.route_cell(state, query), query.doc.raw());
        }
        let key = self
            .answer_cache
            .as_ref()
            .map(|_| (state.epoch, AnswerKey::of(query, missing, lambda, kind)));
        if let (Some(cache), Some(key)) = (&self.answer_cache, &key) {
            let hit = {
                let _span = trace.map(|t| t.span("cache_lookup"));
                cache.lock().get(key)
            };
            if let Some(hit) = hit {
                return Ok(hit);
            }
        }
        if deadline.is_some_and(|d| d.expired()) {
            return Err(WhyNotError::DeadlineExceeded);
        }
        let computed = {
            let _span = trace.map(|t| t.span(Self::whynot_span_name(kind)));
            let t0 = Instant::now();
            let computed = compute(state);
            self.counters.whynot.of(kind).record(t0.elapsed());
            if let Some(wl) = &self.workload {
                wl.record_whynot(kind, t0.elapsed());
            }
            computed
        };
        let value = Arc::new(computed?);
        if let (Some(cache), Some(key)) = (&self.answer_cache, key) {
            let clone = Arc::clone(&value);
            cache.lock().insert(key, clone);
        }
        Ok(value)
    }

    fn whynot_span_name(kind: WhyNotKind) -> &'static str {
        match kind {
            WhyNotKind::Explain => "whynot_explain",
            WhyNotKind::Preference => "whynot_preference",
            WhyNotKind::Keyword => "whynot_keyword",
            WhyNotKind::Combined => "whynot_combined",
            WhyNotKind::Full => "whynot_full",
        }
    }

    // -- admission inputs ---------------------------------------------------

    /// The cheap point sample the admission check reads per request: a
    /// few relaxed atomic loads plus one window fold, no snapshot
    /// allocation. With the observatory off the latency and heat terms
    /// read as idle, so admission degrades to queue-depth-only.
    pub fn pressure(&self) -> Pressure {
        Pressure {
            queue_depth_1m: self
                .pool
                .as_ref()
                .map_or(0, |p| p.queue_depth_max_windowed(60)),
            topk_p99_ms: self
                .workload
                .as_ref()
                .map_or(0.0, |w| w.topk_p99_10s_ns() as f64 / 1e6),
            hot_cell_ratio: 1.0,
        }
    }

    /// [`Executor::pressure`] plus the hot-cell term for the STR cell
    /// this query routes to.
    pub fn pressure_for(&self, handle: &EngineHandle, query: &Query) -> Pressure {
        let mut p = self.pressure();
        if let Some(wl) = &self.workload {
            p.hot_cell_ratio = wl.cell_heat_ratio(self.route_cell(&handle.0, query));
        }
        p
    }

    // -- metrics ------------------------------------------------------------

    /// Snapshots every counter the executor maintains.
    pub fn stats(&self) -> ExecSnapshot {
        let state = self.state.load();
        let corpus = state.engine.corpus();
        self.counters.snapshot(SnapshotInputs {
            shard_shapes: state.shard_shapes().to_vec(),
            workers: self.pool.as_ref().map_or(0, |p| p.workers()),
            queue_depth: self.pool.as_ref().map_or(0, |p| p.queue_depth()),
            queue_depth_max: self.pool.as_ref().map_or(0, |p| p.queue_depth_max()),
            queue_depth_max_1m: self
                .pool
                .as_ref()
                .map_or(0, |p| p.queue_depth_max_windowed(60)),
            queue_saturated: self.pool.as_ref().map_or(0, |p| p.saturated_submits()),
            workload: self.workload.as_ref().map(|w| w.snapshot()),
            epoch: state.epoch,
            live_objects: corpus.len(),
            tombstones: corpus.tombstones(),
            topk_cache: self
                .topk_cache
                .as_ref()
                .map(|c| c.lock().snapshot())
                .unwrap_or_default(),
            answer_cache: self
                .answer_cache
                .as_ref()
                .map(|c| c.lock().snapshot())
                .unwrap_or_default(),
            pager: self.pager.as_ref().map(|p| p.snapshot()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_query::topk_scan;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(12) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn out_of_core_executor_matches_resident_and_prices_faults() {
        let corpus = random_corpus(400, 90);
        let resident = Executor::with_defaults(corpus.clone());
        // Budget of one byte per tree: worst case, every chunk access
        // faults through the buffer pool.
        let paged = Executor::new(
            corpus.clone(),
            ExecConfig {
                resident_budget: Some(1),
                topk_cache: 0,
                answer_cache: 0,
                ..ExecConfig::default()
            },
        );
        let params = resident.engine().score_params();
        let mut rng = Xoshiro256::seed_from_u64(13);
        for _ in 0..10 {
            let q = Query::new(
                Point::new(rng.next_f64(), rng.next_f64()),
                ks(&[rng.below(12) as u32, rng.below(12) as u32]),
                1 + rng.below(8),
            );
            assert_eq!(resident.top_k(&q), paged.top_k(&q));
            let all = topk_scan(&corpus, &params, &q.with_k(corpus.len()));
            let missing = vec![all[q.k + 1].id];
            let a = resident.answer(&q, &missing).unwrap();
            let b = paged.answer(&q, &missing).unwrap();
            assert_eq!(a.explanations.len(), b.explanations.len());
            assert_eq!(a.preference.penalty, b.preference.penalty);
            assert_eq!(a.keyword.penalty, b.keyword.penalty);
            assert_eq!(a.recommended, b.recommended);
        }
        let s = paged.stats();
        let p = s.pager.expect("paged executor exposes pager stats");
        assert!(p.chunk_misses > 0, "one-byte budget must fault: {p:?}");
        assert!(p.pool_hits + p.pool_misses > 0, "faults must hit the pool: {p:?}");
        assert_eq!(p.paged_trees, 4);
        assert!(resident.stats().pager.is_none());
    }

    #[test]
    fn out_of_core_survives_write_batches() {
        let corpus = random_corpus(300, 91);
        let exec = Executor::new(
            corpus.clone(),
            ExecConfig {
                resident_budget: Some(4096),
                ..ExecConfig::default()
            },
        );
        let (v1, new_ids) = corpus.with_updates(
            [(Point::new(0.31, 0.62), ks(&[2, 4]), "fresh".to_owned())],
            &[ObjectId(7)],
        );
        exec.apply_batch(v1.clone(), &new_ids, &[ObjectId(7)]);
        let params = exec.engine().score_params();
        let mut rng = Xoshiro256::seed_from_u64(14);
        for _ in 0..8 {
            let q = Query::new(
                Point::new(rng.next_f64(), rng.next_f64()),
                ks(&[rng.below(12) as u32]),
                1 + rng.below(6),
            );
            let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
            let want: Vec<ObjectId> = topk_scan(&v1, &params, &q).iter().map(|r| r.id).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn sharded_top_k_matches_scan() {
        let corpus = random_corpus(350, 51);
        let exec = Executor::with_defaults(corpus.clone());
        let params = exec.engine().score_params();
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..20 {
            let q = Query::new(
                Point::new(rng.next_f64(), rng.next_f64()),
                ks(&[rng.below(12) as u32, rng.below(12) as u32]),
                1 + rng.below(8),
            );
            let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
            let want: Vec<ObjectId> = topk_scan(&corpus, &params, &q).iter().map(|r| r.id).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn topk_cache_hits_on_repeat() {
        let corpus = random_corpus(200, 52);
        let exec = Executor::with_defaults(corpus);
        let q = Query::new(Point::new(0.3, 0.3), ks(&[1, 2]), 5);
        let a = exec.top_k(&q);
        let b = exec.top_k(&q);
        assert_eq!(a, b);
        let s = exec.stats();
        assert_eq!(s.topk_cache.hits, 1);
        assert_eq!(s.topk_cache.misses, 1);
        assert_eq!(s.queries, 1, "second call must not recompute");
    }

    #[test]
    fn latency_histograms_sample_compute_and_hit_paths() {
        let corpus = random_corpus(200, 71);
        let exec = Executor::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.3, 0.3), ks(&[1, 2]), 5);
        exec.top_k(&q); // cold: compute histogram
        exec.top_k(&q); // warm: hit histogram
        let all = topk_scan(&corpus, &exec.engine().score_params(), &q.with_k(corpus.len()));
        let missing = vec![all[q.k + 1].id];
        exec.answer(&q, &missing).unwrap();
        let s = exec.stats();
        assert_eq!(s.topk_hist.count, 1, "one cold compute");
        assert_eq!(s.topk_hit_hist.count, 1, "one cache hit");
        assert!(s.topk_hist.sum_ns > 0);
        assert_eq!(s.whynot_hists.full.count, 1);
        // Scatter ran once over 4 shards: each shard histogram sampled once.
        assert!(s.shard_search_hists.iter().all(|h| h.count == 1));
    }

    #[test]
    fn traced_query_yields_span_tree() {
        let corpus = random_corpus(300, 72);
        let exec = Executor::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.4, 0.4), ks(&[2, 3]), 5);
        let handle = exec.engine();

        let trace = Trace::new("topk");
        exec.top_k_on_traced(&handle, &q, Some(&trace));
        let f = trace.finish();
        let names: Vec<&str> = f.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"cache_lookup"), "{names:?}");
        assert!(names.contains(&"scatter"), "{names:?}");
        assert!(names.contains(&"gather"), "{names:?}");
        let scatter = f.spans.iter().find(|s| s.name == "scatter").unwrap();
        let shard_spans = f
            .spans
            .iter()
            .filter(|s| s.parent == scatter.id && s.name.starts_with("shard"))
            .count();
        assert_eq!(shard_spans, 4, "{names:?}");

        // The cache-hit path records the lookup span only.
        let trace2 = Trace::new("topk-hit");
        exec.top_k_on_traced(&handle, &q, Some(&trace2));
        let f2 = trace2.finish();
        assert_eq!(f2.spans.len(), 1);
        assert_eq!(f2.spans[0].name, "cache_lookup");

        // A traced why-not run records its module span.
        let all = topk_scan(&corpus, &exec.engine().score_params(), &q.with_k(corpus.len()));
        let missing = vec![all[q.k + 1].id];
        let trace3 = Trace::new("whynot");
        exec.answer_with_lambda_on_traced(&handle, &q, &missing, 0.5, Some(&trace3), None)
            .unwrap();
        let f3 = trace3.finish();
        assert!(
            f3.spans.iter().any(|s| s.name == "whynot_full"),
            "{:?}",
            f3.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn answer_cache_hits_on_repeat() {
        let corpus = random_corpus(250, 53);
        let exec = Executor::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.2, 0.7), ks(&[2, 3]), 4);
        let all = topk_scan(&corpus, &exec.engine().score_params(), &q.with_k(corpus.len()));
        let missing = vec![all[q.k + 2].id];
        let a = exec.answer(&q, &missing).unwrap();
        let b = exec.answer(&q, &missing).unwrap();
        assert_eq!(a.preference.penalty, b.preference.penalty);
        assert_eq!(a.keyword.penalty, b.keyword.penalty);
        let s = exec.stats();
        assert_eq!(s.answer_cache.hits, 1);
        assert_eq!(s.answer_cache.misses, 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let corpus = random_corpus(60, 54);
        let exec = Executor::with_defaults(corpus);
        let q = Query::new(Point::new(0.5, 0.5), ks(&[1]), 3);
        for _ in 0..2 {
            assert!(matches!(
                exec.answer(&q, &[]),
                Err(WhyNotError::EmptyMissingSet)
            ));
        }
        let s = exec.stats();
        assert_eq!(s.answer_cache.insertions, 0);
        assert_eq!(s.answer_cache.misses, 2);
    }

    #[test]
    fn explain_cache_respects_missing_order_and_multiplicity() {
        let corpus = random_corpus(200, 59);
        let exec = Executor::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.4, 0.4), ks(&[1, 2]), 3);
        let all = topk_scan(&corpus, &exec.engine().score_params(), &q.with_k(corpus.len()));
        let (a, b) = (all[q.k].id, all[q.k + 1].id);
        // Warm the cache with [a, b], then ask permuted and duplicated
        // variants: each must match the engine exactly, never a reordered
        // or shortened cached payload.
        for missing in [vec![a, b], vec![b, a], vec![a, a]] {
            let via_exec = exec.explain(&q, &missing).unwrap();
            let via_engine =
                yask_core::explain(&corpus, &exec.engine().score_params(), &q, &missing).unwrap();
            assert_eq!(via_exec.len(), via_engine.len(), "{missing:?}");
            for (x, y) in via_exec.iter().zip(&via_engine) {
                assert_eq!(x.object, y.object, "{missing:?}");
                assert_eq!(x.rank, y.rank, "{missing:?}");
            }
        }
    }

    #[test]
    fn default_workers_match_shard_count() {
        let corpus = random_corpus(80, 60);
        let exec = Executor::new(
            corpus,
            ExecConfig {
                shards: 6,
                ..ExecConfig::default()
            },
        );
        assert_eq!(exec.config().workers, 6);
        assert_eq!(exec.stats().workers, 6);
    }

    #[test]
    fn single_shard_config_skips_pool() {
        let corpus = random_corpus(120, 55);
        let exec = Executor::new(corpus.clone(), ExecConfig::single_tree(YaskConfig::default()));
        assert_eq!(exec.shard_count(), 1);
        let q = Query::new(Point::new(0.4, 0.6), ks(&[1]), 5);
        let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
        let want: Vec<ObjectId> = topk_scan(&corpus, &exec.engine().score_params(), &q)
            .iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(got, want);
        let s = exec.stats();
        assert_eq!(s.workers, 0);
        assert_eq!(s.single_queries, 1);
        assert_eq!(s.scatter_queries, 0);
    }

    #[test]
    fn caches_can_be_disabled() {
        let corpus = random_corpus(100, 56);
        let exec = Executor::new(
            corpus,
            ExecConfig {
                topk_cache: 0,
                answer_cache: 0,
                ..ExecConfig::default()
            },
        );
        let q = Query::new(Point::new(0.5, 0.5), ks(&[2]), 3);
        exec.top_k(&q);
        exec.top_k(&q);
        let s = exec.stats();
        assert_eq!(s.queries, 2, "cacheless executor recomputes");
        assert_eq!(s.topk_cache.hits + s.topk_cache.misses, 0);
    }

    #[test]
    fn stats_expose_per_shard_work() {
        let corpus = random_corpus(400, 57);
        let exec = Executor::with_defaults(corpus);
        let q = Query::new(Point::new(0.5, 0.5), ks(&[1, 2, 3]), 10);
        exec.top_k(&q);
        let s = exec.stats();
        assert_eq!(s.shards, 4);
        assert_eq!(s.workers, 4);
        assert_eq!(s.per_shard.len(), 4);
        assert_eq!(s.per_shard.iter().map(|p| p.objects).sum::<usize>(), 400);
        assert_eq!(s.per_shard.iter().map(|p| p.queries).sum::<u64>(), 4);
        assert!(s.per_shard.iter().any(|p| p.nodes_expanded > 0));
    }

    #[test]
    fn concurrent_queries_stay_exact() {
        let corpus = random_corpus(500, 58);
        let exec = std::sync::Arc::new(Executor::new(
            corpus.clone(),
            ExecConfig {
                shards: 4,
                workers: 2, // fewer workers than shards: jobs queue up
                topk_cache: 0,
                ..ExecConfig::default()
            },
        ));
        let params = exec.engine().score_params();
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let exec = exec.clone();
            let corpus = corpus.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(100 + t);
                for _ in 0..10 {
                    let q = Query::new(
                        Point::new(rng.next_f64(), rng.next_f64()),
                        KeywordSet::from_raw([rng.below(12) as u32]),
                        1 + rng.below(6),
                    );
                    let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
                    let want: Vec<ObjectId> =
                        topk_scan(&corpus, &params, &q).iter().map(|r| r.id).collect();
                    assert_eq!(got, want);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(exec.stats().scatter_queries, 60);
    }

    // -- live updates --------------------------------------------------------

    #[test]
    fn apply_batch_publishes_a_new_epoch_and_stays_exact() {
        let corpus = random_corpus(300, 61);
        let exec = Executor::with_defaults(corpus.clone());
        assert_eq!(exec.epoch(), 0);
        let (v1, new_ids) = corpus.with_updates(
            [
                (Point::new(0.41, 0.43), ks(&[1, 2]), "fresh-a".to_owned()),
                (Point::new(0.77, 0.11), ks(&[3]), "fresh-b".to_owned()),
            ],
            &[ObjectId(4), ObjectId(200)],
        );
        let outcome = exec.apply_batch(v1.clone(), &new_ids, &[ObjectId(4), ObjectId(200)]);
        assert_eq!(outcome.epoch, 1);
        assert_eq!(exec.epoch(), 1);
        assert_eq!(exec.corpus().len(), 300);
        // Every query against the new epoch equals a scan of the new
        // corpus version (tombstones invisible, inserts visible).
        let params = exec.engine().score_params();
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..15 {
            let q = Query::new(
                Point::new(rng.next_f64(), rng.next_f64()),
                ks(&[rng.below(12) as u32]),
                1 + rng.below(9),
            );
            let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
            let want: Vec<ObjectId> = topk_scan(&v1, &params, &q).iter().map(|r| r.id).collect();
            assert_eq!(got, want);
        }
        let s = exec.stats();
        assert_eq!((s.epoch, s.batches, s.inserts, s.deletes), (1, 1, 2, 2));
        assert_eq!(s.live_objects, 300);
        assert_eq!(s.tombstones, 2);
        assert_eq!(s.per_shard.iter().map(|p| p.inserts).sum::<u64>(), 2);
        assert_eq!(s.per_shard.iter().map(|p| p.deletes).sum::<u64>(), 2);
    }

    #[test]
    fn readers_pin_an_epoch_across_a_concurrent_batch() {
        let corpus = random_corpus(150, 62);
        let exec = Executor::with_defaults(corpus.clone());
        // Pin epoch 0, then publish epoch 1 deleting object 3.
        let pinned = exec.engine();
        let (v1, _) = corpus.with_updates(std::iter::empty(), &[ObjectId(3)]);
        exec.apply_batch(v1, &[], &[ObjectId(3)]);
        // The pin still sees the old corpus version in full.
        assert_eq!(pinned.epoch(), 0);
        assert!(pinned.corpus().contains(ObjectId(3)));
        assert_eq!(pinned.corpus().len(), 150);
        // New loads see the new epoch.
        assert_eq!(exec.engine().epoch(), 1);
        assert!(!exec.corpus().contains(ObjectId(3)));
    }

    /// Satellite regression: after a delete, a previously cached top-k
    /// answer containing that object must not be served.
    #[test]
    fn topk_cache_is_invalidated_by_deletes() {
        let corpus = random_corpus(200, 63);
        let exec = Executor::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.5, 0.5), ks(&[1]), 5);
        let warm = exec.top_k(&q); // cold miss; cached under epoch 0
        let victim = warm[0].id;
        let (v1, _) = corpus.with_updates(std::iter::empty(), &[victim]);
        exec.apply_batch(v1.clone(), &[], &[victim]);
        let after = exec.top_k(&q);
        assert!(
            after.iter().all(|r| r.id != victim),
            "deleted object served from a stale cache entry"
        );
        // And the refreshed answer is the exact scan of the new version.
        let want: Vec<ObjectId> = topk_scan(&v1, &exec.engine().score_params(), &q)
            .iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(after.iter().map(|r| r.id).collect::<Vec<_>>(), want);
        // Both computations were misses (epoch-tagged keys never collide);
        // a repeat of the new query hits.
        let s0 = exec.stats();
        assert_eq!(s0.topk_cache.misses, 2);
        exec.top_k(&q);
        assert_eq!(exec.stats().topk_cache.hits, s0.topk_cache.hits + 1);
    }

    /// Satellite regression: the why-not answer cache is epoch-tagged too
    /// — a cached answer about an object that was then deleted must not
    /// be served (the engine now reports it foreign).
    #[test]
    fn answer_cache_is_invalidated_by_deletes() {
        let corpus = random_corpus(250, 64);
        let exec = Executor::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.3, 0.6), ks(&[2, 4]), 4);
        let all = topk_scan(&corpus, &exec.engine().score_params(), &q.with_k(corpus.len()));
        let missing = vec![all[q.k + 3].id];
        let warm = exec.answer(&q, &missing).unwrap(); // cached under epoch 0
        assert!(warm.preference.penalty >= 0.0);
        let (v1, _) = corpus.with_updates(std::iter::empty(), &missing);
        exec.apply_batch(v1, &[], &missing);
        // The same question against the new epoch is recomputed, and the
        // engine correctly rejects the now-dead object instead of echoing
        // the stale cached answer.
        assert!(matches!(
            exec.answer(&q, &missing),
            Err(WhyNotError::ForeignObject(_))
        ));
        let s = exec.stats();
        assert_eq!(s.answer_cache.hits, 0);
    }

    #[test]
    fn skewed_growth_triggers_rebalance() {
        // Uniform corpus, then hammer one corner with inserts until the
        // owning shard trips the skew trigger.
        let corpus = random_corpus(200, 65);
        let exec = Executor::new(
            corpus.clone(),
            ExecConfig {
                shards: 4,
                rebalance_skew: 1.5,
                rebalance_min: 64,
                ..ExecConfig::default()
            },
        );
        let mut current = corpus;
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut rebalanced = false;
        for i in 0..400 {
            let (next, ids) = current.with_updates(
                [(
                    Point::new(0.02 + 0.01 * rng.next_f64(), 0.02 + 0.01 * rng.next_f64()),
                    ks(&[1]),
                    format!("corner{i}"),
                )],
                &[],
            );
            let outcome = exec.apply_batch(next.clone(), &ids, &[]);
            current = next;
            if outcome.rebalanced {
                rebalanced = true;
                break;
            }
        }
        assert!(rebalanced, "corner growth never tripped the skew trigger");
        assert!(exec.stats().rebalances >= 1);
        // After the re-split the partition is balanced again and queries
        // remain exact.
        let s = exec.stats();
        let max = s.per_shard.iter().map(|p| p.objects).max().unwrap();
        let live = s.live_objects;
        assert!(
            (max as f64) <= 1.5 * (live as f64 / 4.0).max(1.0),
            "still skewed after rebalance: max {max} of {live}"
        );
        let q = Query::new(Point::new(0.03, 0.03), ks(&[1]), 8);
        let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
        let want: Vec<ObjectId> = topk_scan(&current, &exec.engine().score_params(), &q)
            .iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn concurrent_keyword_refinements_do_not_wedge_the_pool() {
        // Two keyword refinements race on a pool with exactly one thread
        // per shard. Each parks resident evaluation workers on pool
        // threads; without the resident-section guard, interleaved
        // submits leave each refinement waiting on workers stranded
        // behind the other's — a permanent pool deadlock (this test
        // would hang). With the guard, both complete and agree with the
        // single-tree oracle.
        let corpus = random_corpus(300, 77);
        let exec = std::sync::Arc::new(Executor::new(
            corpus.clone(),
            ExecConfig {
                shards: 4,
                workers: 4,
                answer_cache: 0, // force both threads to really compute
                ..ExecConfig::default()
            },
        ));
        let oracle = Executor::new(corpus, ExecConfig::single_tree(Default::default()));
        let q = Query::new(Point::new(0.4, 0.6), KeywordSet::from_raw([1u32, 3]), 4);
        let missing = {
            let all = topk_scan(
                &oracle.corpus(),
                &oracle.engine().score_params(),
                &q.with_k(oracle.corpus().len()),
            );
            vec![all[q.k + 2].id]
        };
        let mut handles = Vec::new();
        for _ in 0..2 {
            let exec = std::sync::Arc::clone(&exec);
            let (q, missing) = (q.clone(), missing.clone());
            handles.push(std::thread::spawn(move || {
                exec.refine_keywords(&q, &missing, 0.5).expect("refinement")
            }));
        }
        let want = oracle.refine_keywords(&q, &missing, 0.5).unwrap();
        for h in handles {
            let got = h.join().expect("refinement thread");
            assert!((got.penalty - want.penalty).abs() < 1e-12);
            assert_eq!(got.query.doc, want.query.doc);
            assert_eq!(got.query.k, want.query.k);
        }
    }

    #[test]
    fn observatory_tracks_demand_per_routed_cell() {
        let corpus = random_corpus(400, 80);
        let exec = Executor::with_defaults(corpus.clone());
        let handle = exec.engine();
        let sharded = match &handle.0.engine {
            EngineKind::Sharded(s) => s,
            _ => unreachable!("default config is sharded"),
        };
        // Fire queries at one fixed point: every touch must land in the
        // cell the router assigns that point, cache hits included.
        let p = Point::new(0.21, 0.84);
        let cell = sharded.route(p);
        let q = Query::new(p, ks(&[3, 5]), 5);
        for _ in 0..10 {
            exec.top_k(&q);
        }
        let wl = exec.stats().workload.expect("observatory on by default");
        assert_eq!(wl.query_touches[cell], 10);
        assert_eq!(wl.query_touches.iter().sum::<u64>(), 10);
        assert!(wl.query_heat[cell] > 9.9, "all heat in the routed cell");
        assert!((wl.query_skew - 4.0).abs() < 0.01, "skew={}", wl.query_skew);
        // Windows saw 1 compute and 9 cache hits, all within the minute.
        assert_eq!(wl.topk.h60.count, 1);
        assert_eq!(wl.topk_hit.h60.count, 9);
        assert!(wl.topk.h60.rate_per_sec() > 0.0);
        // The keyword sketch counted both query keywords per call.
        assert_eq!(wl.keyword_total, 20);
        assert_eq!(wl.hot_keywords.len(), 2);
        assert_eq!(wl.hot_keywords[0].1, 10);
    }

    #[test]
    fn observatory_tracks_writes_and_whynot() {
        let corpus = random_corpus(300, 81);
        let exec = Executor::with_defaults(corpus.clone());
        let q = Query::new(Point::new(0.5, 0.5), ks(&[1, 2]), 4);
        let all = topk_scan(&corpus, &exec.engine().score_params(), &q.with_k(corpus.len()));
        let missing = vec![all[q.k + 1].id];
        exec.answer(&q, &missing).unwrap();
        let (v1, ids) = corpus.with_updates(
            [(Point::new(0.1, 0.1), ks(&[1]), "w0".to_owned())],
            &[ObjectId(7)],
        );
        exec.apply_batch(v1, &ids, &[ObjectId(7)]);
        let wl = exec.stats().workload.unwrap();
        // The full why-not module ran once; its window and the demand
        // heat both saw it.
        assert_eq!(wl.whynot_named()[4].1.h60.count, 1);
        assert_eq!(wl.query_touches.iter().sum::<u64>(), 1);
        // One batch with 2 ops: write window sampled once, write heat
        // counted both ops across the routed cells.
        assert_eq!(wl.writes.h60.count, 1);
        assert_eq!(wl.write_touches.iter().sum::<u64>(), 2);
        assert!(wl.writes.h60.sum_ns > 0);
    }

    #[test]
    fn observatory_can_be_disabled() {
        let corpus = random_corpus(150, 82);
        let exec = Executor::new(
            corpus,
            ExecConfig {
                observatory: false,
                ..ExecConfig::default()
            },
        );
        let q = Query::new(Point::new(0.4, 0.4), ks(&[2]), 3);
        exec.top_k(&q);
        let s = exec.stats();
        assert!(s.workload.is_none());
        assert_eq!(s.queries, 1, "queries still served and counted");
    }

    #[test]
    fn concurrent_reads_during_writes_never_tear() {
        // Readers race a writer applying batches; every read must be
        // internally consistent (scores computable, k results, no panic on
        // dead slots) — the epoch pin guarantees it.
        let corpus = random_corpus(300, 66);
        let exec = std::sync::Arc::new(Executor::with_defaults(corpus.clone()));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let exec = exec.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(500 + t);
                let mut reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let q = Query::new(
                        Point::new(rng.next_f64(), rng.next_f64()),
                        KeywordSet::from_raw([rng.below(12) as u32]),
                        5,
                    );
                    let r = exec.top_k(&q);
                    assert!(r.len() <= 5);
                    for w in r.windows(2) {
                        assert!(w[0].score >= w[1].score, "unsorted result");
                    }
                    reads += 1;
                }
                reads
            }));
        }
        let mut current = corpus;
        let mut rng = Xoshiro256::seed_from_u64(42);
        for i in 0..60 {
            let live = current.live_ids();
            let victim = live[rng.below(live.len())];
            let (next, ids) = current.with_updates(
                [(
                    Point::new(rng.next_f64(), rng.next_f64()),
                    KeywordSet::from_raw([rng.below(12) as u32]),
                    format!("w{i}"),
                )],
                &[victim],
            );
            exec.apply_batch(next.clone(), &ids, &[victim]);
            current = next;
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            assert!(h.join().unwrap() > 0, "reader did no work");
        }
        assert_eq!(exec.epoch(), 60);
    }
}
