//! Property tests: the out-of-core executor is *exactly* the resident
//! one.
//!
//! For randomized corpora and queries, an executor whose shard trees are
//! served through the buffer pool ([`ExecConfig::resident_budget`]) must
//! answer top-k and every why-not module byte-identically to a fully
//! resident executor — at budgets from "everything fits" down to one
//! byte, where every node-chunk access faults through the pager. This is
//! the oracle CI runs: paging is a memory-placement decision, never an
//! answer-changing one.

use proptest::prelude::*;

use yask_exec::{ExecConfig, Executor};
use yask_geo::{Point, Space};
use yask_index::{Corpus, CorpusBuilder, ObjectId};
use yask_query::{Query, Weights};
use yask_text::KeywordSet;

/// One byte (worst case: nothing stays decoded), one small chunk's
/// worth, and effectively unbounded (everything decodes once and stays).
const BUDGETS: [usize; 3] = [1, 4 * 1024, 1 << 30];

#[derive(Debug, Clone)]
struct ArbCorpus {
    corpus: Corpus,
}

fn corpus(min: usize, max: usize) -> impl Strategy<Value = ArbCorpus> {
    proptest::collection::vec(
        (
            0.0f64..1.0,
            0.0f64..1.0,
            proptest::collection::vec(0u32..15, 1..=5),
        ),
        min..=max,
    )
    .prop_map(|objs| {
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        for (i, (x, y, kws)) in objs.into_iter().enumerate() {
            b.push(Point::new(x, y), KeywordSet::from_raw(kws), format!("o{i}"));
        }
        ArbCorpus { corpus: b.build() }
    })
}

fn query() -> impl Strategy<Value = Query> {
    (
        0.0f64..1.0,
        0.0f64..1.0,
        proptest::collection::vec(0u32..15, 1..=4),
        1usize..=8,
        0.05f64..0.95,
    )
        .prop_map(|(x, y, kws, k, ws)| {
            Query::with_weights(
                Point::new(x, y),
                KeywordSet::from_raw(kws),
                k,
                Weights::from_ws(ws),
            )
        })
}

fn paged_exec(c: &Corpus, shards: usize, budget: usize) -> Executor {
    Executor::new(
        c.clone(),
        ExecConfig {
            shards,
            workers: shards.min(4),
            resident_budget: Some(budget),
            // Caches off so every repeat recomputes through the pager.
            topk_cache: 0,
            answer_cache: 0,
            ..ExecConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Top-k equality at every budget, single-tree and sharded.
    #[test]
    fn paged_topk_equals_resident(c in corpus(10, 120), q in query()) {
        for shards in [1usize, 3] {
            let resident = Executor::new(
                c.corpus.clone(),
                ExecConfig {
                    shards,
                    workers: shards.min(4),
                    topk_cache: 0,
                    answer_cache: 0,
                    ..ExecConfig::default()
                },
            );
            let want = resident.top_k(&q);
            for budget in BUDGETS {
                let paged = paged_exec(&c.corpus, shards, budget);
                prop_assert_eq!(
                    &paged.top_k(&q), &want,
                    "shards = {}, budget = {}", shards, budget
                );
            }
        }
    }

    /// The full why-not surface — explanations, preference adjustment,
    /// keyword adaptation, and the recommended model — at the worst-case
    /// one-byte budget, where every read faults.
    #[test]
    fn paged_whynot_equals_resident(c in corpus(40, 100), q in query()) {
        let resident = Executor::new(
            c.corpus.clone(),
            ExecConfig { shards: 2, topk_cache: 0, answer_cache: 0, ..ExecConfig::default() },
        );
        // Pick the first object below the top-k as the missing one.
        let all = resident.top_k(&q.with_k(c.corpus.len()));
        prop_assume!(all.len() > q.k);
        let missing: Vec<ObjectId> = vec![all[q.k].id];
        let want = resident.answer_with_lambda(&q, &missing, 0.5);
        let paged = paged_exec(&c.corpus, 2, 1);
        let got = paged.answer_with_lambda(&q, &missing, 0.5);
        match (want, got) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.explanations.len(), b.explanations.len());
                prop_assert_eq!(a.preference.penalty, b.preference.penalty);
                prop_assert_eq!(a.keyword.penalty, b.keyword.penalty);
                prop_assert_eq!(a.recommended, b.recommended);
            }
            (a, b) => prop_assert!(
                a.is_err() == b.is_err(),
                "resident and paged disagree on error"
            ),
        }
        // A one-byte budget cannot keep chunks resident: the run must
        // have faulted, and the counters must say so.
        let p = paged.stats().pager.expect("paged executor exposes pager stats");
        prop_assert!(p.chunk_misses > 0, "one-byte budget must fault: {:?}", p);
    }
}
