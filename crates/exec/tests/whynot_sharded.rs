//! Property tests: the per-shard why-not fan-out is *exactly* the
//! single-tree path.
//!
//! The executor no longer holds a global KcR-tree — explanations, keyword
//! adaptation and preference adjustment are all computed from the shard
//! trees (per-shard exact rank counts summed at the gather, per-shard
//! segment sets merged before the sweep, the shared candidate skeleton
//! with a cross-shard abort bound). These tests pin the tentpole claim:
//! for K ∈ {1, 2, 4, 8}, on random corpora — with and without tombstones,
//! before and after live write batches — every why-not answer equals the
//! retained single-tree (`shards = 1`) path, down to penalties, refined
//! queries, ranks and rendered messages.

use proptest::prelude::*;

use yask_core::Explanation;
use yask_exec::{ExecConfig, Executor};
use yask_geo::{Point, Space};
use yask_index::{Corpus, CorpusBuilder, ObjectId};
use yask_query::{topk_scan, Query, Weights};
use yask_text::KeywordSet;
use yask_util::Xoshiro256;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Debug, Clone)]
struct ArbCorpus {
    corpus: Corpus,
}

fn corpus(min: usize, max: usize) -> impl Strategy<Value = ArbCorpus> {
    proptest::collection::vec(
        (
            0.0f64..1.0,
            0.0f64..1.0,
            proptest::collection::vec(0u32..12, 1..=4),
        ),
        min..=max,
    )
    .prop_map(|objs| {
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        for (i, (x, y, kws)) in objs.into_iter().enumerate() {
            b.push(Point::new(x, y), KeywordSet::from_raw(kws), format!("o{i}"));
        }
        ArbCorpus { corpus: b.build() }
    })
}

fn query() -> impl Strategy<Value = Query> {
    (
        0.0f64..1.0,
        0.0f64..1.0,
        proptest::collection::vec(0u32..12, 1..=3),
        1usize..=6,
        0.1f64..0.9,
    )
        .prop_map(|(x, y, kws, k, ws)| {
            Query::with_weights(
                Point::new(x, y),
                KeywordSet::from_raw(kws),
                k,
                Weights::from_ws(ws),
            )
        })
}

fn exec_with(corpus: &Corpus, shards: usize) -> Executor {
    Executor::new(
        corpus.clone(),
        ExecConfig {
            shards,
            workers: shards.min(4),
            ..ExecConfig::default()
        },
    )
}

/// Picks a missing set strictly below the top-k of the initial query, or
/// `None` when the corpus ranking leaves nothing to miss.
fn pick_missing(corpus: &Corpus, exec: &Executor, q: &Query, m: usize) -> Option<Vec<ObjectId>> {
    let all = topk_scan(corpus, &exec.engine().score_params(), &q.with_k(corpus.len()));
    if all.len() < q.k + 1 + m {
        return None;
    }
    Some(all[q.k + 1..q.k + 1 + m].iter().map(|r| r.id).collect())
}

fn assert_explanations_equal(a: &[Explanation], b: &[Explanation], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: explanation count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.object, y.object, "{label}");
        assert_eq!(x.rank, y.rank, "{label}: rank of {:?}", x.object);
        assert_eq!(x.reason, y.reason, "{label}: reason of {:?}", x.object);
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "{label}: score bits");
        assert_eq!(
            x.kth_score.to_bits(),
            y.kth_score.to_bits(),
            "{label}: kth score bits"
        );
        assert_eq!(x.message, y.message, "{label}: rendered message");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole equivalence, keyword adaptation: the sharded fan-out's
    /// refinement equals the single-tree path's — same refined doc, same
    /// k′, bit-identical penalty — for every shard count.
    #[test]
    fn sharded_keyword_refinement_matches_single_tree(c in corpus(30, 90), q in query()) {
        let single = exec_with(&c.corpus, 1);
        let Some(missing) = pick_missing(&c.corpus, &single, &q, 1) else { return; };
        let want = single.refine_keywords(&q, &missing, 0.5);
        for shards in SHARD_COUNTS {
            let exec = exec_with(&c.corpus, shards);
            let got = exec.refine_keywords(&q, &missing, 0.5);
            match (&got, &want) {
                (Ok(g), Ok(w)) => {
                    prop_assert_eq!(&g.query.doc, &w.query.doc, "doc at K={}", shards);
                    prop_assert_eq!(g.query.k, w.query.k, "k at K={}", shards);
                    prop_assert_eq!(g.penalty.to_bits(), w.penalty.to_bits(),
                        "penalty at K={}: {} vs {}", shards, g.penalty, w.penalty);
                    prop_assert_eq!(g.rank, w.rank, "rank at K={}", shards);
                    prop_assert_eq!(g.delta_doc, w.delta_doc, "delta_doc at K={}", shards);
                    prop_assert_eq!(g.delta_k, w.delta_k, "delta_k at K={}", shards);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "error at K={}", shards),
                _ => prop_assert!(false, "K={}: one path errored: {:?} vs {:?}", shards, got, want),
            }
        }
    }

    /// Tentpole equivalence, preference adjustment: per-shard segment
    /// construction merged before the sweep equals the single scan.
    #[test]
    fn sharded_pref_refinement_matches_single_tree(c in corpus(30, 90), q in query()) {
        let single = exec_with(&c.corpus, 1);
        let Some(missing) = pick_missing(&c.corpus, &single, &q, 2) else { return; };
        let want = single.refine_preference(&q, &missing, 0.5);
        for shards in SHARD_COUNTS {
            let exec = exec_with(&c.corpus, shards);
            let got = exec.refine_preference(&q, &missing, 0.5);
            match (&got, &want) {
                (Ok(g), Ok(w)) => {
                    prop_assert_eq!(g.query.weights, w.query.weights, "weights at K={}", shards);
                    prop_assert_eq!(g.query.k, w.query.k, "k at K={}", shards);
                    prop_assert_eq!(g.penalty.to_bits(), w.penalty.to_bits(),
                        "penalty at K={}: {} vs {}", shards, g.penalty, w.penalty);
                    prop_assert_eq!(g.rank, w.rank, "rank at K={}", shards);
                    prop_assert_eq!(g.delta_w.to_bits(), w.delta_w.to_bits(), "Δw at K={}", shards);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "error at K={}", shards),
                _ => prop_assert!(false, "K={}: one path errored: {:?} vs {:?}", shards, got, want),
            }
        }
    }

    /// Tentpole equivalence, explanations: per-shard exact rank counts
    /// summed at the gather yield the same ranks, classifications and
    /// rendered messages as the scan path.
    #[test]
    fn sharded_explain_matches_single_tree(c in corpus(30, 90), q in query()) {
        let single = exec_with(&c.corpus, 1);
        let Some(missing) = pick_missing(&c.corpus, &single, &q, 2) else { return; };
        let want = single.explain(&q, &missing).expect("valid request");
        for shards in SHARD_COUNTS {
            let exec = exec_with(&c.corpus, shards);
            let got = exec.explain(&q, &missing).expect("valid request");
            assert_explanations_equal(&got, &want, &format!("K={shards}"));
        }
    }

    /// The composed endpoints (combined refinement, full answer) ride on
    /// the same three modules; one equivalence pass over them guards the
    /// chaining and recommendation glue.
    #[test]
    fn sharded_combined_and_answer_match(c in corpus(30, 70), q in query()) {
        let single = exec_with(&c.corpus, 1);
        let Some(missing) = pick_missing(&c.corpus, &single, &q, 1) else { return; };
        let exec = exec_with(&c.corpus, 4);
        match (exec.refine_combined(&q, &missing, 0.5), single.refine_combined(&q, &missing, 0.5)) {
            (Ok(g), Ok(w)) => {
                prop_assert_eq!(g.penalty.to_bits(), w.penalty.to_bits());
                prop_assert_eq!(g.order, w.order);
                prop_assert_eq!(&g.query.doc, &w.query.doc);
                prop_assert_eq!(g.query.weights, w.query.weights);
                prop_assert_eq!(g.query.k, w.query.k);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "one path errored: {:?} vs {:?}", a, b),
        }
        match (exec.answer_with_lambda(&q, &missing, 0.5), single.answer_with_lambda(&q, &missing, 0.5)) {
            (Ok(g), Ok(w)) => {
                prop_assert_eq!(g.preference.penalty.to_bits(), w.preference.penalty.to_bits());
                prop_assert_eq!(g.keyword.penalty.to_bits(), w.keyword.penalty.to_bits());
                prop_assert_eq!(g.recommended, w.recommended);
                assert_explanations_equal(&g.explanations, &w.explanations, "answer");
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "one path errored: {:?} vs {:?}", a, b),
        }
    }
}

fn random_corpus(n: usize, seed: u64) -> Corpus {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
    for i in 0..n {
        let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(12) as u32));
        b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
    }
    b.build()
}

fn ks(ids: &[u32]) -> KeywordSet {
    KeywordSet::from_raw(ids.iter().copied())
}

/// All three modules stay exact on corpora with tombstones (post-delete
/// epochs): fresh executors built over a corpus version carrying dead
/// slots agree across every shard count and λ.
#[test]
fn tombstoned_corpora_stay_exact() {
    let base = random_corpus(150, 21);
    // Tombstone ~1/5 of the corpus.
    let victims: Vec<ObjectId> = (0..150).step_by(5).map(|i| ObjectId(i as u32)).collect();
    let (v1, _) = base.with_updates(std::iter::empty(), &victims);
    assert_eq!(v1.tombstones(), victims.len());

    let single = exec_with(&v1, 1);
    let mut rng = Xoshiro256::seed_from_u64(7);
    for (case, &dead) in victims.iter().enumerate().take(6) {
        let q = Query::new(
            Point::new(rng.next_f64(), rng.next_f64()),
            ks(&[rng.below(12) as u32, rng.below(12) as u32]),
            1 + rng.below(5),
        );
        let Some(missing) = pick_missing(&v1, &single, &q, 1) else {
            continue;
        };
        for lambda in [0.2, 0.5, 0.8] {
            let kw_want = single.refine_keywords(&q, &missing, lambda).unwrap();
            let pref_want = single.refine_preference(&q, &missing, lambda).unwrap();
            let ex_want = single.explain(&q, &missing).unwrap();
            for shards in SHARD_COUNTS {
                let exec = exec_with(&v1, shards);
                let kw = exec.refine_keywords(&q, &missing, lambda).unwrap();
                assert_eq!(kw.query.doc, kw_want.query.doc, "case {case} K={shards} λ={lambda}");
                assert_eq!(kw.query.k, kw_want.query.k, "case {case} K={shards} λ={lambda}");
                assert_eq!(
                    kw.penalty.to_bits(),
                    kw_want.penalty.to_bits(),
                    "case {case} K={shards} λ={lambda}"
                );
                let pref = exec.refine_preference(&q, &missing, lambda).unwrap();
                assert_eq!(pref.query.weights, pref_want.query.weights, "case {case} K={shards}");
                assert_eq!(
                    pref.penalty.to_bits(),
                    pref_want.penalty.to_bits(),
                    "case {case} K={shards} λ={lambda}"
                );
                let ex = exec.explain(&q, &missing).unwrap();
                assert_explanations_equal(&ex, &ex_want, &format!("case {case} K={shards}"));
            }
        }
        // A tombstoned id is foreign to every path.
        for shards in SHARD_COUNTS {
            let exec = exec_with(&v1, shards);
            assert!(
                matches!(
                    exec.explain(&q, &[dead]),
                    Err(yask_core::WhyNotError::ForeignObject(_))
                ),
                "K={shards}: dead object accepted"
            );
        }
    }
}

/// Satellite regression: why-not answers remain exact *after* live write
/// batches — the incrementally maintained shard trees answer identically
/// to a fresh single-tree executor built from the final corpus version.
#[test]
fn apply_batch_then_whynot_stays_exact() {
    let base = random_corpus(120, 22);
    let execs: Vec<Executor> = SHARD_COUNTS.iter().map(|&k| exec_with(&base, k)).collect();

    // A few epochs of mixed writes, applied identically everywhere.
    let mut corpus = base;
    let mut rng = Xoshiro256::seed_from_u64(9);
    for round in 0..5 {
        let live = corpus.live_ids();
        let victim = live[rng.below(live.len())];
        let (next, new_ids) = corpus.with_updates(
            [
                (
                    Point::new(rng.next_f64(), rng.next_f64()),
                    ks(&[rng.below(12) as u32]),
                    format!("w{round}a"),
                ),
                (
                    Point::new(rng.next_f64(), rng.next_f64()),
                    ks(&[rng.below(12) as u32, rng.below(12) as u32]),
                    format!("w{round}b"),
                ),
            ],
            &[victim],
        );
        for exec in &execs {
            exec.apply_batch(next.clone(), &new_ids, &[victim]);
        }
        corpus = next;
    }

    // Oracle: a fresh single-tree executor over the final version.
    let fresh = exec_with(&corpus, 1);
    for case in 0..6 {
        let q = Query::new(
            Point::new(rng.next_f64(), rng.next_f64()),
            ks(&[rng.below(12) as u32, rng.below(12) as u32]),
            1 + rng.below(4),
        );
        let Some(missing) = pick_missing(&corpus, &fresh, &q, 1) else {
            continue;
        };
        let kw_want = fresh.refine_keywords(&q, &missing, 0.5).unwrap();
        let pref_want = fresh.refine_preference(&q, &missing, 0.5).unwrap();
        let ex_want = fresh.explain(&q, &missing).unwrap();
        for (exec, &shards) in execs.iter().zip(&SHARD_COUNTS) {
            assert_eq!(exec.epoch(), 5, "K={shards}");
            let kw = exec.refine_keywords(&q, &missing, 0.5).unwrap();
            assert_eq!(kw.query.doc, kw_want.query.doc, "case {case} K={shards}");
            assert_eq!(kw.penalty.to_bits(), kw_want.penalty.to_bits(), "case {case} K={shards}");
            let pref = exec.refine_preference(&q, &missing, 0.5).unwrap();
            assert_eq!(pref.query.weights, pref_want.query.weights, "case {case} K={shards}");
            assert_eq!(
                pref.penalty.to_bits(),
                pref_want.penalty.to_bits(),
                "case {case} K={shards}"
            );
            let ex = exec.explain(&q, &missing).unwrap();
            assert_explanations_equal(&ex, &ex_want, &format!("case {case} K={shards}"));
        }
    }
}

/// The executor's index footprint is the shard trees alone: per-shard
/// node counters sum to the snapshot totals, and the single-tree and
/// sharded configurations index the same objects without a duplicate
/// global tree inflating either.
#[test]
fn index_counters_cover_exactly_the_shard_trees() {
    let corpus = random_corpus(400, 23);
    let single = exec_with(&corpus, 1);
    let s1 = single.stats();
    assert_eq!(s1.per_shard.len(), 1);
    assert_eq!(s1.index_nodes, s1.per_shard[0].nodes);
    assert!(s1.index_bytes > 0);

    let sharded = exec_with(&corpus, 4);
    let s4 = sharded.stats();
    assert_eq!(s4.per_shard.iter().map(|p| p.nodes).sum::<usize>(), s4.index_nodes);
    assert_eq!(
        s4.per_shard.iter().map(|p| p.index_bytes).sum::<usize>(),
        s4.index_bytes
    );
    assert_eq!(s4.per_shard.iter().map(|p| p.objects).sum::<usize>(), 400);
    // No hidden second index: the sharded total stays in the same
    // ballpark as one tree over the same objects (more roots, not 2×).
    assert!(
        s4.index_nodes < 2 * s1.index_nodes,
        "sharded executor still carries a global tree? {} vs {}",
        s4.index_nodes,
        s1.index_nodes
    );
}
