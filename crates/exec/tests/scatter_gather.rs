//! Property tests: the sharded scatter-gather executor is *exactly* the
//! single-tree engine.
//!
//! For randomized corpora and queries, and every shard count K ∈
//! {1, 2, 3, 5, 8}, the executor's top-k must equal `topk_tree` on one
//! KcR-tree over the whole corpus: same ids, same score order, ties
//! broken identically (score descending, id ascending). The cache must
//! be transparent, and the shard partition must disjointly cover the
//! corpus.

use proptest::prelude::*;

use yask_core::YaskConfig;
use yask_exec::{ExecConfig, Executor, ShardedIndex};
use yask_geo::{Point, Space};
use yask_index::{Corpus, CorpusBuilder, KcRTree, ObjectId, RTreeParams};
use yask_query::{topk_tree, Query, ScoreParams, Weights};
use yask_text::KeywordSet;

const SHARD_COUNTS: [usize; 5] = [1, 2, 3, 5, 8];

#[derive(Debug, Clone)]
struct ArbCorpus {
    corpus: Corpus,
}

fn corpus(min: usize, max: usize) -> impl Strategy<Value = ArbCorpus> {
    proptest::collection::vec(
        (
            0.0f64..1.0,
            0.0f64..1.0,
            proptest::collection::vec(0u32..15, 1..=5),
        ),
        min..=max,
    )
    .prop_map(|objs| {
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        for (i, (x, y, kws)) in objs.into_iter().enumerate() {
            b.push(Point::new(x, y), KeywordSet::from_raw(kws), format!("o{i}"));
        }
        ArbCorpus { corpus: b.build() }
    })
}

fn query() -> impl Strategy<Value = Query> {
    (
        0.0f64..1.0,
        0.0f64..1.0,
        proptest::collection::vec(0u32..15, 1..=4),
        1usize..=10,
        0.05f64..0.95,
    )
        .prop_map(|(x, y, kws, k, ws)| {
            Query::with_weights(
                Point::new(x, y),
                KeywordSet::from_raw(kws),
                k,
                Weights::from_ws(ws),
            )
        })
}

fn ids(result: &[yask_query::RankedObject]) -> Vec<ObjectId> {
    result.iter().map(|r| r.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: executor top-k == single-tree top-k for
    /// every shard count, on ids, order, and scores.
    #[test]
    fn sharded_topk_equals_single_tree(c in corpus(10, 120), q in query()) {
        let tree = KcRTree::bulk_load(c.corpus.clone(), RTreeParams::default());
        let params = ScoreParams::new(c.corpus.space());
        let want = topk_tree(&tree, &params, &q);
        for shards in SHARD_COUNTS {
            let exec = Executor::new(
                c.corpus.clone(),
                ExecConfig {
                    shards,
                    workers: shards.min(4),
                    yask: YaskConfig::default(),
                    ..ExecConfig::default()
                },
            );
            let got = exec.top_k(&q);
            prop_assert_eq!(ids(&got), ids(&want), "shards = {}", shards);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g.score - w.score).abs() < 1e-12, "score drift at shards = {}", shards);
            }
        }
    }

    /// Cache transparency: a repeated query returns the identical result
    /// and is served from the cache.
    #[test]
    fn cache_is_transparent(c in corpus(20, 80), q in query()) {
        let exec = Executor::new(
            c.corpus.clone(),
            ExecConfig { shards: 3, ..ExecConfig::default() },
        );
        let first = exec.top_k(&q);
        let second = exec.top_k(&q);
        prop_assert_eq!(&first, &second);
        let stats = exec.stats();
        prop_assert_eq!(stats.topk_cache.hits, 1);
        prop_assert_eq!(stats.queries, 1);
    }

    /// The STR partition is a disjoint cover for every shard count.
    #[test]
    fn partition_is_a_disjoint_cover(c in corpus(0, 100)) {
        for shards in SHARD_COUNTS {
            let sharded = ShardedIndex::build(c.corpus.clone(), shards, RTreeParams::default());
            prop_assert_eq!(sharded.shard_count(), shards);
            let mut seen: Vec<ObjectId> = sharded
                .shards()
                .iter()
                .flat_map(|t| t.object_ids())
                .collect();
            seen.sort_unstable();
            let want: Vec<ObjectId> = c.corpus.iter().map(|o| o.id).collect();
            prop_assert_eq!(seen, want, "shards = {}", shards);
            for tree in sharded.shards() {
                tree.validate().expect("shard invariants");
            }
        }
    }

    /// Why-not answers through the sharded executor equal a fresh
    /// single-tree engine's, and the answer cache serves repeats.
    #[test]
    fn cached_whynot_equals_engine(c in corpus(40, 100), q in query()) {
        let exec = Executor::new(
            c.corpus.clone(),
            ExecConfig { shards: 2, ..ExecConfig::default() },
        );
        let engine = yask_core::Yask::with_defaults(c.corpus.clone());
        // Pick the first object *below* the top-k as the missing one.
        let all = engine.top_k(&q.with_k(c.corpus.len()));
        prop_assume!(all.len() > q.k);
        let missing = vec![all[q.k].id];
        let via_exec = exec.answer_with_lambda(&q, &missing, 0.5);
        let via_engine = engine.answer_with_lambda(&q, &missing, 0.5);
        match (via_exec, via_engine) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.preference.penalty, b.preference.penalty);
                prop_assert_eq!(a.keyword.penalty, b.keyword.penalty);
                prop_assert_eq!(a.explanations.len(), b.explanations.len());
                // Repeat is a cache hit with the same payload.
                let again = exec.answer_with_lambda(&q, &missing, 0.5).unwrap();
                prop_assert_eq!(a.preference.penalty, again.preference.penalty);
                prop_assert_eq!(exec.stats().answer_cache.hits, 1);
            }
            (a, b) => prop_assert!(
                a.is_err() == b.is_err(),
                "executor and engine disagree on error"
            ),
        }
    }
}
