//! Immutable sorted keyword sets with merge-based set algebra.
//!
//! `o.doc` and `q.doc` are sets of keywords (paper §2.1). Representing them
//! as sorted `Box<[u32]>` keeps them compact (2 words + payload), makes
//! intersection/union sizes a linear merge, and gives deterministic
//! iteration order — which every index bound in this workspace leans on.

use std::fmt;

use crate::vocab::KeywordId;

/// An immutable, duplicate-free, sorted set of keyword ids.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct KeywordSet {
    ids: Box<[u32]>,
}

impl KeywordSet {
    /// The empty set.
    pub fn empty() -> Self {
        KeywordSet::default()
    }

    /// Builds a set from arbitrary ids (sorted + deduplicated here).
    pub fn from_ids<I: IntoIterator<Item = KeywordId>>(iter: I) -> Self {
        let mut v: Vec<u32> = iter.into_iter().map(|k| k.0).collect();
        v.sort_unstable();
        v.dedup();
        KeywordSet { ids: v.into() }
    }

    /// Builds from raw `u32`s (test/fixture convenience).
    pub fn from_raw<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        KeywordSet::from_ids(iter.into_iter().map(KeywordId))
    }

    /// Number of keywords.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the set has no keywords.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Sorted raw ids.
    #[inline]
    pub fn raw(&self) -> &[u32] {
        &self.ids
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = KeywordId> + '_ {
        self.ids.iter().map(|&v| KeywordId(v))
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, id: KeywordId) -> bool {
        self.ids.binary_search(&id.0).is_ok()
    }

    /// `|self ∩ other|` — linear merge for comparable sizes, per-element
    /// binary search when one side is much smaller (queries against the
    /// huge union sets of upper R-tree nodes hit this path, turning an
    /// O(|union|) walk into O(|q|·log|union|)).
    pub fn intersection_size(&self, other: &KeywordSet) -> usize {
        let (small, large) = if self.len() <= other.len() {
            (&self.ids, &other.ids)
        } else {
            (&other.ids, &self.ids)
        };
        if large.len() >= 16 * small.len().max(1) {
            return small
                .iter()
                .filter(|v| large.binary_search(v).is_ok())
                .count();
        }
        let (mut i, mut j, mut n) = (0, 0, 0);
        let (a, b) = (small, large);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// `|self ∪ other|` without materializing the union.
    #[inline]
    pub fn union_size(&self, other: &KeywordSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Materialized intersection.
    pub fn intersection(&self, other: &KeywordSet) -> KeywordSet {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.ids, &other.ids);
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        KeywordSet { ids: out.into() }
    }

    /// Materialized union.
    pub fn union(&self, other: &KeywordSet) -> KeywordSet {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.ids, &other.ids);
        let mut out = Vec::with_capacity(a.len() + b.len());
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        KeywordSet { ids: out.into() }
    }

    /// Materialized difference `self \ other`.
    pub fn difference(&self, other: &KeywordSet) -> KeywordSet {
        let out: Vec<u32> = self
            .ids
            .iter()
            .copied()
            .filter(|v| other.ids.binary_search(v).is_err())
            .collect();
        KeywordSet { ids: out.into() }
    }

    /// True when every keyword of `self` is in `other`.
    pub fn is_subset_of(&self, other: &KeywordSet) -> bool {
        self.intersection_size(other) == self.len()
    }

    /// Insert/delete edit distance between keyword sets — the `Δdoc` of
    /// Eqn (4): the minimum number of single-keyword insertions and
    /// deletions transforming `self` into `other`, which for sets is
    /// `|self| + |other| − 2·|self ∩ other|` (the symmetric difference).
    pub fn edit_distance(&self, other: &KeywordSet) -> usize {
        self.len() + other.len() - 2 * self.intersection_size(other)
    }

    /// Jaccard similarity — Eqn (2) of the paper. Two empty sets have
    /// similarity 0 by convention (an empty query matches nothing).
    pub fn jaccard(&self, other: &KeywordSet) -> f64 {
        let inter = self.intersection_size(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

impl fmt::Debug for KeywordSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeywordSet{:?}", self.ids)
    }
}

impl FromIterator<KeywordId> for KeywordSet {
    fn from_iter<I: IntoIterator<Item = KeywordId>>(iter: I) -> Self {
        KeywordSet::from_ids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = ks(&[5, 1, 3, 1, 5]);
        assert_eq!(s.raw(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn membership() {
        let s = ks(&[2, 4, 6]);
        assert!(s.contains(KeywordId(4)));
        assert!(!s.contains(KeywordId(5)));
        assert!(!KeywordSet::empty().contains(KeywordId(0)));
    }

    #[test]
    fn intersection_and_union_sizes() {
        let a = ks(&[1, 2, 3, 4]);
        let b = ks(&[3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 5);
        assert_eq!(a.intersection(&b).raw(), &[3, 4]);
        assert_eq!(a.union(&b).raw(), &[1, 2, 3, 4, 5]);
        assert_eq!(a.difference(&b).raw(), &[1, 2]);
    }

    #[test]
    fn empty_set_algebra() {
        let a = ks(&[1, 2]);
        let e = KeywordSet::empty();
        assert_eq!(a.intersection_size(&e), 0);
        assert_eq!(a.union_size(&e), 2);
        assert_eq!(e.union(&a), a);
        assert_eq!(e.difference(&a), e);
        assert!(e.is_subset_of(&a));
        assert!(!a.is_subset_of(&e));
    }

    #[test]
    fn jaccard_matches_paper_eqn2() {
        // |{a,b} ∩ {b,c}| / |{a,b} ∪ {b,c}| = 1/3
        let a = ks(&[0, 1]);
        let b = ks(&[1, 2]);
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-12);
        // Identical sets → 1.
        assert_eq!(a.jaccard(&a), 1.0);
        // Disjoint sets → 0.
        assert_eq!(a.jaccard(&ks(&[7, 8])), 0.0);
        // Empty vs empty → 0 by convention.
        assert_eq!(KeywordSet::empty().jaccard(&KeywordSet::empty()), 0.0);
    }

    #[test]
    fn edit_distance_is_symmetric_difference() {
        let a = ks(&[1, 2, 3]);
        let b = ks(&[2, 3, 4, 5]);
        // Delete 1, insert 4, insert 5 → 3 operations.
        assert_eq!(a.edit_distance(&b), 3);
        assert_eq!(b.edit_distance(&a), 3);
        assert_eq!(a.edit_distance(&a), 0);
        assert_eq!(a.edit_distance(&KeywordSet::empty()), 3);
    }

    #[test]
    fn subset_checks() {
        let a = ks(&[1, 2]);
        let b = ks(&[1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn from_iterator_collects() {
        let s: KeywordSet = [KeywordId(3), KeywordId(1)].into_iter().collect();
        assert_eq!(s.raw(), &[1, 3]);
    }

    #[test]
    fn iter_yields_sorted_keyword_ids() {
        let s = ks(&[9, 4, 7]);
        let got: Vec<u32> = s.iter().map(|k| k.0).collect();
        assert_eq!(got, vec![4, 7, 9]);
    }
}
