//! Keyword extraction from raw text.
//!
//! The demo dataset's keyword sets were "extracted from the facilities and
//! user comments relating to the hotel" (paper §4). This module is that
//! extraction step: lower-case, split on non-alphanumeric characters, drop
//! stopwords and very short tokens, and deduplicate — producing the bag of
//! keywords that gets interned into a [`crate::Vocabulary`].

/// English stopwords that add no discriminative power to facility/comment
/// keyword sets. Deliberately small: spatial-keyword corpora are terse.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "had", "has", "have",
    "in", "is", "it", "its", "of", "on", "or", "that", "the", "this", "to", "too", "very", "was",
    "were", "will", "with",
];

/// True when `word` is a stopword. `word` must already be lower-case.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Tokenizes free text into deduplicated lower-case keywords, preserving
/// first-occurrence order.
///
/// ```
/// use yask_text::tokenize;
/// assert_eq!(
///     tokenize("Clean, comfortable & CLEAN rooms near the harbour!"),
///     vec!["clean", "comfortable", "rooms", "near", "harbour"],
/// );
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for raw in text.split(|c: char| !c.is_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        let word = raw.to_lowercase();
        // Single characters are noise; numbers are kept (e.g. "wifi", "24h"
        // style tokens survive as-is).
        if word.chars().count() < 2 || is_stopword(&word) {
            continue;
        }
        if seen.insert(word.clone()) {
            out.push(word);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_table_is_sorted() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "binary_search requires sorted table");
    }

    #[test]
    fn lowercases_and_dedups() {
        assert_eq!(tokenize("Coffee COFFEE coffee"), vec!["coffee"]);
    }

    #[test]
    fn splits_punctuation() {
        assert_eq!(
            tokenize("rooftop-pool;gym,spa"),
            vec!["rooftop", "pool", "gym", "spa"]
        );
    }

    #[test]
    fn removes_stopwords_and_single_chars() {
        assert_eq!(tokenize("the hotel is at a harbour"), vec!["hotel", "harbour"]);
        assert_eq!(tokenize("a b c"), Vec::<String>::new());
    }

    #[test]
    fn keeps_alphanumerics() {
        assert_eq!(tokenize("wifi 24h parking"), vec!["wifi", "24h", "parking"]);
    }

    #[test]
    fn empty_and_whitespace_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
        assert!(tokenize("!!! ... ???").is_empty());
    }

    #[test]
    fn preserves_first_occurrence_order() {
        assert_eq!(
            tokenize("spa pool spa gym pool"),
            vec!["spa", "pool", "gym"]
        );
    }

    #[test]
    fn unicode_is_handled() {
        let toks = tokenize("café 酒店 harbour");
        assert!(toks.contains(&"café".to_string()));
        assert!(toks.contains(&"harbour".to_string()));
    }
}
