//! Text substrate for YASK.
//!
//! Objects and queries carry *keyword sets* (`o.doc`, `q.doc` in the
//! paper). This crate provides:
//!
//! * [`Vocabulary`] — string interning: every distinct keyword string maps
//!   to a dense [`KeywordId`], so sets are integer sets from here up.
//! * [`KeywordSet`] — an immutable sorted set of keyword ids with the set
//!   algebra (intersection/union sizes, edit distance) that the Jaccard
//!   model (Eqn (2)) and the keyword-adaptation penalty (Eqn (4)) need.
//! * [`similarity`] — Jaccard plus the alternative set-similarity models
//!   the paper's footnote 1 alludes to (Dice, overlap, cosine).
//! * [`tokenizer`] — the keyword extraction used when loading raw text
//!   (lower-casing, punctuation splitting, stopword removal, dedup).

pub mod keyword_set;
pub mod similarity;
pub mod tokenizer;
pub mod vocab;

pub use keyword_set::KeywordSet;
pub use similarity::{SetSimilarity, SimilarityModel};
pub use tokenizer::tokenize;
pub use vocab::{KeywordId, Vocabulary};
