//! Keyword interning.
//!
//! All text handling above this module works on dense `u32` ids: set
//! operations become integer-slice merges, and the KcR-tree keyword-count
//! maps become small integer-keyed hash maps. The [`Vocabulary`] owns the
//! bidirectional string mapping.

use std::collections::HashMap;

/// A dense identifier for an interned keyword string.
///
/// Ids are assigned in first-seen order starting from 0, so a vocabulary
/// built from a frequency-sorted keyword list has id 0 = most frequent
/// term, which the Zipf samplers in `yask-data` rely on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeywordId(pub u32);

impl KeywordId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for KeywordId {
    #[inline]
    fn from(v: u32) -> Self {
        KeywordId(v)
    }
}

/// Bidirectional keyword ↔ id mapping.
///
/// ```
/// use yask_text::Vocabulary;
/// let mut v = Vocabulary::new();
/// let coffee = v.intern("coffee");
/// assert_eq!(v.intern("coffee"), coffee);      // idempotent
/// assert_eq!(v.resolve(coffee), "coffee");
/// assert_eq!(v.lookup("tea"), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    by_name: HashMap<String, KeywordId>,
    by_id: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Creates a vocabulary pre-filled from an ordered word list.
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut v = Vocabulary::new();
        for w in words {
            v.intern(w.as_ref());
        }
        v
    }

    /// Returns the id for `word`, interning it if unseen. Words are
    /// case-normalized by the tokenizer, not here: the vocabulary stores
    /// exactly what it is given.
    pub fn intern(&mut self, word: &str) -> KeywordId {
        if let Some(&id) = self.by_name.get(word) {
            return id;
        }
        let id = KeywordId(
            u32::try_from(self.by_id.len()).expect("vocabulary exceeded u32 capacity"),
        );
        self.by_name.insert(word.to_owned(), id);
        self.by_id.push(word.to_owned());
        id
    }

    /// Looks a word up without interning.
    pub fn lookup(&self, word: &str) -> Option<KeywordId> {
        self.by_name.get(word).copied()
    }

    /// The string for an id. Panics on a foreign id — ids are only minted
    /// by [`Vocabulary::intern`], so this indicates a cross-vocabulary bug.
    pub fn resolve(&self, id: KeywordId) -> &str {
        &self.by_id[id.index()]
    }

    /// Number of distinct interned keywords.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, w)| (KeywordId(i as u32), w.as_str()))
    }

    /// Renders a set of ids as a sorted, comma-separated string — used by
    /// explanations and the HTTP layer.
    pub fn render(&self, ids: &[KeywordId]) -> String {
        let mut words: Vec<&str> = ids.iter().map(|&id| self.resolve(id)).collect();
        words.sort_unstable();
        words.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("clean");
        let b = v.intern("comfortable");
        assert_ne!(a, b);
        assert_eq!(v.intern("clean"), a);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), KeywordId(0));
        assert_eq!(v.intern("b"), KeywordId(1));
        assert_eq!(v.intern("c"), KeywordId(2));
    }

    #[test]
    fn resolve_round_trips() {
        let mut v = Vocabulary::new();
        let id = v.intern("luxury");
        assert_eq!(v.resolve(id), "luxury");
    }

    #[test]
    fn lookup_does_not_intern() {
        let v = Vocabulary::new();
        assert_eq!(v.lookup("coffee"), None);
        assert!(v.is_empty());
    }

    #[test]
    fn from_words_preserves_order_and_dedups() {
        let v = Vocabulary::from_words(["x", "y", "x", "z"]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.lookup("x"), Some(KeywordId(0)));
        assert_eq!(v.lookup("z"), Some(KeywordId(2)));
    }

    #[test]
    fn iter_and_render() {
        let mut v = Vocabulary::new();
        let b = v.intern("beta");
        let a = v.intern("alpha");
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (b, "beta"));
        assert_eq!(v.render(&[a, b]), "alpha, beta");
        assert_eq!(v.render(&[b, a]), "alpha, beta");
    }
}
