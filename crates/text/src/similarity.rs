//! Set-similarity models.
//!
//! The paper adopts Jaccard (Eqn (2)) "without loss of generality" and
//! notes (footnote 1) that other textual similarity models can be
//! supported. [`SimilarityModel`] is that extension point: every model here
//! maps a `(query, object)` keyword-set pair to a score in `[0, 1]`, and
//! the query engine is generic over the choice.

use crate::keyword_set::KeywordSet;

/// The available set-similarity models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SimilarityModel {
    /// `|A ∩ B| / |A ∪ B|` — the paper's default (Eqn (2)).
    #[default]
    Jaccard,
    /// `2|A ∩ B| / (|A| + |B|)` — Sørensen–Dice.
    Dice,
    /// `|A ∩ B| / min(|A|, |B|)` — overlap (Szymkiewicz–Simpson).
    Overlap,
    /// `|A ∩ B| / sqrt(|A|·|B|)` — set cosine.
    Cosine,
}

impl SimilarityModel {
    /// All models, for parameter sweeps.
    pub const ALL: [SimilarityModel; 4] = [
        SimilarityModel::Jaccard,
        SimilarityModel::Dice,
        SimilarityModel::Overlap,
        SimilarityModel::Cosine,
    ];

    /// Short stable name (used in bench output and the HTTP API).
    pub fn name(self) -> &'static str {
        match self {
            SimilarityModel::Jaccard => "jaccard",
            SimilarityModel::Dice => "dice",
            SimilarityModel::Overlap => "overlap",
            SimilarityModel::Cosine => "cosine",
        }
    }

    /// Parses a model name as produced by [`SimilarityModel::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "jaccard" => Some(SimilarityModel::Jaccard),
            "dice" => Some(SimilarityModel::Dice),
            "overlap" => Some(SimilarityModel::Overlap),
            "cosine" => Some(SimilarityModel::Cosine),
            _ => None,
        }
    }

    /// Computes the similarity of two keyword sets under this model.
    /// Result is in `[0, 1]`; any model scores 0 when either set is empty.
    pub fn similarity(self, a: &KeywordSet, b: &KeywordSet) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection_size(b) as f64;
        match self {
            SimilarityModel::Jaccard => {
                let union = a.union_size(b) as f64;
                inter / union
            }
            SimilarityModel::Dice => 2.0 * inter / (a.len() + b.len()) as f64,
            SimilarityModel::Overlap => inter / a.len().min(b.len()) as f64,
            SimilarityModel::Cosine => inter / ((a.len() * b.len()) as f64).sqrt(),
        }
    }
}

/// Object-safe view of a similarity model plus its node-level bounds.
///
/// Indexes need not only the exact similarity but also *bounds* over all
/// objects within a subtree, given the subtree's intersection and union
/// keyword sets (SetR-tree node augmentation): for every object `o` in node
/// `N`, `N.int ⊆ o.doc ⊆ N.uni` holds, so for monotone set similarities the
/// bounds below are sound (tested exhaustively in the proptest suite).
pub trait SetSimilarity {
    /// Exact similarity.
    fn score(&self, query: &KeywordSet, doc: &KeywordSet) -> f64;

    /// Upper bound of the similarity between `query` and any `doc` with
    /// `node_int ⊆ doc ⊆ node_uni`.
    fn upper_bound(&self, query: &KeywordSet, node_int: &KeywordSet, node_uni: &KeywordSet)
        -> f64;

    /// Lower bound counterpart of [`SetSimilarity::upper_bound`].
    fn lower_bound(&self, query: &KeywordSet, node_int: &KeywordSet, node_uni: &KeywordSet)
        -> f64;
}

impl SetSimilarity for SimilarityModel {
    fn score(&self, query: &KeywordSet, doc: &KeywordSet) -> f64 {
        self.similarity(query, doc)
    }

    /// For Jaccard: the best object maximizes `|o ∩ q|` (≤ `|uni ∩ q|`) and
    /// minimizes `|o ∪ q|` (≥ `|int ∪ q|`, since `o ⊇ int` and always
    /// `o ∪ q ⊇ q`). The numerator max and denominator min need not be
    /// simultaneously achievable, which only loosens the bound. Analogous
    /// monotonicity arguments give the other models' bounds.
    fn upper_bound(
        &self,
        query: &KeywordSet,
        node_int: &KeywordSet,
        node_uni: &KeywordSet,
    ) -> f64 {
        if query.is_empty() || node_uni.is_empty() {
            return 0.0;
        }
        let max_inter = node_uni.intersection_size(query) as f64;
        if max_inter == 0.0 {
            return 0.0;
        }
        match self {
            SimilarityModel::Jaccard => {
                let min_union = node_int.union_size(query).max(1) as f64;
                (max_inter / min_union).min(1.0)
            }
            SimilarityModel::Dice => {
                // |o| ≥ max(|int|, |o ∩ q|); use |int| (and ≥1 since o
                // non-empty whenever the intersection is non-zero).
                let min_len = node_int.len().max(1) as f64;
                (2.0 * max_inter / (query.len() as f64 + min_len)).min(1.0)
            }
            SimilarityModel::Overlap => {
                // min(|o|, |q|) ≥ min(max(|int|,1), |q|) — but the overlap
                // coefficient is ≤ 1 always, and any o ⊆ uni containing the
                // matched keywords achieves 1 when it is exactly that match.
                1.0_f64.min(max_inter / 1.0_f64.max(node_int.len().min(query.len()) as f64))
            }
            SimilarityModel::Cosine => {
                let min_len = node_int.len().max(1) as f64;
                (max_inter / (min_len * query.len() as f64).sqrt()).min(1.0)
            }
        }
    }

    fn lower_bound(
        &self,
        query: &KeywordSet,
        node_int: &KeywordSet,
        node_uni: &KeywordSet,
    ) -> f64 {
        if query.is_empty() || node_uni.is_empty() {
            return 0.0;
        }
        // Every object contains at least the node intersection, so the
        // guaranteed common keywords are |int ∩ q|; the worst-case object is
        // as large as the node union.
        let min_inter = node_int.intersection_size(query) as f64;
        if min_inter == 0.0 {
            return 0.0;
        }
        match self {
            SimilarityModel::Jaccard => {
                let max_union = node_uni.union_size(query).max(1) as f64;
                min_inter / max_union
            }
            SimilarityModel::Dice => {
                let max_len = node_uni.len().max(1) as f64;
                2.0 * min_inter / (query.len() as f64 + max_len)
            }
            SimilarityModel::Overlap => {
                let denom = node_uni.len().min(query.len()).max(1) as f64;
                min_inter / denom
            }
            SimilarityModel::Cosine => {
                let max_len = node_uni.len().max(1) as f64;
                min_inter / (max_len * query.len() as f64).sqrt()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn jaccard_matches_keyword_set_impl() {
        let a = ks(&[1, 2, 3]);
        let b = ks(&[2, 3, 4]);
        assert_eq!(
            SimilarityModel::Jaccard.similarity(&a, &b),
            a.jaccard(&b)
        );
    }

    #[test]
    fn all_models_in_unit_interval() {
        let a = ks(&[1, 2, 3, 4, 5]);
        let b = ks(&[4, 5, 6]);
        for m in SimilarityModel::ALL {
            let s = m.similarity(&a, &b);
            assert!((0.0..=1.0).contains(&s), "{m:?} gave {s}");
        }
    }

    #[test]
    fn identical_sets_score_one() {
        let a = ks(&[1, 2]);
        for m in SimilarityModel::ALL {
            assert!((m.similarity(&a, &a) - 1.0).abs() < 1e-12, "{m:?}");
        }
    }

    #[test]
    fn empty_sets_score_zero() {
        let a = ks(&[1]);
        let e = KeywordSet::empty();
        for m in SimilarityModel::ALL {
            assert_eq!(m.similarity(&a, &e), 0.0);
            assert_eq!(m.similarity(&e, &a), 0.0);
        }
    }

    #[test]
    fn dice_and_cosine_values() {
        let a = ks(&[1, 2]);
        let b = ks(&[2, 3, 4]);
        // inter=1, |a|=2, |b|=3.
        assert!((SimilarityModel::Dice.similarity(&a, &b) - 2.0 / 5.0).abs() < 1e-12);
        assert!(
            (SimilarityModel::Cosine.similarity(&a, &b) - 1.0 / 6.0_f64.sqrt()).abs() < 1e-12
        );
        assert!((SimilarityModel::Overlap.similarity(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn name_parse_round_trip() {
        for m in SimilarityModel::ALL {
            assert_eq!(SimilarityModel::parse(m.name()), Some(m));
        }
        assert_eq!(SimilarityModel::parse("bm25"), None);
    }

    #[test]
    fn bounds_bracket_exact_scores() {
        // Node with int = {2}, uni = {1,2,3}; enumerate all docs between.
        let node_int = ks(&[2]);
        let node_uni = ks(&[1, 2, 3]);
        let docs = [ks(&[2]), ks(&[1, 2]), ks(&[2, 3]), ks(&[1, 2, 3])];
        let queries = [ks(&[2]), ks(&[1, 3]), ks(&[1, 2, 4]), ks(&[9])];
        for m in SimilarityModel::ALL {
            for q in &queries {
                let ub = m.upper_bound(q, &node_int, &node_uni);
                let lb = m.lower_bound(q, &node_int, &node_uni);
                assert!(lb <= ub + 1e-12, "{m:?}: lb {lb} > ub {ub}");
                for d in &docs {
                    let s = m.similarity(q, d);
                    assert!(s <= ub + 1e-12, "{m:?} q={q:?} d={d:?}: {s} > ub {ub}");
                    assert!(s + 1e-12 >= lb, "{m:?} q={q:?} d={d:?}: {s} < lb {lb}");
                }
            }
        }
    }

    #[test]
    fn upper_bound_zero_when_no_keyword_matches() {
        let q = ks(&[10, 11]);
        for m in SimilarityModel::ALL {
            assert_eq!(m.upper_bound(&q, &ks(&[1]), &ks(&[1, 2, 3])), 0.0);
        }
    }
}
