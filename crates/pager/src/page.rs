//! Page primitives.

/// Fixed page size (4 KiB, the classic database page).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a [`crate::PageFile`]: its 0-based index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Byte offset of this page in the backing file.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_page_aligned() {
        assert_eq!(PageId(0).offset(), 0);
        assert_eq!(PageId(1).offset(), 4096);
        assert_eq!(PageId(10).offset(), 40_960);
    }

    #[test]
    fn display() {
        assert_eq!(PageId(7).to_string(), "p7");
    }
}
