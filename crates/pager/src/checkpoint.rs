//! Checkpoint snapshots — the WAL-compaction format (`YASKPG03`).
//!
//! A checkpoint folds a whole corpus *epoch* into one self-contained
//! file so the write-ahead log can be truncated to the records committed
//! after it: restart recovery loads the snapshot and replays only the
//! log tail, bounding restart time by the checkpoint interval instead of
//! the full update history.
//!
//! The format extends the `YASKPG02` index store (same paged corpus
//! stream, tombstones preserved so ids stay positional) with the two
//! things a recovery point needs that an index file does not carry:
//!
//! * the **epoch** the snapshot represents (the durable batch count at
//!   the moment of the checkpoint), and
//! * the **vocabulary** as interned at that moment — WAL records and
//!   object docs reference keyword *ids*, which are only meaningful
//!   under the string → id order they were interned in.
//!
//! No tree topology is stored: the engines rebuild their shard trees
//! from the corpus at startup anyway, and a checkpoint that carried one
//! fixed tree shape could not serve every shard configuration.
//!
//! Layout (page 0 written last):
//!
//! | field        | bytes  | contents                         |
//! |--------------|--------|----------------------------------|
//! | magic        | 0..8   | `YASKPG03`                       |
//! | epoch        | 8..16  | durable batch count              |
//! | corpus_first | 16..24 | first page of the corpus stream  |
//! | corpus_len   | 24..32 | corpus stream byte length        |
//! | vocab_first  | 32..40 | first page of the vocab stream   |
//! | vocab_len    | 40..48 | vocab stream byte length         |
//!
//! [`save_checkpoint`] is **atomic**: the snapshot is written and synced
//! to `<path>.tmp` and renamed over `path`, so a crash mid-write leaves
//! either the previous checkpoint or none — never a torn one. Loaders
//! ignore stray `.tmp` files by construction (they only open `path`).

use std::io;
use std::path::{Path, PathBuf};

use yask_index::Corpus;

use crate::buffer_pool::{BufferPool, PoolStats};
use crate::codec::{StreamReader, StreamWriter};
use crate::page::{PageId, PAGE_SIZE};
use crate::store::{read_corpus_stream, write_corpus_stream};

const MAGIC: &[u8; 8] = b"YASKPG03";
/// Guard against sizing allocations from a rotted word count.
const MAX_WORDS: u64 = 1 << 24;

/// One recovery point: the corpus version at `epoch` plus the
/// vocabulary words in intern (id) order.
#[derive(Debug)]
pub struct Checkpoint {
    /// The corpus version the snapshot captured (tombstones included).
    pub corpus: Corpus,
    /// The durable epoch (batch count) the snapshot represents.
    pub epoch: u64,
    /// Vocabulary words in id order; empty when the deployment does not
    /// persist a vocabulary.
    pub vocab: Vec<String>,
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Atomically and *durably* writes `checkpoint` to `path`: write
/// `.tmp`, sync it, rename over `path`, then fsync the parent directory
/// so the rename itself survives a crash. The directory sync matters —
/// the caller truncates its write-ahead log on the strength of this
/// snapshot existing, and a rename whose metadata never reached the
/// journal would leave a truncated log pointing at a checkpoint that is
/// not there.
///
/// Returns the ephemeral buffer pool's cache counters so the caller can
/// price the checkpoint's I/O (sequential stream writes mostly miss).
pub fn save_checkpoint(path: &Path, checkpoint: &Checkpoint) -> io::Result<PoolStats> {
    let tmp = tmp_path(path);
    let io_stats;
    {
        let pool = BufferPool::create(&tmp, 64)?;
        let header_page = pool.allocate()?; // page 0, filled in last
        debug_assert_eq!(header_page, PageId(0));

        let (corpus_first, corpus_len) = write_corpus_stream(&pool, &checkpoint.corpus)?;

        let mut w = StreamWriter::new(&pool)?;
        w.write_u64(checkpoint.vocab.len() as u64)?;
        for word in &checkpoint.vocab {
            w.write_str(word)?;
        }
        let (vocab_first, vocab_len) = w.finish()?;

        let mut header = vec![0u8; PAGE_SIZE];
        header[..8].copy_from_slice(MAGIC);
        header[8..16].copy_from_slice(&checkpoint.epoch.to_le_bytes());
        header[16..24].copy_from_slice(&corpus_first.0.to_le_bytes());
        header[24..32].copy_from_slice(&corpus_len.to_le_bytes());
        header[32..40].copy_from_slice(&vocab_first.0.to_le_bytes());
        header[40..48].copy_from_slice(&vocab_len.to_le_bytes());
        pool.write(header_page, &header)?;
        // Chaos hooks, one per durability step the atomicity argument
        // leans on: a failed tmp sync or rename must leave the previous
        // checkpoint (or its absence) fully intact, and a failed
        // directory sync must surface as an error so the caller does
        // *not* truncate its log on an unanchored rename.
        yask_util::failpoint::fire("checkpoint.tmp.sync")?;
        pool.sync()?;
        io_stats = pool.stats();
    }
    yask_util::failpoint::fire("checkpoint.rename")?;
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        yask_util::failpoint::fire("checkpoint.dirsync")?;
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(io_stats)
}

/// Loads the checkpoint at `path`; `Ok(None)` when no checkpoint exists
/// (a leftover `.tmp` from an interrupted save does not count).
pub fn load_checkpoint(path: &Path) -> io::Result<Option<Checkpoint>> {
    Ok(load_checkpoint_with_stats(path)?.map(|(c, _)| c))
}

/// [`load_checkpoint`] that also reports the cache counters of the pool
/// the snapshot was read through, so recovery I/O shows up on `/stats`.
pub fn load_checkpoint_with_stats(path: &Path) -> io::Result<Option<(Checkpoint, PoolStats)>> {
    if !path.exists() {
        return Ok(None);
    }
    let corrupt = |why: String| io::Error::new(io::ErrorKind::InvalidData, why);
    let pool = BufferPool::open(path, 64)?;
    let header = pool.read(PageId(0))?;
    if &header[..8] != MAGIC {
        return Err(corrupt("checkpoint: bad magic".into()));
    }
    let word = |i: usize| u64::from_le_bytes(header[i..i + 8].try_into().expect("header word"));
    let epoch = word(8);
    let corpus = read_corpus_stream(&pool, PageId(word(16)), word(24))?;

    let mut r = StreamReader::new(&pool, PageId(word(32)), word(40))?;
    let n = r.read_u64()?;
    if n > MAX_WORDS {
        return Err(corrupt(format!("checkpoint: implausible vocabulary size {n}")));
    }
    let mut vocab = Vec::with_capacity(n as usize);
    for _ in 0..n {
        vocab.push(r.read_str()?);
    }
    Ok(Some((Checkpoint { corpus, epoch, vocab }, pool.stats())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::{CorpusBuilder, ObjectId};
    use yask_text::KeywordSet;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("yask-ckpt-{}-{}", std::process::id(), name));
        p
    }

    fn corpus_with_tombstones(n: usize) -> Corpus {
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            b.push(
                Point::new((i % 13) as f64 / 13.0, (i % 7) as f64 / 7.0),
                KeywordSet::from_raw([(i % 5) as u32, (i % 9) as u32]),
                format!("hôtel-{i}"),
            );
        }
        let c = b.build();
        let (c, _) = c.with_updates(std::iter::empty(), &[ObjectId(1), ObjectId(4)]);
        c
    }

    #[test]
    fn checkpoint_round_trips() {
        let path = tmp("roundtrip.ckpt");
        std::fs::remove_file(&path).ok();
        let corpus = corpus_with_tombstones(300);
        let ck = Checkpoint {
            corpus: corpus.clone(),
            epoch: 42,
            vocab: vec!["clean".into(), "spa".into(), "hôtel".into()],
        };
        save_checkpoint(&path, &ck).unwrap();
        let loaded = load_checkpoint(&path).unwrap().expect("checkpoint exists");
        assert_eq!(loaded.epoch, 42);
        assert_eq!(loaded.vocab, ck.vocab);
        assert_eq!(loaded.corpus.slot_count(), corpus.slot_count());
        assert_eq!(loaded.corpus.len(), corpus.len());
        assert_eq!(loaded.corpus.space(), corpus.space());
        for (a, b) in corpus.iter_slots().zip(loaded.corpus.iter_slots()) {
            assert_eq!(a.loc, b.loc);
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.name, b.name);
            assert_eq!(corpus.contains(a.id), loaded.corpus.contains(b.id));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absent_checkpoint_is_none_and_tmp_is_ignored() {
        let path = tmp("absent.ckpt");
        std::fs::remove_file(&path).ok();
        assert!(load_checkpoint(&path).unwrap().is_none());
        // A torn `.tmp` from a crashed save must not count as a
        // checkpoint.
        std::fs::write(tmp_path(&path), b"torn mid-write").unwrap();
        assert!(load_checkpoint(&path).unwrap().is_none());
        std::fs::remove_file(tmp_path(&path)).ok();
    }

    #[test]
    fn save_replaces_atomically() {
        let path = tmp("replace.ckpt");
        std::fs::remove_file(&path).ok();
        let c = corpus_with_tombstones(50);
        save_checkpoint(&path, &Checkpoint { corpus: c.clone(), epoch: 1, vocab: vec![] }).unwrap();
        save_checkpoint(&path, &Checkpoint { corpus: c, epoch: 2, vocab: vec!["w".into()] })
            .unwrap();
        let loaded = load_checkpoint(&path).unwrap().unwrap();
        assert_eq!(loaded.epoch, 2);
        assert_eq!(loaded.vocab, vec!["w".to_owned()]);
        assert!(!tmp_path(&path).exists(), "tmp must be renamed away");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_magic_is_invalid_data() {
        let path = tmp("magic.ckpt");
        std::fs::remove_file(&path).ok();
        let c = corpus_with_tombstones(10);
        save_checkpoint(&path, &Checkpoint { corpus: c, epoch: 3, vocab: vec![] }).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_checkpoint(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_index_format_is_rejected_as_checkpoint() {
        // A YASKPG02 index file is not a checkpoint: the magic differs.
        let path = tmp("wrongformat.ckpt");
        std::fs::remove_file(&path).ok();
        let corpus = corpus_with_tombstones(20);
        let params = yask_index::RTreeParams::new(8, 3);
        let tree: yask_index::RTree<yask_index::SetAug> =
            yask_index::RTree::bulk_load(corpus.clone(), params);
        crate::store::save_index(&path, &corpus, &tree.structure(), params).unwrap();
        assert!(load_checkpoint(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
