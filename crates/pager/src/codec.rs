//! Paged byte streams with primitive encoding.
//!
//! Records span page boundaries transparently: a [`StreamWriter`] chains
//! pages through an 8-byte `next` pointer in each page header and buffers
//! one page at a time; a [`StreamReader`] follows the chain through the
//! buffer pool. All integers are little-endian; strings and byte arrays
//! are length-prefixed.

use std::io;
use std::sync::Arc;

use bytes::Bytes;

use crate::buffer_pool::BufferPool;
use crate::page::{PageId, PAGE_SIZE};

/// Sentinel "no next page" pointer.
const NO_NEXT: u64 = u64::MAX;
/// Payload bytes per page (after the `next` pointer header).
pub const PAYLOAD: usize = PAGE_SIZE - 8;

/// Append-only paged stream writer.
pub struct StreamWriter<'p> {
    pool: &'p BufferPool,
    first: PageId,
    current_id: PageId,
    buf: Vec<u8>,
    written: u64,
}

impl<'p> StreamWriter<'p> {
    /// Starts a stream on a freshly allocated page.
    pub fn new(pool: &'p BufferPool) -> io::Result<Self> {
        let first = pool.allocate()?;
        Ok(StreamWriter {
            pool,
            first,
            current_id: first,
            buf: Vec::with_capacity(PAYLOAD),
            written: 0,
        })
    }

    /// First page of the stream (store this in your header).
    pub fn first_page(&self) -> PageId {
        self.first
    }

    /// Bytes written so far.
    pub fn len(&self) -> u64 {
        self.written
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// Appends raw bytes.
    pub fn write_bytes(&mut self, mut data: &[u8]) -> io::Result<()> {
        while !data.is_empty() {
            let room = PAYLOAD - self.buf.len();
            if room == 0 {
                // Chain to a fresh page and flush the full one.
                let next = self.pool.allocate()?;
                self.flush_page(Some(next))?;
                self.current_id = next;
                self.buf.clear();
                continue;
            }
            let take = room.min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            self.written += take as u64;
            data = &data[take..];
        }
        Ok(())
    }

    /// Appends a `u8`.
    pub fn write_u8(&mut self, v: u8) -> io::Result<()> {
        self.write_bytes(&[v])
    }

    /// Appends a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) -> io::Result<()> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Appends a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) -> io::Result<()> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Appends an `f64` (IEEE bits, little-endian).
    pub fn write_f64(&mut self, v: f64) -> io::Result<()> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Appends a length-prefixed string.
    pub fn write_str(&mut self, s: &str) -> io::Result<()> {
        self.write_u32(s.len() as u32)?;
        self.write_bytes(s.as_bytes())
    }

    /// Flushes the final page; returns `(first_page, byte_length)`.
    pub fn finish(mut self) -> io::Result<(PageId, u64)> {
        self.flush_page(None)?;
        Ok((self.first, self.written))
    }

    fn flush_page(&mut self, next: Option<PageId>) -> io::Result<()> {
        let mut page = vec![0u8; PAGE_SIZE];
        page[..8].copy_from_slice(&next.map_or(NO_NEXT, |p| p.0).to_le_bytes());
        page[8..8 + self.buf.len()].copy_from_slice(&self.buf);
        self.pool.write(self.current_id, &page)
    }
}

/// Sequential reader over a paged stream.
pub struct StreamReader<'p> {
    pool: &'p BufferPool,
    page: Arc<Bytes>,
    pos: usize,
    remaining: u64,
}

impl<'p> StreamReader<'p> {
    /// Opens the stream starting at `first` with a known byte length.
    pub fn new(pool: &'p BufferPool, first: PageId, len: u64) -> io::Result<Self> {
        Ok(StreamReader {
            pool,
            page: pool.read(first)?,
            pos: 8,
            remaining: len,
        })
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Reads exactly `out.len()` bytes.
    pub fn read_bytes(&mut self, out: &mut [u8]) -> io::Result<()> {
        if (out.len() as u64) > self.remaining {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("stream exhausted: need {}, have {}", out.len(), self.remaining),
            ));
        }
        let mut filled = 0usize;
        while filled < out.len() {
            if self.pos == PAGE_SIZE {
                let next = u64::from_le_bytes(self.page[..8].try_into().expect("page header"));
                if next == NO_NEXT {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "page chain ended early",
                    ));
                }
                self.page = self.pool.read(PageId(next))?;
                self.pos = 8;
            }
            let take = (out.len() - filled).min(PAGE_SIZE - self.pos);
            out[filled..filled + take].copy_from_slice(&self.page[self.pos..self.pos + take]);
            self.pos += take;
            filled += take;
        }
        self.remaining -= out.len() as u64;
        Ok(())
    }

    /// Reads a `u8`.
    pub fn read_u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.read_bytes(&mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.read_bytes(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.read_bytes(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads an `f64`.
    pub fn read_f64(&mut self) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.read_bytes(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }

    /// Reads a length-prefixed string.
    pub fn read_str(&mut self) -> io::Result<String> {
        let len = self.read_u32()? as usize;
        if len > 1 << 24 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("implausible string length {len}"),
            ));
        }
        let mut buf = vec![0u8; len];
        self.read_bytes(&mut buf)?;
        String::from_utf8(buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("yask-codec-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn primitives_round_trip() {
        let path = tmp("prims.db");
        let pool = BufferPool::create(&path, 8).unwrap();
        let mut w = StreamWriter::new(&pool).unwrap();
        w.write_u8(7).unwrap();
        w.write_u32(0xDEAD_BEEF).unwrap();
        w.write_u64(u64::MAX - 1).unwrap();
        w.write_f64(-1234.5678).unwrap();
        w.write_str("香港 hotels").unwrap();
        let (first, len) = w.finish().unwrap();

        let mut r = StreamReader::new(&pool, first, len).unwrap();
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.read_f64().unwrap(), -1234.5678);
        assert_eq!(r.read_str().unwrap(), "香港 hotels");
        assert_eq!(r.remaining(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spans_many_pages() {
        let path = tmp("span.db");
        let pool = BufferPool::create(&path, 4).unwrap();
        let mut w = StreamWriter::new(&pool).unwrap();
        // 10 pages worth of u32 sequence.
        let n = (PAGE_SIZE * 10) / 4;
        for i in 0..n {
            w.write_u32(i as u32).unwrap();
        }
        let (first, len) = w.finish().unwrap();
        assert!(pool.page_count() >= 10);

        let mut r = StreamReader::new(&pool, first, len).unwrap();
        for i in 0..n {
            assert_eq!(r.read_u32().unwrap(), i as u32, "at {i}");
        }
        assert_eq!(r.remaining(), 0);
        assert!(r.read_u8().is_err(), "reading past end must fail");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn two_interleaved_streams_do_not_collide() {
        // Streams allocate pages lazily, so two streams written
        // back-to-back share the file but not pages.
        let path = tmp("two.db");
        let pool = BufferPool::create(&path, 4).unwrap();
        let mut w1 = StreamWriter::new(&pool).unwrap();
        for _ in 0..2000 {
            w1.write_u32(1).unwrap();
        }
        let (f1, l1) = w1.finish().unwrap();
        let mut w2 = StreamWriter::new(&pool).unwrap();
        for _ in 0..2000 {
            w2.write_u32(2).unwrap();
        }
        let (f2, l2) = w2.finish().unwrap();

        let mut r1 = StreamReader::new(&pool, f1, l1).unwrap();
        let mut r2 = StreamReader::new(&pool, f2, l2).unwrap();
        for _ in 0..2000 {
            assert_eq!(r1.read_u32().unwrap(), 1);
            assert_eq!(r2.read_u32().unwrap(), 2);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_stream() {
        let path = tmp("empty.db");
        let pool = BufferPool::create(&path, 2).unwrap();
        let w = StreamWriter::new(&pool).unwrap();
        assert!(w.is_empty());
        let (first, len) = w.finish().unwrap();
        assert_eq!(len, 0);
        let mut r = StreamReader::new(&pool, first, len).unwrap();
        assert!(r.read_u8().is_err());
        std::fs::remove_file(&path).ok();
    }
}
