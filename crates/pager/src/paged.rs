//! Out-of-core R-tree arenas: [`PagedNodeSource`] serves a tree's node
//! chunks through the [`BufferPool`] instead of resident memory.
//!
//! A resident tree is *paged out* by encoding every arena chunk into its
//! own byte stream in the page file ([`PagedNodeSource::build`]) and
//! handing the tree the resulting source ([`page_out_tree`]). From then
//! on `RTree::node` faults whole chunks — 16 nodes at a time — through a
//! small decoded-chunk cache bounded by a byte budget, which in turn
//! reads 4 KiB pages through the buffer pool. Two cache levels, two sets
//! of counters:
//!
//! * chunk level ([`PagedStats`]) — decoded-chunk hits / faults /
//!   evictions, what a query actually pays;
//! * page level ([`crate::PoolStats`]) — buffer-pool hits / misses, what
//!   the disk actually pays.
//!
//! The encoding is exact: augmentations round-trip bit-identically via
//! [`AugCodec`] and MBR coordinates via `f64` bit patterns, so a paged
//! tree answers every query byte-identically to its resident original
//! (property-tested by the out-of-core oracle suite).

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use yask_index::{AugCodec, Augmentation, Node, NodeChunk, NodeKind, NodeSource, RTree};
use yask_geo::{Point, Rect};
use yask_index::{NodeId, ObjectId};

use crate::buffer_pool::BufferPool;
use crate::codec::{StreamReader, StreamWriter};
use crate::page::PageId;

/// Chunk-cache counters for one paged arena. `misses` is the number of
/// chunk faults (each one decodes a full chunk through the buffer pool);
/// `evictions` counts decoded chunks dropped to stay inside the budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagedStats {
    /// Chunk lookups answered from the decoded-chunk cache.
    pub hits: u64,
    /// Chunk faults: lookups that had to decode the chunk from pages.
    pub misses: u64,
    /// Decoded chunks evicted to stay inside the byte budget.
    pub evictions: u64,
    /// Chunks currently decoded and cached.
    pub resident_chunks: usize,
    /// Total chunks in the arena.
    pub chunk_count: usize,
    /// The resident byte budget the cache is bounded by.
    pub budget_bytes: usize,
}

struct CacheEntry<A> {
    chunk: Arc<NodeChunk<A>>,
    last_used: u64,
    bytes: usize,
}

struct Cache<A> {
    entries: HashMap<usize, CacheEntry<A>>,
    cached_bytes: usize,
    tick: u64,
    /// Evicted chunks that may still be referenced by an active read
    /// guard. Freed only when the reader count returns to zero.
    graveyard: Vec<Arc<NodeChunk<A>>>,
}

/// A [`NodeSource`] that faults arena chunks through the buffer pool on
/// access, keeping at most `budget_bytes` of decoded chunks resident.
pub struct PagedNodeSource<A> {
    pool: Arc<BufferPool>,
    /// Per-chunk `(first page, stream length)` of the encoded chunk.
    directory: Vec<(PageId, u64)>,
    budget_bytes: usize,
    arena_bytes: usize,
    state: Mutex<Cache<A>>,
    readers: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<A> std::fmt::Debug for PagedNodeSource<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedNodeSource")
            .field("chunks", &self.directory.len())
            .field("budget_bytes", &self.budget_bytes)
            .field("arena_bytes", &self.arena_bytes)
            .field("readers", &self.readers.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<A: Augmentation + AugCodec + Send + Sync + 'static> PagedNodeSource<A> {
    /// Encodes every chunk of a resident `tree` into `pool`'s page file
    /// and returns a source serving them with at most `budget_bytes` of
    /// decoded chunks resident. The tree itself is not modified — pass
    /// the result to [`RTree::page_out`] (or use [`page_out_tree`]).
    pub fn build(
        pool: Arc<BufferPool>,
        tree: &RTree<A>,
        budget_bytes: usize,
    ) -> io::Result<Arc<Self>> {
        assert!(!tree.is_paged(), "building a paged source from a paged tree");
        let arena_bytes = tree.arena_bytes();
        let mut directory = Vec::with_capacity(tree.arena_chunk_count());
        for ci in 0..tree.arena_chunk_count() {
            let mut w = StreamWriter::new(&pool)?;
            encode_chunk(&mut w, tree.arena_chunk(ci))?;
            directory.push(w.finish()?);
        }
        Ok(Arc::new(PagedNodeSource {
            pool,
            directory,
            budget_bytes,
            arena_bytes,
            state: Mutex::new(Cache {
                entries: HashMap::new(),
                cached_bytes: 0,
                tick: 0,
                graveyard: Vec::new(),
            }),
            readers: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }))
    }

    /// Chunk-cache counters (see [`PagedStats`]).
    pub fn stats(&self) -> PagedStats {
        let st = self.state.lock();
        PagedStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_chunks: st.entries.len(),
            chunk_count: self.directory.len(),
            budget_bytes: self.budget_bytes,
        }
    }

    /// The buffer pool the encoded chunks live in.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    fn fault(&self, ci: usize) -> io::Result<Arc<NodeChunk<A>>> {
        let (first, len) = self.directory[ci];
        let mut r = StreamReader::new(&self.pool, first, len)?;
        decode_chunk(&mut r).map(Arc::new)
    }
}

impl<A: Augmentation + AugCodec + Send + Sync + 'static> NodeSource<A> for PagedNodeSource<A> {
    fn chunk_count(&self) -> usize {
        self.directory.len()
    }

    fn approx_bytes(&self) -> usize {
        self.arena_bytes
    }

    fn begin_read(&self) {
        self.readers.fetch_add(1, Ordering::AcqRel);
    }

    fn end_read(&self) {
        let prev = self.readers.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "end_read without begin_read");
        if prev == 1 {
            // Last reader out: anything in the graveyard was evicted
            // while some now-finished guard could still reference it.
            // A guard that begins after this point can only reach chunks
            // via the cache, never the graveyard, so freeing is safe
            // even if the count has already gone back up.
            let mut st = self.state.lock();
            if self.readers.load(Ordering::Acquire) == 0 {
                st.graveyard.clear();
            }
        }
    }

    fn chunk(&self, ci: usize) -> &NodeChunk<A> {
        debug_assert!(
            self.readers.load(Ordering::Acquire) > 0,
            "PagedNodeSource::chunk outside a read guard"
        );
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some(e) = st.entries.get_mut(&ci) {
            e.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            let ptr: *const NodeChunk<A> = Arc::as_ptr(&e.chunk);
            // SAFETY: the Arc stays alive in the cache, or — if evicted —
            // in the graveyard until the reader count returns to zero,
            // which by the NodeSource guard protocol outlives every
            // reference handed out here.
            return unsafe { &*ptr };
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let chunk = self
            .fault(ci)
            .unwrap_or_else(|e| panic!("paged arena chunk {ci} unreadable: {e}"));
        let bytes = chunk.approx_bytes();
        let ptr: *const NodeChunk<A> = Arc::as_ptr(&chunk);
        st.cached_bytes += bytes;
        st.entries.insert(ci, CacheEntry { chunk, last_used: tick, bytes });
        // Evict least-recently-used chunks down to the budget, always
        // keeping the chunk just faulted in.
        while st.cached_bytes > self.budget_bytes && st.entries.len() > 1 {
            let lru = st
                .entries
                .iter()
                .filter(|(k, _)| **k != ci)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("len > 1 so a victim exists");
            let victim = st.entries.remove(&lru).expect("victim present");
            st.cached_bytes -= victim.bytes;
            st.graveyard.push(victim.chunk);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: as above — the cache or graveyard keeps the Arc alive
        // for the lifetime of every outstanding read guard.
        unsafe { &*ptr }
    }
}

/// Encodes a resident `tree`'s arena into `pool` and switches the tree
/// to serve reads through it, returning the source for stats polling.
pub fn page_out_tree<A: Augmentation + AugCodec + Send + Sync + 'static>(
    pool: &Arc<BufferPool>,
    tree: &mut RTree<A>,
    budget_bytes: usize,
) -> io::Result<Arc<PagedNodeSource<A>>> {
    let source = PagedNodeSource::build(Arc::clone(pool), tree, budget_bytes)?;
    tree.page_out(source.clone());
    Ok(source)
}

// ---------------------------------------------------------------------------
// Chunk codec
// ---------------------------------------------------------------------------

const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;

fn encode_chunk<A: Augmentation + AugCodec>(
    w: &mut StreamWriter<'_>,
    nodes: &[Node<A>],
) -> io::Result<()> {
    w.write_u32(nodes.len() as u32)?;
    let mut aug_buf = Vec::new();
    for n in nodes {
        w.write_f64(n.mbr.lo.x)?;
        w.write_f64(n.mbr.lo.y)?;
        w.write_f64(n.mbr.hi.x)?;
        w.write_f64(n.mbr.hi.y)?;
        match n.aug_opt() {
            None => w.write_u8(0)?,
            Some(a) => {
                w.write_u8(1)?;
                aug_buf.clear();
                a.encode_aug(&mut aug_buf);
                w.write_u32(aug_buf.len() as u32)?;
                w.write_bytes(&aug_buf)?;
            }
        }
        match &n.kind {
            NodeKind::Leaf(entries) => {
                w.write_u8(KIND_LEAF)?;
                w.write_u32(entries.len() as u32)?;
                for id in entries {
                    w.write_u32(id.0)?;
                }
            }
            NodeKind::Internal(children) => {
                w.write_u8(KIND_INTERNAL)?;
                w.write_u32(children.len() as u32)?;
                for id in children {
                    w.write_u32(id.0)?;
                }
            }
        }
    }
    Ok(())
}

fn corrupt(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

fn decode_chunk<A: Augmentation + AugCodec>(
    r: &mut StreamReader<'_>,
) -> io::Result<NodeChunk<A>> {
    let count = r.read_u32()? as usize;
    if count > yask_index::NODE_CHUNK_SIZE {
        return Err(corrupt(format!("implausible chunk node count {count}")));
    }
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        let lo = Point { x: r.read_f64()?, y: r.read_f64()? };
        let hi = Point { x: r.read_f64()?, y: r.read_f64()? };
        let mbr = Rect { lo, hi };
        let aug = match r.read_u8()? {
            0 => None,
            1 => {
                let len = r.read_u32()? as usize;
                if len > 1 << 24 {
                    return Err(corrupt(format!("implausible augmentation length {len}")));
                }
                let mut buf = vec![0u8; len];
                r.read_bytes(&mut buf)?;
                let mut cursor = buf.as_slice();
                let a = A::decode_aug(&mut cursor)
                    .ok_or_else(|| corrupt("augmentation failed to decode"))?;
                if !cursor.is_empty() {
                    return Err(corrupt("augmentation decode left trailing bytes"));
                }
                Some(a)
            }
            t => return Err(corrupt(format!("bad augmentation presence tag {t}"))),
        };
        let tag = r.read_u8()?;
        let n = r.read_u32()? as usize;
        if n > 1 << 20 {
            return Err(corrupt(format!("implausible entry count {n}")));
        }
        let kind = match tag {
            KIND_LEAF => {
                let mut e = Vec::with_capacity(n);
                for _ in 0..n {
                    e.push(ObjectId(r.read_u32()?));
                }
                NodeKind::Leaf(e)
            }
            KIND_INTERNAL => {
                let mut c = Vec::with_capacity(n);
                for _ in 0..n {
                    c.push(NodeId(r.read_u32()?));
                }
                NodeKind::Internal(c)
            }
            t => return Err(corrupt(format!("bad node kind tag {t}"))),
        };
        nodes.push(Node::from_parts(mbr, aug, kind));
    }
    Ok(NodeChunk::from_nodes(nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::Point;
    use yask_index::{Corpus, CorpusBuilder, KcAug, RTreeParams, SetAug};
    use yask_text::KeywordSet;

    fn pool() -> Arc<BufferPool> {
        let dir = std::env::temp_dir().join(format!(
            "yask-paged-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.yask");
        let _ = std::fs::remove_file(&path);
        Arc::new(BufferPool::create(&path, 64).unwrap())
    }

    fn corpus(n: usize) -> Corpus {
        let mut b = CorpusBuilder::new();
        for i in 0..n {
            let x = (i as f64 * 37.0) % 100.0;
            let y = (i as f64 * 53.0) % 100.0;
            let doc = KeywordSet::from_raw((0..3).map(|j| ((i + j * 7) % 23) as u32));
            b.push(Point { x, y }, doc, format!("obj{i}"));
        }
        b.build()
    }

    fn tree(n: usize) -> RTree<KcAug> {
        RTree::bulk_load(corpus(n), RTreeParams::default())
    }

    #[test]
    fn paged_tree_answers_reads_identically() {
        let resident = tree(500);
        let mut paged = resident.clone();
        let p = pool();
        let src = page_out_tree(&p, &mut paged, resident.arena_bytes() / 4).unwrap();
        assert!(paged.is_paged());

        let probe = Rect::new(Point { x: 10.0, y: 10.0 }, Point { x: 60.0, y: 70.0 });
        assert_eq!(resident.range(&probe), paged.range(&probe));
        let q = Point { x: 42.0, y: 17.0 };
        assert_eq!(resident.nearest(&q, 25), paged.nearest(&q, 25));
        assert_eq!(resident.object_ids(), paged.object_ids());
        paged.validate().unwrap();

        let s = src.stats();
        assert!(s.misses > 0, "reads must fault chunks: {s:?}");
        assert!(s.evictions > 0, "a 25% budget must evict: {s:?}");
        assert!(s.resident_chunks < s.chunk_count);
    }

    #[test]
    fn structure_survives_the_round_trip_exactly() {
        let resident = tree(300);
        let mut paged = resident.clone();
        let p = pool();
        page_out_tree(&p, &mut paged, 1).unwrap();
        // Budget of one byte: every chunk access is a fault, the cache
        // holds exactly one chunk at a time.
        assert_eq!(resident.structure(), paged.structure());
    }

    #[test]
    fn mutation_materializes_the_tree_back_to_resident() {
        let resident = tree(200);
        let mut paged = resident.clone();
        let p = pool();
        page_out_tree(&p, &mut paged, resident.arena_bytes() / 2).unwrap();
        assert!(paged.is_paged());

        let c2 = corpus(201);
        let (next, stats) = paged.with_updates(c2, &[ObjectId(200)], &[]);
        assert!(!next.is_paged(), "mutation must materialize");
        assert!(stats.chunks_copied > 0, "materialization bills copies: {stats:?}");
        next.validate().unwrap();
        assert_eq!(next.len(), 201);
    }

    #[test]
    fn pool_counters_price_the_faults() {
        let resident = tree(400);
        let mut paged = resident.clone();
        let p = pool();
        page_out_tree(&p, &mut paged, 1).unwrap();
        let before = p.stats();
        let _ = paged.object_ids();
        let after = p.stats();
        assert!(
            after.hits + after.misses > before.hits + before.misses,
            "chunk faults must be priced on the buffer pool: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn set_augmented_tree_pages_too() {
        let resident: RTree<SetAug> = RTree::bulk_load(corpus(150), RTreeParams::new(8, 3));
        let mut paged = resident.clone();
        let p = pool();
        page_out_tree(&p, &mut paged, resident.arena_bytes() / 4).unwrap();
        assert_eq!(resident.structure(), paged.structure());
        paged.validate().unwrap();
    }
}
