//! Index persistence: one file holds the corpus and a tree topology.
//!
//! Layout: page 0 is the header (written last); the corpus and the tree
//! structure are two independent paged streams. MBRs and augmentations
//! are *not* stored — they are derived data, recomputed bottom-up on load
//! by [`yask_index::RTree::from_structure`], which also means a file
//! saved from a SetR-tree can be loaded as a KcR-tree (or any other
//! augmentation) without conversion. The export is also independent of
//! the in-memory arena layout: [`yask_index::RTree::structure`] walks
//! reachable nodes only, so a tree derived by path-copying updates
//! (whose chunked slab carries freed slots and chunks shared with older
//! epochs) serializes identically to a fresh bulk build of the same
//! topology, and loading always produces a densely packed arena.

use std::io;
use std::path::Path;

use yask_geo::{Point, Rect, Space};
use yask_index::{
    Augmentation, Corpus, CorpusBuilder, RTree, RTreeParams, StructNode, TreeStructure,
};
use yask_text::KeywordSet;

use crate::buffer_pool::{BufferPool, PoolStats};
use crate::codec::{StreamReader, StreamWriter};
use crate::page::{PageId, PAGE_SIZE};

// Format 02: each corpus slot carries a liveness flag, so a corpus
// version with tombstones (live updates) round-trips with stable ids.
const MAGIC: &[u8; 8] = b"YASKPG02";

/// Saves a corpus plus one tree topology to `path` (truncates).
pub fn save_index(
    path: &Path,
    corpus: &Corpus,
    structure: &TreeStructure,
    params: RTreeParams,
) -> io::Result<()> {
    let pool = BufferPool::create(path, 64)?;
    let header_page = pool.allocate()?; // page 0, filled in last
    debug_assert_eq!(header_page, PageId(0));

    // Corpus stream.
    let (corpus_first, corpus_len) = write_corpus_stream(&pool, corpus)?;

    // Structure stream.
    let mut w = StreamWriter::new(&pool)?;
    w.write_u32(params.max_entries as u32)?;
    w.write_u32(params.min_entries as u32)?;
    w.write_u64(structure.nodes.len() as u64)?;
    for n in &structure.nodes {
        w.write_u8(u8::from(n.is_leaf))?;
        w.write_u32(n.entries.len() as u32)?;
        for &e in &n.entries {
            w.write_u32(e)?;
        }
    }
    w.write_u64(structure.root.map_or(u64::MAX, u64::from))?;
    w.write_u64(structure.height as u64)?;
    w.write_u64(structure.len as u64)?;
    let (tree_first, tree_len) = w.finish()?;

    // Header.
    let mut header = vec![0u8; PAGE_SIZE];
    header[..8].copy_from_slice(MAGIC);
    header[8..16].copy_from_slice(&corpus_first.0.to_le_bytes());
    header[16..24].copy_from_slice(&corpus_len.to_le_bytes());
    header[24..32].copy_from_slice(&tree_first.0.to_le_bytes());
    header[32..40].copy_from_slice(&tree_len.to_le_bytes());
    pool.write(header_page, &header)?;
    pool.sync()
}

/// Writes one corpus as a paged stream: space bounds, slot count, then
/// every slot (tombstoned ones flagged dead — object ids are positional,
/// so dropping dead slots would shift every id recorded elsewhere).
/// Shared by the [`MAGIC`] index format and the checkpoint format.
pub(crate) fn write_corpus_stream(pool: &BufferPool, corpus: &Corpus) -> io::Result<(PageId, u64)> {
    let mut w = StreamWriter::new(pool)?;
    let bounds = corpus.space().bounds();
    w.write_f64(bounds.lo.x)?;
    w.write_f64(bounds.lo.y)?;
    w.write_f64(bounds.hi.x)?;
    w.write_f64(bounds.hi.y)?;
    w.write_u64(corpus.slot_count() as u64)?;
    for o in corpus.iter_slots() {
        w.write_u8(u8::from(corpus.contains(o.id)))?;
        w.write_f64(o.loc.x)?;
        w.write_f64(o.loc.y)?;
        w.write_str(&o.name)?;
        w.write_u32(o.doc.len() as u32)?;
        for kw in o.doc.raw() {
            w.write_u32(*kw)?;
        }
    }
    w.finish()
}

/// Reads back a corpus stream written by [`write_corpus_stream`].
pub(crate) fn read_corpus_stream(
    pool: &BufferPool,
    first: PageId,
    len: u64,
) -> io::Result<Corpus> {
    let mut r = StreamReader::new(pool, first, len)?;
    let lo = Point::new(r.read_f64()?, r.read_f64()?);
    let hi = Point::new(r.read_f64()?, r.read_f64()?);
    let n = r.read_u64()? as usize;
    let mut b = CorpusBuilder::with_capacity(n).with_space(Space::new(Rect::new(lo, hi)));
    for _ in 0..n {
        let live = r.read_u8()? != 0;
        let x = r.read_f64()?;
        let y = r.read_f64()?;
        let name = r.read_str()?;
        let k = r.read_u32()? as usize;
        let mut kws = Vec::with_capacity(k);
        for _ in 0..k {
            kws.push(r.read_u32()?);
        }
        let id = b.push(Point::new(x, y), KeywordSet::from_raw(kws), name);
        if !live {
            b.kill(id);
        }
    }
    Ok(b.build())
}

/// Loads a corpus + tree from `path`, reconstructing the requested
/// augmentation. Returns the tree together with the buffer-pool stats of
/// the load (how many page reads it took).
pub fn load_index<A: Augmentation>(
    path: &Path,
    pool_capacity: usize,
) -> io::Result<(RTree<A>, PoolStats)> {
    let pool = BufferPool::open(path, pool_capacity)?;
    let header = pool.read(PageId(0))?;
    if &header[..8] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let word = |i: usize| u64::from_le_bytes(header[i..i + 8].try_into().expect("header word"));
    let corpus_first = PageId(word(8));
    let corpus_len = word(16);
    let tree_first = PageId(word(24));
    let tree_len = word(32);

    // Corpus.
    let corpus = read_corpus_stream(&pool, corpus_first, corpus_len)?;

    // Structure.
    let mut r = StreamReader::new(&pool, tree_first, tree_len)?;
    let max_entries = r.read_u32()? as usize;
    let min_entries = r.read_u32()? as usize;
    let params = RTreeParams::new(max_entries, min_entries);
    let n_nodes = r.read_u64()? as usize;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let is_leaf = r.read_u8()? != 0;
        let m = r.read_u32()? as usize;
        let mut entries = Vec::with_capacity(m);
        for _ in 0..m {
            entries.push(r.read_u32()?);
        }
        nodes.push(StructNode { is_leaf, entries });
    }
    let root_raw = r.read_u64()?;
    let structure = TreeStructure {
        nodes,
        root: (root_raw != u64::MAX).then_some(root_raw as u32),
        height: r.read_u64()? as usize,
        len: r.read_u64()? as usize,
    };

    let tree = RTree::from_structure(corpus, params, &structure);
    Ok((tree, pool.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_index::{KcAug, SetAug};
    use yask_util::Xoshiro256;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("yask-store-{}-{}", std::process::id(), name));
        p
    }

    fn random_corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n);
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(5)).map(|_| rng.below(40) as u32));
            b.push(
                Point::new(rng.next_f64(), rng.next_f64()),
                doc,
                format!("hôtel-{i}"),
            );
        }
        b.build()
    }

    #[test]
    fn save_load_round_trip() {
        let path = tmp("roundtrip.db");
        let corpus = random_corpus(400, 5);
        let params = RTreeParams::new(8, 3);
        let tree: RTree<SetAug> = RTree::bulk_load(corpus.clone(), params);
        save_index(&path, &corpus, &tree.structure(), params).unwrap();

        let (loaded, stats): (RTree<SetAug>, _) = load_index(&path, 128).unwrap();
        loaded.validate().unwrap();
        assert_eq!(loaded.len(), 400);
        assert_eq!(loaded.height(), tree.height());
        assert_eq!(loaded.structure(), tree.structure());
        assert!(stats.misses > 0, "load must actually read pages");
        // Object payloads survive byte-for-byte.
        for (a, b) in corpus.iter().zip(loaded.corpus().iter()) {
            assert_eq!(a.loc, b.loc);
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.name, b.name);
        }
        // Space normalization survives.
        assert_eq!(corpus.space(), loaded.corpus().space());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tombstoned_corpus_round_trips_with_stable_ids() {
        let path = tmp("tombstones.db");
        let seed = random_corpus(80, 15);
        let (corpus, new_ids) = seed.with_updates(
            [(
                yask_geo::Point::new(0.5, 0.5),
                KeywordSet::from_raw([3u32]),
                "appended".to_owned(),
            )],
            &[yask_index::ObjectId(5), yask_index::ObjectId(17)],
        );
        let params = RTreeParams::new(8, 3);
        let tree: RTree<SetAug> = RTree::bulk_load(corpus.clone(), params);
        assert_eq!(tree.len(), corpus.len());
        save_index(&path, &corpus, &tree.structure(), params).unwrap();

        let (loaded, _): (RTree<SetAug>, _) = load_index(&path, 64).unwrap();
        loaded.validate().unwrap();
        let lc = loaded.corpus();
        assert_eq!(lc.slot_count(), corpus.slot_count());
        assert_eq!(lc.len(), corpus.len());
        assert!(!lc.contains(yask_index::ObjectId(5)));
        assert!(!lc.contains(yask_index::ObjectId(17)));
        assert!(lc.contains(new_ids[0]));
        // The dead slot's payload survives, keeping ids positional.
        assert_eq!(lc.get(yask_index::ObjectId(5)).name, corpus.get(yask_index::ObjectId(5)).name);
        assert_eq!(loaded.structure(), tree.structure());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn path_copied_epoch_tree_round_trips() {
        // A tree derived through `with_updates` has freed arena slots and
        // chunks shared with the previous epoch; its structure export
        // must be oblivious to all of that.
        let path = tmp("epoch.db");
        let v0 = random_corpus(500, 25);
        let params = RTreeParams::new(8, 3);
        let t0: RTree<KcAug> = RTree::bulk_load(v0.clone(), params);
        let (v1, new_ids) = v0.with_updates(
            [(
                Point::new(0.25, 0.75),
                KeywordSet::from_raw([7u32]),
                "epoch-1".to_owned(),
            )],
            &[yask_index::ObjectId(40), yask_index::ObjectId(41)],
        );
        let (t1, copy) = t0.with_updates(
            v1.clone(),
            &new_ids,
            &[yask_index::ObjectId(40), yask_index::ObjectId(41)],
        );
        assert!(copy.chunks_copied + copy.chunks_created >= 1);
        save_index(&path, &v1, &t1.structure(), params).unwrap();

        let (loaded, _): (RTree<KcAug>, _) = load_index(&path, 64).unwrap();
        loaded.validate().unwrap();
        assert_eq!(loaded.structure(), t1.structure());
        assert_eq!(loaded.len(), t1.len());
        // The reload is densely packed — no freed slack survives the trip.
        assert_eq!(loaded.free_slots(), 0);
        assert!(loaded.arena_slots() <= t1.arena_slots());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn augmentation_can_change_on_load() {
        let path = tmp("convert.db");
        let corpus = random_corpus(150, 6);
        let params = RTreeParams::new(8, 3);
        let tree: RTree<SetAug> = RTree::bulk_load(corpus.clone(), params);
        save_index(&path, &corpus, &tree.structure(), params).unwrap();
        let (kc, _): (RTree<KcAug>, _) = load_index(&path, 64).unwrap();
        kc.validate().unwrap();
        assert_eq!(kc.structure(), tree.structure());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_index_round_trips() {
        let path = tmp("empty.db");
        let corpus = CorpusBuilder::new().build();
        let params = RTreeParams::default();
        let tree: RTree<SetAug> = RTree::bulk_load(corpus.clone(), params);
        save_index(&path, &corpus, &tree.structure(), params).unwrap();
        let (loaded, _): (RTree<SetAug>, _) = load_index(&path, 8).unwrap();
        assert!(loaded.is_empty());
        loaded.validate().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_magic_is_rejected() {
        let path = tmp("magic.db");
        let corpus = random_corpus(10, 7);
        let params = RTreeParams::new(4, 2);
        let tree: RTree<SetAug> = RTree::bulk_load(corpus.clone(), params);
        save_index(&path, &corpus, &tree.structure(), params).unwrap();
        // Stomp the magic.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_index::<SetAug>(&path, 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("trunc.db");
        let corpus = random_corpus(200, 8);
        let params = RTreeParams::new(8, 3);
        let tree: RTree<SetAug> = RTree::bulk_load(corpus.clone(), params);
        save_index(&path, &corpus, &tree.structure(), params).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Drop the tail pages but stay page-aligned so open() succeeds and
        // the stream reader hits the missing chain.
        std::fs::write(&path, &bytes[..PAGE_SIZE * 2]).unwrap();
        assert!(load_index::<SetAug>(&path, 8).is_err());
        std::fs::remove_file(&path).ok();
    }
}
