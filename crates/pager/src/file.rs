//! The page file: fixed-size page I/O over one backing file.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::Bytes;

use crate::page::{PageId, PAGE_SIZE};

/// A file of fixed-size pages. Not internally synchronized — wrap it in a
/// [`crate::BufferPool`] (which owns the lock) for shared access.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    pages: u64,
}

impl PageFile {
    /// Creates (truncating) a fresh page file.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(PageFile { file, pages: 0 })
    }

    /// Opens an existing page file. Errors if the length is not a
    /// multiple of the page size (torn file).
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file length {len} is not page aligned"),
            ));
        }
        Ok(PageFile {
            file,
            pages: len / PAGE_SIZE as u64,
        })
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Allocates a fresh zeroed page at the end of the file.
    pub fn allocate(&mut self) -> io::Result<PageId> {
        let id = PageId(self.pages);
        self.file.seek(SeekFrom::Start(id.offset()))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        self.pages += 1;
        Ok(id)
    }

    /// Reads one page.
    pub fn read_page(&mut self, id: PageId) -> io::Result<Bytes> {
        self.check(id)?;
        yask_util::failpoint::fire("pager.read")?;
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.seek(SeekFrom::Start(id.offset()))?;
        self.file.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    /// Writes one page (must be exactly [`PAGE_SIZE`] bytes).
    pub fn write_page(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        self.check(id)?;
        if data.len() != PAGE_SIZE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("page write of {} bytes", data.len()),
            ));
        }
        yask_util::failpoint::fire("pager.write")?;
        self.file.seek(SeekFrom::Start(id.offset()))?;
        self.file.write_all(data)
    }

    /// Flushes file contents to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        yask_util::failpoint::fire("pager.sync")?;
        self.file.sync_all()
    }

    fn check(&self, id: PageId) -> io::Result<()> {
        if id.0 >= self.pages {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("page {id} out of bounds ({} pages)", self.pages),
            ))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("yask-pagefile-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn allocate_write_read_round_trip() {
        let path = tmp("rw.db");
        let mut f = PageFile::create(&path).unwrap();
        let a = f.allocate().unwrap();
        let b = f.allocate().unwrap();
        assert_eq!((a, b), (PageId(0), PageId(1)));
        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = 0xAB;
        data[PAGE_SIZE - 1] = 0xCD;
        f.write_page(b, &data).unwrap();
        assert_eq!(&f.read_page(b).unwrap()[..], &data[..]);
        // Page a stays zeroed.
        assert!(f.read_page(a).unwrap().iter().all(|&x| x == 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_preserves_pages() {
        let path = tmp("reopen.db");
        {
            let mut f = PageFile::create(&path).unwrap();
            let p = f.allocate().unwrap();
            let mut data = vec![7u8; PAGE_SIZE];
            data[100] = 42;
            f.write_page(p, &data).unwrap();
            f.sync().unwrap();
        }
        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.page_count(), 1);
        assert_eq!(f.read_page(PageId(0)).unwrap()[100], 42);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_bounds_and_bad_sizes_error() {
        let path = tmp("bounds.db");
        let mut f = PageFile::create(&path).unwrap();
        assert!(f.read_page(PageId(0)).is_err());
        let p = f.allocate().unwrap();
        assert!(f.write_page(p, &[0u8; 10]).is_err());
        assert!(f.write_page(PageId(5), &[0u8; PAGE_SIZE]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_torn_files() {
        let path = tmp("torn.db");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        let err = PageFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
