//! Disk substrate for YASK (the "Hard Disk" box of the paper's Fig 1).
//!
//! The demo's server keeps its R-tree based indexes on disk; this crate
//! is that layer, built bottom-up:
//!
//! * [`page`] — fixed-size 4 KiB pages and page ids;
//! * [`mod@file`] — a [`file::PageFile`]: allocate / read / write pages of a
//!   single backing file;
//! * [`buffer_pool`] — an LRU read cache with write-through semantics and
//!   hit/miss statistics ([`buffer_pool::BufferPool`]);
//! * [`codec`] — little-endian primitive encoding helpers plus paged
//!   byte-stream reader/writer that span records across pages;
//! * [`store`] — persistence of a [`yask_index::Corpus`] and any R-tree's
//!   [`yask_index::TreeStructure`] (topology only: MBRs and augmentations
//!   are derived data, recomputed on load);
//! * [`checkpoint`] — WAL-compaction snapshots (`YASKPG03`): a corpus
//!   epoch plus the vocabulary, written atomically, so the ingest layer
//!   can truncate its log and bound restart-replay time.

pub mod buffer_pool;
pub mod checkpoint;
pub mod codec;
pub mod file;
pub mod page;
pub mod paged;
pub mod store;

pub use buffer_pool::{BufferPool, PoolStats};
pub use paged::{page_out_tree, PagedNodeSource, PagedStats};
pub use checkpoint::{load_checkpoint, load_checkpoint_with_stats, save_checkpoint, Checkpoint};
pub use file::PageFile;
pub use page::{PageId, PAGE_SIZE};
pub use store::{load_index, save_index};
