//! The buffer pool: an LRU read cache over a [`PageFile`].
//!
//! Reads go through the cache (read-through); writes update both the file
//! and the cached frame (write-through), so the cache never holds dirty
//! data and crash consistency reduces to the file's own durability. The
//! pool is internally synchronized with a `parking_lot` mutex and shared
//! via `&self`, matching how the server threads use it.

use std::io;
use std::path::Path;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use yask_util::FxHashMap;

use crate::file::PageFile;
use crate::page::{PageId, PAGE_SIZE};

/// Cache effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Reads served from the cache.
    pub hits: u64,
    /// Reads that went to disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
}

impl std::ops::AddAssign for PoolStats {
    fn add_assign(&mut self, rhs: PoolStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
    }
}

struct Frame {
    data: Arc<Bytes>,
    last_used: u64,
}

struct Inner {
    file: PageFile,
    frames: FxHashMap<u64, Frame>,
    clock: u64,
    stats: PoolStats,
}

/// A shared, synchronized LRU page cache.
pub struct BufferPool {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl BufferPool {
    /// Wraps a page file with a cache of `capacity` frames (≥ 1).
    pub fn new(file: PageFile, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            inner: Mutex::new(Inner {
                file,
                frames: FxHashMap::default(),
                clock: 0,
                stats: PoolStats::default(),
            }),
            capacity,
        }
    }

    /// Creates a fresh file wrapped in a pool.
    pub fn create(path: &Path, capacity: usize) -> io::Result<Self> {
        Ok(BufferPool::new(PageFile::create(path)?, capacity))
    }

    /// Opens an existing file wrapped in a pool.
    pub fn open(path: &Path, capacity: usize) -> io::Result<Self> {
        Ok(BufferPool::new(PageFile::open(path)?, capacity))
    }

    /// Number of allocated pages in the backing file.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().file.page_count()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Cache capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates a fresh zeroed page.
    pub fn allocate(&self) -> io::Result<PageId> {
        self.inner.lock().file.allocate()
    }

    /// Reads a page through the cache.
    pub fn read(&self, id: PageId) -> io::Result<Arc<Bytes>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let now = inner.clock;
        if let Some(frame) = inner.frames.get_mut(&id.0) {
            frame.last_used = now;
            let data = frame.data.clone();
            inner.stats.hits += 1;
            return Ok(data);
        }
        inner.stats.misses += 1;
        let data = Arc::new(inner.file.read_page(id)?);
        self.insert_frame(&mut inner, id, data.clone());
        Ok(data)
    }

    /// Writes a page through to disk and refreshes the cached frame.
    pub fn write(&self, id: PageId, data: &[u8]) -> io::Result<()> {
        assert_eq!(data.len(), PAGE_SIZE, "page writes are full pages");
        let mut inner = self.inner.lock();
        inner.file.write_page(id, data)?;
        inner.clock += 1;
        let arc = Arc::new(Bytes::copy_from_slice(data));
        self.insert_frame(&mut inner, id, arc);
        Ok(())
    }

    /// Flushes the backing file.
    pub fn sync(&self) -> io::Result<()> {
        self.inner.lock().file.sync()
    }

    fn insert_frame(&self, inner: &mut Inner, id: PageId, data: Arc<Bytes>) {
        let now = inner.clock;
        if inner.frames.len() >= self.capacity && !inner.frames.contains_key(&id.0) {
            // Evict the least recently used frame. Linear scan: pools are
            // small (thousands of frames) and eviction is off the hot path
            // compared to the disk read that caused it.
            if let Some((&victim, _)) = inner
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
            {
                inner.frames.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.frames.insert(
            id.0,
            Frame {
                data,
                last_used: now,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("yask-pool-{}-{}", std::process::id(), name));
        p
    }

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn read_through_and_hit() {
        let path = tmp("hit.db");
        let pool = BufferPool::create(&path, 4).unwrap();
        let p = pool.allocate().unwrap();
        pool.write(p, &page_of(9)).unwrap();
        assert_eq!(pool.read(p).unwrap()[0], 9);
        assert_eq!(pool.read(p).unwrap()[0], 9);
        let s = pool.stats();
        assert_eq!(s.misses, 0, "write populated the frame");
        assert_eq!(s.hits, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_respects_lru() {
        let path = tmp("lru.db");
        let pool = BufferPool::create(&path, 2).unwrap();
        let pages: Vec<PageId> = (0..3).map(|_| pool.allocate().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.write(p, &page_of(i as u8)).unwrap();
        }
        // Capacity 2: writing p0, p1, p2 evicted p0.
        assert!(pool.stats().evictions >= 1);
        // Touch p1 then read p0 (miss) — p2 becomes the LRU victim.
        pool.read(pages[1]).unwrap();
        let before = pool.stats().misses;
        pool.read(pages[0]).unwrap();
        assert_eq!(pool.stats().misses, before + 1);
        // p1 must still be cached.
        let h_before = pool.stats().hits;
        pool.read(pages[1]).unwrap();
        assert_eq!(pool.stats().hits, h_before + 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_through_survives_reopen() {
        let path = tmp("wt.db");
        {
            let pool = BufferPool::create(&path, 2).unwrap();
            let p = pool.allocate().unwrap();
            pool.write(p, &page_of(0x5A)).unwrap();
            pool.sync().unwrap();
        }
        let pool = BufferPool::open(&path, 2).unwrap();
        assert_eq!(pool.page_count(), 1);
        assert_eq!(pool.read(PageId(0)).unwrap()[123], 0x5A);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_readers_share_frames() {
        let path = tmp("mt.db");
        let pool = std::sync::Arc::new(BufferPool::create(&path, 8).unwrap());
        let pages: Vec<PageId> = (0..4).map(|_| pool.allocate().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.write(p, &page_of(i as u8)).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = pool.clone();
            let pages = pages.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let p = pages[(t + i) % pages.len()];
                    let data = pool.read(p).unwrap();
                    assert_eq!(data[0] as usize, p.0 as usize);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let path = tmp("zero.db");
        let _ = BufferPool::create(&path, 0);
    }
}
