//! Benchmark harness support: standard workloads, wall-clock timing and
//! paper-style table printing shared by the Criterion benches and the
//! `experiments` binary (see DESIGN.md §2 for the experiment index).

use std::time::Instant;

use yask_data::{SpatialDistribution, SynthConfig};
use yask_index::Corpus;
use yask_server::Json;
use yask_util::Summary;

/// Host facts stamped into every `BENCH_*.json` header so archived
/// numbers stay attributable to the machine that produced them: the
/// logical CPU budget the process actually sees (cgroup/affinity-aware
/// via `std::thread::available_parallelism`), OS and architecture.
pub fn host_info() -> Json {
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    Json::obj([
        ("available_parallelism", Json::Num(cpus as f64)),
        ("os", Json::str(std::env::consts::OS)),
        ("arch", Json::str(std::env::consts::ARCH)),
    ])
}

/// The standard clustered synthetic corpus used by the performance
/// experiments (vocabulary 5 000, Zipf 0.8, 12 clusters) at size `n` —
/// vocabulary size and skew chosen to match the keyword selectivity of
/// web POI corpora (most terms rare, a few ubiquitous).
pub fn std_corpus(n: usize) -> Corpus {
    SynthConfig {
        n,
        vocab: 5_000,
        min_doc: 3,
        max_doc: 10,
        zipf_s: 0.8,
        spatial: SpatialDistribution::Clustered {
            clusters: 12,
            sigma: 0.03,
        },
        seed: 42,
    }
    .build()
}

/// Times `f` for `reps` repetitions; returns per-call microseconds.
pub fn time_us<F: FnMut()>(reps: usize, mut f: F) -> Summary {
    let mut s = Summary::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        s.record_duration(t0.elapsed());
    }
    s
}

/// Prints an aligned table: a title line, a header row, then data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", render(&head));
    for row in rows {
        println!("{}", render(row));
    }
}

/// Formats a mean ± std pair in microseconds, switching to milliseconds
/// when large.
pub fn fmt_us(mean_us: f64) -> String {
    if mean_us >= 10_000.0 {
        format!("{:.2}ms", mean_us / 1000.0)
    } else {
        format!("{mean_us:.1}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_corpus_is_deterministic_and_sized() {
        let a = std_corpus(500);
        let b = std_corpus(500);
        assert_eq!(a.len(), 500);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.loc, y.loc);
        }
    }

    #[test]
    fn time_us_records_reps() {
        let s = time_us(5, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn fmt_us_switches_units() {
        assert!(fmt_us(100.0).ends_with("µs"));
        assert!(fmt_us(50_000.0).ends_with("ms"));
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
    }
}
