//! `bench_check` — the CI bench-regression gate.
//!
//! Compares a freshly produced `BENCH_exec.json` against the committed
//! baseline row-by-row (rows are keyed by `name`) and fails when any
//! shared row's `hist_p99_us` regressed past the tolerance factor. The
//! histogram p99 is the gated figure because it is the number `/metrics`
//! serves — the harness wall-clock mean rides along in the report but
//! does not gate.
//!
//! Tolerance semantics: a candidate row fails when it exceeds BOTH
//! `baseline * tolerance` AND `baseline + SLACK_US`. The default factor
//! is 1.25 (a 25 % p99 regression) — deliberately loose, because the CI
//! run is a `--smoke` pass (small corpus, few reps, single shared core)
//! compared against a committed full run from a developer machine: the
//! gate is a tripwire for *catastrophic* regressions (an accidental
//! O(n) on the hot path), not a microbenchmark. The absolute slack
//! exists for the warm cache-hit rows, whose sub-microsecond p99 sits
//! at timer resolution on a shared core — a relative bound alone would
//! flap on scheduler noise, while a genuine regression (a hit path
//! suddenly costing hundreds of microseconds) still trips both bounds.
//! Rows present on only one side are reported but never fail the
//! check, so adding or renaming benches doesn't break CI.
//!
//! Usage: `bench_check <baseline.json> <candidate.json> [tolerance]`

/// Absolute excess (µs) a row must also show before it can fail.
const SLACK_US: f64 = 200.0;

use std::process::ExitCode;

use yask_server::Json;

/// One comparable row: `(name, hist_p99_us, hist_count)`.
fn rows(doc: &Json) -> Vec<(String, f64, f64)> {
    let Some(results) = doc.get("results").and_then(Json::as_array) else {
        return Vec::new();
    };
    results
        .iter()
        .filter_map(|r| {
            let name = r.get("name")?.as_str()?.to_owned();
            let p99 = r.get("hist_p99_us")?.as_f64()?;
            let count = r.get("hist_count")?.as_f64()?;
            Some((name, p99, count))
        })
        .collect()
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, candidate_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(c)) => (b.as_str(), c.as_str()),
        _ => {
            eprintln!("usage: bench_check <baseline.json> <candidate.json> [tolerance]");
            return ExitCode::from(2);
        }
    };
    let tolerance: f64 = match args.get(2) {
        None => 1.25,
        Some(raw) => match raw.parse() {
            Ok(t) if t >= 1.0 => t,
            _ => {
                eprintln!("tolerance must be a number >= 1.0, got {raw:?}");
                return ExitCode::from(2);
            }
        },
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (rows(&b), rows(&c)),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_check: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;
    let mut compared = 0usize;
    for (name, cand_p99, cand_count) in &candidate {
        let Some((_, base_p99, _)) = baseline.iter().find(|(b, _, _)| b == name) else {
            println!("  new row (no baseline): {name}");
            continue;
        };
        // A row with no samples has p99 = 0 on that side; there is
        // nothing meaningful to gate.
        if *base_p99 <= 0.0 || *cand_count <= 0.0 {
            println!("  skipped (empty histogram): {name}");
            continue;
        }
        compared += 1;
        let ratio = cand_p99 / base_p99;
        let failed = ratio > tolerance && cand_p99 - base_p99 > SLACK_US;
        let verdict = if failed { "FAIL" } else { "ok" };
        println!(
            "  {verdict:>4}  {name}: hist_p99 {cand_p99:.1}us vs baseline {base_p99:.1}us ({:+.1}%)",
            (ratio - 1.0) * 100.0
        );
        if failed {
            failures += 1;
        }
    }
    for (name, _, _) in &baseline {
        if !candidate.iter().any(|(c, _, _)| c == name) {
            println!("  removed row (baseline only): {name}");
        }
    }

    if compared == 0 {
        // A gate that silently compares nothing would pass forever.
        eprintln!("bench_check: no comparable rows between {baseline_path} and {candidate_path}");
        return ExitCode::from(2);
    }
    if failures > 0 {
        eprintln!(
            "bench_check: {failures} of {compared} rows regressed past {tolerance}x on hist_p99"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_check: {compared} rows within {tolerance}x of baseline");
    ExitCode::SUCCESS
}
