//! Regenerates every table/figure of the evaluation (DESIGN.md §2).
//!
//! Usage:
//!
//! ```text
//! experiments                 # all experiments, quick sizes
//! experiments --full          # all experiments, paper-scale sizes
//! experiments e2 e5 e10       # a subset
//! ```
//!
//! Output is a sequence of paper-style tables; EXPERIMENTS.md records one
//! captured run together with the expected shapes.

use std::sync::Arc;

use yask_bench::{fmt_us, print_table, std_corpus, time_us};
use yask_core::{
    explain, refine_keywords, refine_keywords_naive, refine_preference,
    refine_preference_naive, Yask,
};
use yask_data::{gen_queries, gen_selective_queries, hk_hotels, pick_missing, DatasetStats};
use yask_geo::Point;
use yask_index::{IrTree, KcRTree, ObjectId, PlainRTree, RTreeParams, SetRTree};
use yask_query::{
    topk_scan, topk_tree, topk_tree_with_stats, Query, ScoreParams, Weights,
};
use yask_server::{http_post, HttpServer, Json, YaskService};
use yask_text::KeywordSet;
use yask_core::pref::refine_preference_filtered;

struct Config {
    /// Base corpus size for the performance experiments.
    n: usize,
    /// Corpus size where O(n²)-ish naive baselines are still feasible.
    n_naive: usize,
    /// Repetitions per measurement point.
    reps: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let cfg = if full {
        Config { n: 100_000, n_naive: 5_000, reps: 10 }
    } else {
        Config { n: 20_000, n_naive: 2_000, reps: 5 }
    };
    let wanted: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let run = |id: &str| wanted.is_empty() || wanted.contains(&id) || wanted.contains(&"all");

    println!(
        "YASK experiments — N = {} (naive baselines at N = {}), {} reps",
        cfg.n, cfg.n_naive, cfg.reps
    );

    if run("fig2") || run("e1") {
        fig2();
    }
    if run("e2") {
        e2_topk_vs_k(&cfg);
    }
    if run("e3") {
        e3_topk_vs_doc(&cfg);
    }
    if run("e4") {
        e4_scalability(&cfg);
    }
    if run("e5") {
        e5_engines(&cfg);
    }
    if run("e6") {
        e6_pref_performance(&cfg);
    }
    if run("e7") {
        e7_pref_lambda();
    }
    if run("e8") {
        e8_keyword_performance(&cfg);
    }
    if run("e9") {
        e9_keyword_lambda();
    }
    if run("e10") {
        e10_effectiveness(&cfg);
    }
    if run("e11") {
        e11_explanations();
    }
    if run("e12") {
        e12_server(&cfg);
    }
    if run("e13") {
        e13_dataset();
    }
    if run("e14") {
        e14_combined(&cfg);
    }
    if run("e15") {
        e15_ablation(&cfg);
    }
    if run("e16") {
        e16_similarity_models(&cfg);
    }
}

/// E16: the similarity-model extension point (paper footnote 1): latency
/// and result agreement of the alternative set-similarity models.
fn e16_similarity_models(cfg: &Config) {
    use yask_text::SimilarityModel;
    let corpus = std_corpus(cfg.n);
    let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::default());
    let queries = gen_selective_queries(&corpus, 20, 3, 10, 47);
    let jaccard = ScoreParams::new(corpus.space());
    let jaccard_results: Vec<Vec<ObjectId>> = queries
        .iter()
        .map(|q| topk_tree(&tree, &jaccard, q).iter().map(|r| r.id).collect())
        .collect();
    let mut rows = Vec::new();
    for model in SimilarityModel::ALL {
        let params = ScoreParams::new(corpus.space()).with_model(model);
        let mut t = time_us(cfg.reps, || {
            for q in &queries {
                std::hint::black_box(topk_tree(&tree, &params, q));
            }
        });
        // Overlap with the Jaccard top-k: how much does the model choice
        // change what users actually see?
        let mut shared = 0usize;
        let mut total = 0usize;
        for (q, jr) in queries.iter().zip(&jaccard_results) {
            let ids: Vec<ObjectId> = topk_tree(&tree, &params, q).iter().map(|r| r.id).collect();
            shared += ids.iter().filter(|id| jr.contains(id)).count();
            total += jr.len();
        }
        rows.push(vec![
            model.name().to_string(),
            fmt_us(t.median() / queries.len() as f64),
            format!("{:.0}%", 100.0 * shared as f64 / total.max(1) as f64),
        ]);
    }
    print_table(
        &format!(
            "E16 — similarity models (footnote 1 extension; N = {}, k = 10)",
            cfg.n
        ),
        &["model", "latency", "top-k overlap vs jaccard"],
        &rows,
    );
}

/// E14: combined refinement ("apply the two refinement functions
/// simultaneously") vs the single models, over many scenarios.
fn e14_combined(cfg: &Config) {
    let corpus = std_corpus(cfg.n_naive * 2);
    let params = ScoreParams::new(corpus.space());
    let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::default());
    let queries = gen_queries(&corpus, 20, 2, 5, 37);
    let mut rows = Vec::new();
    for lambda in [0.3, 0.5, 0.7] {
        let (mut pref_sum, mut kw_sum, mut comb_sum) = (0.0, 0.0, 0.0);
        let mut comb_wins = 0usize;
        let mut total = 0usize;
        for (i, q) in queries.iter().enumerate() {
            let missing = pick_missing(&corpus, &params, q, 1, i % 8);
            let Ok(pref) = refine_preference(&corpus, &params, q, &missing, lambda) else {
                continue;
            };
            let kw = refine_keywords(&tree, &params, q, &missing, lambda).unwrap();
            let comb =
                yask_core::refine_combined(&tree, &params, q, &missing, lambda).unwrap();
            total += 1;
            pref_sum += pref.penalty;
            kw_sum += kw.penalty;
            comb_sum += comb.penalty;
            // Compare in the combined metric (single models halve their
            // modification term when embedded — see core::combined docs).
            let pref_t = lambda * (pref.delta_k as f64 / (pref.initial_rank - q.k) as f64)
                + (1.0 - lambda) * (pref.delta_w / q.weights.penalty_normalizer()) / 2.0;
            let kw_t = lambda * (kw.delta_k as f64 / (kw.initial_rank - q.k) as f64)
                + (1.0 - lambda) * (kw.delta_doc as f64 / kw.doc_norm as f64) / 2.0;
            if comb.penalty < pref_t.min(kw_t) - 1e-12 {
                comb_wins += 1;
            }
        }
        rows.push(vec![
            format!("{lambda:.1}"),
            total.to_string(),
            format!("{:.4}", pref_sum / total as f64),
            format!("{:.4}", kw_sum / total as f64),
            format!("{:.4}", comb_sum / total as f64),
            format!("{:.0}%", 100.0 * comb_wins as f64 / total as f64),
        ]);
    }
    print_table(
        &format!(
            "E14 — combined refinement vs single models (N = {}, avg penalties; combined \
             metric not directly comparable across columns)",
            cfg.n_naive * 2
        ),
        &["λ", "scenarios", "pref", "keyword", "combined", "strictly better"],
        &rows,
    );
}

/// E15: design-choice ablations — fanout and keyword bound depth.
fn e15_ablation(cfg: &Config) {
    let corpus = std_corpus(cfg.n);
    let params = ScoreParams::new(corpus.space());
    let queries = gen_selective_queries(&corpus, 20, 3, 10, 41);
    let mut rows = Vec::new();
    for (max, min) in [(8usize, 3usize), (16, 6), (32, 12), (64, 25)] {
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::new(max, min));
        let mut t = time_us(cfg.reps, || {
            for q in &queries {
                std::hint::black_box(topk_tree(&tree, &params, q));
            }
        });
        let expanded: usize = queries
            .iter()
            .map(|q| topk_tree_with_stats(&tree, &params, q).1.nodes_expanded)
            .sum();
        rows.push(vec![
            max.to_string(),
            fmt_us(t.median() / queries.len() as f64),
            format!("{:.1}", expanded as f64 / queries.len() as f64),
            tree.stats().nodes.to_string(),
        ]);
    }
    print_table(
        &format!("E15a — fanout ablation (SetR-tree, N = {}, k = 10)", cfg.n),
        &["fanout", "query", "nodes expanded", "total nodes"],
        &rows,
    );

    let small = std_corpus(cfg.n_naive * 4);
    let small_params = ScoreParams::new(small.space());
    let tree = KcRTree::bulk_load(small.clone(), RTreeParams::default());
    let q = &gen_queries(&small, 1, 3, 5, 43)[0];
    let missing = pick_missing(&small, &small_params, q, 1, 4);
    let mut rows = Vec::new();
    for depth in [1usize, 2, 4, 8] {
        let opts = yask_core::keyword::KeywordOptions {
            bound_depth: depth,
            ..Default::default()
        };
        let mut t = time_us(cfg.reps, || {
            std::hint::black_box(
                yask_core::keyword::refine_keywords_with(
                    &tree,
                    &small_params,
                    q,
                    &missing,
                    0.5,
                    opts,
                )
                .unwrap(),
            );
        });
        let r = yask_core::keyword::refine_keywords_with(
            &tree,
            &small_params,
            q,
            &missing,
            0.5,
            opts,
        )
        .unwrap();
        rows.push(vec![
            depth.to_string(),
            fmt_us(t.median()),
            r.stats.bound_pruned.to_string(),
            r.stats.objects_scored.to_string(),
        ]);
    }
    print_table(
        &format!(
            "E15b — keyword-adaptation bound-depth ablation (N = {})",
            cfg.n_naive * 4
        ),
        &["bound depth", "time", "cands pruned", "objects scored"],
        &rows,
    );
}

/// E1 / Fig 2: the exact KcR-tree example of the paper.
fn fig2() {
    use yask_index::CorpusBuilder;
    use yask_text::Vocabulary;
    let mut vocab = Vocabulary::new();
    let chinese = vocab.intern("Chinese");
    let restaurant = vocab.intern("restaurant");
    let spanish = vocab.intern("Spanish");
    let ks = |ids: &[yask_text::KeywordId]| KeywordSet::from_ids(ids.iter().copied());

    let mut b = CorpusBuilder::new();
    b.push(Point::new(0.10, 0.10), ks(&[chinese, restaurant]), "o1");
    b.push(Point::new(0.12, 0.30), ks(&[chinese, restaurant]), "o2");
    b.push(Point::new(0.14, 0.50), ks(&[restaurant]), "o3");
    b.push(Point::new(0.80, 0.20), ks(&[spanish, restaurant]), "o4");
    b.push(Point::new(0.82, 0.40), ks(&[spanish, restaurant]), "o5");
    let tree = KcRTree::bulk_load(b.build(), RTreeParams::new(4, 2));

    let mut rows = Vec::new();
    let render = |node: &yask_index::Node<yask_index::KcAug>, name: &str, rows: &mut Vec<Vec<String>>| {
        let aug = node.aug();
        let mut kws: Vec<String> = aug
            .counts()
            .iter()
            .map(|&(kw, n)| format!("{} {}", vocab.resolve(yask_text::KeywordId(kw)), n))
            .collect();
        kws.sort();
        rows.push(vec![name.to_owned(), kws.join(", "), format!("cnt={}", aug.cnt())]);
    };
    let root_id = tree.root().unwrap();
    let root = tree.node(root_id);
    render(root, "R3 (root)", &mut rows);
    for (i, &c) in root.children().iter().enumerate() {
        render(tree.node(c), &format!("R{}", i + 1), &mut rows);
    }
    print_table(
        "Fig 2 — KcR-tree keyword-count maps (paper example)",
        &["node", "keyword-count map", "cnt"],
        &rows,
    );
}

/// E2: top-k latency vs k (panel-5 "query response time" series), for
/// both selective (rare-term) and common (frequency-weighted) keywords.
fn e2_topk_vs_k(cfg: &Config) {
    let corpus = std_corpus(cfg.n);
    let params = ScoreParams::new(corpus.space());
    let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::default());
    let selective = gen_selective_queries(&corpus, 20, 3, 1, 7);
    let common = gen_queries(&corpus, 20, 3, 1, 7);
    let mut rows = Vec::new();
    for k in [1usize, 5, 10, 20, 50] {
        let mut cells = vec![k.to_string()];
        for queries in [&selective, &common] {
            let mut tree_t = time_us(cfg.reps, || {
                for q in queries {
                    std::hint::black_box(topk_tree(&tree, &params, &q.with_k(k)));
                }
            });
            let mut scan_t = time_us(cfg.reps, || {
                for q in queries {
                    std::hint::black_box(topk_scan(&corpus, &params, &q.with_k(k)));
                }
            });
            let per = queries.len() as f64;
            cells.push(fmt_us(tree_t.median() / per));
            cells.push(fmt_us(scan_t.median() / per));
            cells.push(format!("{:.1}x", scan_t.median() / tree_t.median()));
        }
        rows.push(cells);
    }
    print_table(
        &format!(
            "E2 — top-k latency vs k (N = {}, |q.doc| = 3; selective vs common keywords)",
            cfg.n
        ),
        &["k", "tree(sel)", "scan(sel)", "spd(sel)", "tree(com)", "scan(com)", "spd(com)"],
        &rows,
    );
}

/// E3: top-k latency vs |q.doc|.
fn e3_topk_vs_doc(cfg: &Config) {
    let corpus = std_corpus(cfg.n);
    let params = ScoreParams::new(corpus.space());
    let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::default());
    let mut rows = Vec::new();
    for doc_len in 1usize..=5 {
        let queries = gen_selective_queries(&corpus, 20, doc_len, 10, 11);
        let mut t = time_us(cfg.reps, || {
            for q in &queries {
                std::hint::black_box(topk_tree(&tree, &params, q));
            }
        });
        let expanded: usize = queries
            .iter()
            .map(|q| topk_tree_with_stats(&tree, &params, q).1.nodes_expanded)
            .sum();
        rows.push(vec![
            doc_len.to_string(),
            fmt_us(t.median() / queries.len() as f64),
            format!("{:.1}", expanded as f64 / queries.len() as f64),
        ]);
    }
    print_table(
        &format!("E3 — top-k latency vs |q.doc| (N = {}, k = 10)", cfg.n),
        &["|q.doc|", "SetR-tree", "nodes expanded"],
        &rows,
    );
}

/// E4: scalability in N (build + query).
fn e4_scalability(cfg: &Config) {
    let sizes = if cfg.n >= 100_000 {
        vec![10_000usize, 50_000, 100_000, 250_000]
    } else {
        vec![5_000usize, 10_000, 20_000, 50_000]
    };
    let mut rows = Vec::new();
    for &n in &sizes {
        let corpus = std_corpus(n);
        let params = ScoreParams::new(corpus.space());
        let t0 = std::time::Instant::now();
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::default());
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let queries = gen_selective_queries(&corpus, 20, 3, 10, 13);
        let mut t = time_us(cfg.reps, || {
            for q in &queries {
                std::hint::black_box(topk_tree(&tree, &params, q));
            }
        });
        let stats = tree.stats();
        rows.push(vec![
            n.to_string(),
            format!("{build_ms:.1}ms"),
            fmt_us(t.median() / queries.len() as f64),
            stats.nodes.to_string(),
            format!("{:.0}%", stats.avg_leaf_fill * 100.0),
        ]);
    }
    print_table(
        "E4 — scalability vs N (SetR-tree, k = 10, |q.doc| = 3)",
        &["N", "build", "query", "nodes", "leaf fill"],
        &rows,
    );
}

/// E5: engine comparison (bound tightness in action).
fn e5_engines(cfg: &Config) {
    let corpus = std_corpus(cfg.n);
    let params = ScoreParams::new(corpus.space());
    let tp = RTreeParams::default();
    let set = SetRTree::bulk_load(corpus.clone(), tp);
    let kc = KcRTree::bulk_load(corpus.clone(), tp);
    let ir = IrTree::bulk_load(corpus.clone(), tp);
    let queries = gen_selective_queries(&corpus, 20, 3, 10, 17);
    let per = queries.len() as f64;

    let mut rows = Vec::new();
    macro_rules! engine_row {
        ($name:literal, $run:expr, $stats:expr) => {{
            let mut t = time_us(cfg.reps, || {
                for q in &queries {
                    std::hint::black_box($run(q));
                }
            });
            let nodes: usize = queries.iter().map($stats).sum();
            rows.push(vec![
                $name.to_string(),
                fmt_us(t.median() / per),
                format!("{:.1}", nodes as f64 / per),
            ]);
        }};
    }
    engine_row!("SetR-tree", |q: &Query| topk_tree(&set, &params, q), |q: &Query| {
        topk_tree_with_stats(&set, &params, q).1.nodes_expanded
    });
    engine_row!("KcR-tree", |q: &Query| topk_tree(&kc, &params, q), |q: &Query| {
        topk_tree_with_stats(&kc, &params, q).1.nodes_expanded
    });
    engine_row!("IR-tree", |q: &Query| topk_tree(&ir, &params, q), |q: &Query| {
        topk_tree_with_stats(&ir, &params, q).1.nodes_expanded
    });
    {
        let mut t = time_us(cfg.reps, || {
            for q in &queries {
                std::hint::black_box(topk_scan(&corpus, &params, q));
            }
        });
        rows.push(vec!["scan".into(), fmt_us(t.median() / per), "-".into()]);
    }
    print_table(
        &format!("E5 — engine comparison (N = {}, k = 10, |q.doc| = 3)", cfg.n),
        &["engine", "latency", "nodes expanded"],
        &rows,
    );
}

/// E6: preference-adjustment performance vs |M|.
fn e6_pref_performance(cfg: &Config) {
    let corpus = std_corpus(cfg.n);
    let params = ScoreParams::new(corpus.space());
    let small = std_corpus(cfg.n_naive);
    let small_params = ScoreParams::new(small.space());
    let q = &gen_queries(&corpus, 1, 3, 10, 19)[0];
    let q_small = &gen_queries(&small, 1, 3, 10, 19)[0];

    let mut rows = Vec::new();
    for m_count in [1usize, 2, 4, 8] {
        let missing = pick_missing(&corpus, &params, q, m_count, 5);
        let missing_small = pick_missing(&small, &small_params, q_small, m_count, 5);
        let mut sweep = time_us(cfg.reps, || {
            std::hint::black_box(
                refine_preference(&corpus, &params, q, &missing, 0.5).unwrap(),
            );
        });
        let mut filtered = time_us(cfg.reps, || {
            std::hint::black_box(
                refine_preference_filtered(&corpus, &params, q, &missing, 0.5).unwrap(),
            );
        });
        let mut sweep_small = time_us(cfg.reps, || {
            std::hint::black_box(
                refine_preference(&small, &small_params, q_small, &missing_small, 0.5)
                    .unwrap(),
            );
        });
        let mut naive_small = time_us(cfg.reps, || {
            std::hint::black_box(
                refine_preference_naive(&small, &small_params, q_small, &missing_small, 0.5)
                    .unwrap(),
            );
        });
        rows.push(vec![
            m_count.to_string(),
            fmt_us(sweep.median()),
            fmt_us(filtered.median()),
            fmt_us(sweep_small.median()),
            fmt_us(naive_small.median()),
            format!("{:.1}x", naive_small.median() / sweep_small.median()),
        ]);
    }
    print_table(
        &format!(
            "E6 — preference adjustment vs |M| (sweep/filtered at N = {}, naive compared at N = {})",
            cfg.n, cfg.n_naive
        ),
        &["|M|", "sweep", "range-filtered", "sweep@naiveN", "naive@naiveN", "speedup"],
        &rows,
    );
}

/// E7: the λ sweep for Eqn (3) on the HK demo dataset.
fn e7_pref_lambda() {
    let (corpus, _) = hk_hotels();
    let params = ScoreParams::new(corpus.space());
    let q = Query::new(Point::new(114.172, 22.297), KeywordSet::from_raw([1, 2]), 3);
    let missing = (0..30)
        .map(|off| pick_missing(&corpus, &params, &q, 1, off))
        .find(|m| {
            refine_preference(&corpus, &params, &q, m, 0.5)
                .map(|r| r.delta_w > 0.0)
                .unwrap_or(false)
        })
        .unwrap_or_else(|| pick_missing(&corpus, &params, &q, 1, 5));
    let mut rows = Vec::new();
    for lambda in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let r = refine_preference(&corpus, &params, &q, &missing, lambda).unwrap();
        rows.push(vec![
            format!("{lambda:.1}"),
            format!("{:.4}", r.query.weights.ws()),
            r.query.k.to_string(),
            format!("{:.4}", r.delta_w),
            r.delta_k.to_string(),
            format!("{:.4}", r.penalty),
        ]);
    }
    print_table(
        "E7 — preference adjustment vs λ (HK-539, Eqn 3)",
        &["λ", "ws'", "k'", "Δw", "Δk", "penalty"],
        &rows,
    );
}

/// E8: keyword-adaptation performance and pruning.
fn e8_keyword_performance(cfg: &Config) {
    let corpus = std_corpus(cfg.n_naive * 4);
    let params = ScoreParams::new(corpus.space());
    let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::default());
    let mut rows = Vec::new();
    for doc_len in [2usize, 3, 4] {
        let q = &gen_queries(&corpus, 1, doc_len, 5, 23)[0];
        let missing = pick_missing(&corpus, &params, q, 1, 4);
        let mut fast = time_us(cfg.reps, || {
            std::hint::black_box(refine_keywords(&tree, &params, q, &missing, 0.5).unwrap());
        });
        let mut naive = time_us(cfg.reps, || {
            std::hint::black_box(
                refine_keywords_naive(&corpus, &params, q, &missing, 0.5).unwrap(),
            );
        });
        let r = refine_keywords(&tree, &params, q, &missing, 0.5).unwrap();
        rows.push(vec![
            doc_len.to_string(),
            fmt_us(fast.median()),
            fmt_us(naive.median()),
            format!("{:.1}x", naive.median() / fast.median()),
            r.stats.enumerated.to_string(),
            r.stats.bound_pruned.to_string(),
            r.stats.exact_evaluated.to_string(),
        ]);
    }
    print_table(
        &format!(
            "E8 — keyword adaptation vs |q.doc| (N = {}, bound-and-prune vs naive)",
            cfg.n_naive * 4
        ),
        &["|q.doc|", "KcR prune", "naive", "speedup", "cands", "pruned", "exact"],
        &rows,
    );
}

/// E9: the λ sweep for Eqn (4) on the HK demo dataset.
fn e9_keyword_lambda() {
    let (corpus, vocab) = hk_hotels();
    let params = ScoreParams::new(corpus.space());
    let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::default());
    let doc = KeywordSet::from_ids(
        ["clean", "comfortable"].iter().map(|w| vocab.lookup(w).unwrap()),
    );
    let q = Query::new(Point::new(114.172, 22.297), doc, 3);
    let missing = pick_missing(&corpus, &params, &q, 1, 5);
    let mut rows = Vec::new();
    for lambda in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let r = refine_keywords(&tree, &params, &q, &missing, lambda).unwrap();
        let words: Vec<&str> = r.query.doc.iter().map(|id| vocab.resolve(id)).collect();
        rows.push(vec![
            format!("{lambda:.1}"),
            r.delta_doc.to_string(),
            r.query.k.to_string(),
            r.delta_k.to_string(),
            format!("{:.4}", r.penalty),
            words.join(" "),
        ]);
    }
    print_table(
        "E9 — keyword adaptation vs λ (HK-539, Eqn 4)",
        &["λ", "Δdoc", "k'", "Δk", "penalty", "refined doc"],
        &rows,
    );
}

/// E10: refinement effectiveness over many why-not scenarios.
fn e10_effectiveness(cfg: &Config) {
    let mut rows = Vec::new();
    let scenarios: &[(&str, yask_index::Corpus)] = &[
        ("HK-539", hk_hotels().0),
        ("synthetic", std_corpus(cfg.n_naive * 2)),
    ];
    for (name, corpus) in scenarios {
        let params = ScoreParams::new(corpus.space());
        let engine = Yask::with_defaults(corpus.clone());
        let queries = gen_queries(corpus, 25, 2, 5, 29);
        let mut revived = 0usize;
        let mut total = 0usize;
        let mut pref_pen = 0.0;
        let mut kw_pen = 0.0;
        let mut pref_wins = 0usize;
        for (i, q) in queries.iter().enumerate() {
            let missing = pick_missing(corpus, &params, q, 1 + i % 2, i % 10);
            let Ok(ans) = engine.answer(q, &missing) else {
                continue;
            };
            total += 1;
            pref_pen += ans.preference.penalty;
            kw_pen += ans.keyword.penalty;
            if ans.preference.penalty <= ans.keyword.penalty {
                pref_wins += 1;
            }
            let ok = [&ans.preference.query, &ans.keyword.query].iter().all(|rq| {
                let res = engine.top_k(rq);
                missing.iter().all(|m| res.iter().any(|r| r.id == *m))
            });
            if ok {
                revived += 1;
            }
        }
        rows.push(vec![
            name.to_string(),
            total.to_string(),
            format!("{:.0}%", 100.0 * revived as f64 / total.max(1) as f64),
            format!("{:.4}", pref_pen / total.max(1) as f64),
            format!("{:.4}", kw_pen / total.max(1) as f64),
            format!("{:.0}%", 100.0 * pref_wins as f64 / total.max(1) as f64),
        ]);
    }
    print_table(
        "E10 — refinement effectiveness (λ = 0.5)",
        &["dataset", "scenarios", "revival", "avg pref penalty", "avg kw penalty", "pref wins"],
        &rows,
    );
}

/// E11: explanation generator latency and reason distribution.
fn e11_explanations() {
    let (corpus, _) = hk_hotels();
    let params = ScoreParams::new(corpus.space());
    let queries = gen_queries(&corpus, 10, 2, 3, 31);
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    let mut t = yask_util::Summary::new();
    for q in &queries {
        for idx in (0..corpus.len()).step_by(11) {
            let target = ObjectId(idx as u32);
            let t0 = std::time::Instant::now();
            let ex = explain(&corpus, &params, q, &[target]).unwrap();
            t.record_duration(t0.elapsed());
            *counts.entry(format!("{:?}", ex[0].reason)).or_insert(0) += 1;
        }
    }
    let total: usize = counts.values().sum();
    let mut rows: Vec<Vec<String>> = counts
        .into_iter()
        .map(|(reason, n)| {
            vec![
                reason,
                n.to_string(),
                format!("{:.1}%", 100.0 * n as f64 / total as f64),
            ]
        })
        .collect();
    rows.push(vec![
        "latency".into(),
        fmt_us(t.median()),
        format!("p95 {}", fmt_us(t.percentile(95.0))),
    ]);
    print_table(
        "E11 — explanations on HK-539 (reason distribution + latency)",
        &["reason", "count", "share"],
        &rows,
    );
}

/// E12: end-to-end HTTP latency (the panel-5 "query response time").
fn e12_server(cfg: &Config) {
    let service = Arc::new(YaskService::hk_demo());
    let server = HttpServer::spawn(0, 4, service.into_handler()).expect("bind");
    let addr = server.addr();
    let payload = Json::obj([
        ("x", Json::Num(114.172)),
        ("y", Json::Num(22.297)),
        ("keywords", Json::Arr(vec![Json::str("clean"), Json::str("wifi")])),
        ("k", Json::Num(3.0)),
    ]);
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let reqs_per_thread = 10 * cfg.reps;
        let t0 = std::time::Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let payload = payload.clone();
                std::thread::spawn(move || {
                    for _ in 0..reqs_per_thread {
                        let (status, _) = http_post(addr, "/query", &payload).unwrap();
                        assert_eq!(status, 200);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (threads * reqs_per_thread) as f64;
        let secs = t0.elapsed().as_secs_f64();
        rows.push(vec![
            threads.to_string(),
            format!("{:.0} req/s", total / secs),
            fmt_us(secs * 1e6 / total * threads as f64),
        ]);
    }
    print_table(
        "E12 — HTTP /query end-to-end (HK-539, 4 workers)",
        &["client threads", "throughput", "latency"],
        &rows,
    );
}

/// E13: the dataset description table.
fn e13_dataset() {
    let (corpus, _) = hk_hotels();
    let hk = DatasetStats::of(&corpus);
    let synthetic = std_corpus(20_000);
    let syn = DatasetStats::of(&synthetic);
    let row = |name: &str, s: &DatasetStats| {
        vec![
            name.to_owned(),
            s.objects.to_string(),
            s.distinct_keywords.to_string(),
            format!("{:.2}", s.avg_doc),
            format!("{}..{}", s.min_doc, s.max_doc),
            format!("{:.4}x{:.4}", s.extent.0, s.extent.1),
        ]
    };
    print_table(
        "E13 — datasets",
        &["dataset", "objects", "vocab", "avg |doc|", "|doc| range", "extent"],
        &[row("HK-539 (booking.com stand-in)", &hk), row("synthetic-20k", &syn)],
    );
}

// Silence the "unused" lint for engines only exercised in some configs.
#[allow(dead_code)]
fn _typecheck_helpers(corpus: yask_index::Corpus) {
    let _ = PlainRTree::bulk_load(corpus, RTreeParams::default());
    let _ = Weights::balanced();
}
