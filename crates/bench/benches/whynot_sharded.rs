//! E10 — the why-not fan-out: keyword + preference refinement latency
//! across shard counts, cold and warm.
//!
//! Measures the executor's two refinement models at 1/2/4/8 shards over
//! the standard clustered corpus. `shards = 1` is the retained
//! single-tree path; the sharded rows exercise the per-shard fan-out
//! (per-shard segment sets for preference, the shared candidate skeleton
//! with cross-shard abort for keywords). Cold disables the answer cache;
//! warm pre-populates it with the whole workload. Results land in
//! `BENCH_whynot.json` so CI archives the perf trajectory.
//!
//! **Single-core caveat** (same as BENCH_exec.json / BENCH_ingest.json):
//! on a one-core bench host the fan-out can only add scatter overhead —
//! the shard rows measure the *cost ceiling* of the parallel machinery,
//! not the speedup; re-measure on multi-core before tuning the default
//! shard count. The memory win is independent of core count: the global
//! tree is gone at every K.
//!
//! Run with: `cargo bench --bench whynot_sharded` (append `-- --smoke`
//! for the CI short-iteration mode; `YASK_BENCH_OUT` overrides the
//! artifact path).

use std::time::Instant;

use yask_bench::{fmt_us, print_table, std_corpus};
use yask_exec::{ExecConfig, Executor};
use yask_geo::Point;
use yask_index::ObjectId;
use yask_obs::HistogramSnapshot;
use yask_query::{topk_scan, Query, Weights};
use yask_server::Json;
use yask_text::KeywordSet;
use yask_util::{Summary, Xoshiro256};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const LAMBDA: f64 = 0.5;

/// Why-not cases: a query plus one genuinely missing object each.
fn workload(exec: &Executor, n_cases: usize, seed: u64) -> Vec<(Query, Vec<ObjectId>)> {
    let corpus = exec.corpus();
    let params = exec.engine().score_params();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_cases);
    while out.len() < n_cases {
        let q = Query::with_weights(
            Point::new(rng.next_f64(), rng.next_f64()),
            KeywordSet::from_raw((0..2 + rng.below(2)).map(|_| rng.below(5_000) as u32)),
            10,
            Weights::from_ws(rng.range_f64(0.3, 0.7)),
        );
        // The object a handful of ranks past k is the classic why-not case.
        let all = topk_scan(&corpus, &params, &q.with_k(q.k + 8));
        if all.len() > q.k + 4 {
            let missing = vec![all[q.k + 4].id];
            out.push((q, missing));
        }
    }
    out
}

fn measure(
    reps: usize,
    cases: &[(Query, Vec<ObjectId>)],
    mut f: impl FnMut(&Query, &[ObjectId]),
) -> Summary {
    let mut s = Summary::new();
    for i in 0..reps {
        let (q, missing) = &cases[i % cases.len()];
        let t0 = Instant::now();
        f(q, missing);
        s.record_duration(t0.elapsed());
    }
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, cases_n, reps) = if smoke { (4_000, 12, 24) } else { (20_000, 32, 120) };
    let corpus = std_corpus(n);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<Json> = Vec::new();
    // `hist` is the executor's per-module why-not latency histogram (the
    // series `/metrics` exports as yask_whynot_latency_seconds). It only
    // samples computed runs, so warm (cache-hit) rows pass None.
    let mut record = |name: String,
                      shards: usize,
                      model: &str,
                      mode: &str,
                      s: &mut Summary,
                      index_bytes: usize,
                      hist: Option<&HistogramSnapshot>| {
        let (mean, p95, reps) = (s.mean(), s.percentile(95.0), s.len());
        let quantiles = hist.map(|h| (h.p50() as f64 / 1_000.0, h.p99() as f64 / 1_000.0));
        rows.push(vec![
            name.clone(),
            fmt_us(mean),
            fmt_us(p95),
            quantiles.map_or_else(|| "-".into(), |(p50, _)| fmt_us(p50)),
            quantiles.map_or_else(|| "-".into(), |(_, p99)| fmt_us(p99)),
            reps.to_string(),
        ]);
        let mut fields = vec![
            ("name", Json::str(name)),
            ("shards", Json::Num(shards as f64)),
            ("model", Json::str(model)),
            ("mode", Json::str(mode)),
            ("mean_us", Json::Num(mean)),
            ("p95_us", Json::Num(p95)),
            ("reps", Json::Num(reps as f64)),
            ("index_bytes", Json::Num(index_bytes as f64)),
        ];
        if let Some((p50, p99)) = quantiles {
            fields.push(("hist_p50_us", Json::Num(p50)));
            fields.push(("hist_p99_us", Json::Num(p99)));
        }
        results.push(Json::obj(fields));
    };

    for shards in SHARD_COUNTS {
        // Cold: answer cache off, every request is a full computation.
        let cold = Executor::new(
            corpus.clone(),
            ExecConfig {
                shards,
                workers: shards,
                topk_cache: 0,
                answer_cache: 0,
                ..ExecConfig::default()
            },
        );
        let index_bytes = cold.stats().index_bytes;
        let cases = workload(&cold, cases_n, 11);
        let mut kw = measure(reps, &cases, |q, m| {
            std::hint::black_box(cold.refine_keywords(q, m, LAMBDA).ok());
        });
        let kw_hist = cold.stats().whynot_hists.keyword;
        record(
            format!("keyword/shards={shards}/cold"),
            shards,
            "keyword",
            "cold",
            &mut kw,
            index_bytes,
            Some(&kw_hist),
        );
        let mut pref = measure(reps, &cases, |q, m| {
            std::hint::black_box(cold.refine_preference(q, m, LAMBDA).ok());
        });
        let pref_hist = cold.stats().whynot_hists.preference;
        record(
            format!("preference/shards={shards}/cold"),
            shards,
            "preference",
            "cold",
            &mut pref,
            index_bytes,
            Some(&pref_hist),
        );

        // Warm: answer cache on and pre-populated with the workload.
        let warm_exec = Executor::new(
            corpus.clone(),
            ExecConfig {
                shards,
                workers: shards,
                topk_cache: 0,
                answer_cache: 1024,
                ..ExecConfig::default()
            },
        );
        for (q, m) in &cases {
            let _ = warm_exec.refine_keywords(q, m, LAMBDA);
            let _ = warm_exec.refine_preference(q, m, LAMBDA);
        }
        let mut kw_warm = measure(reps, &cases, |q, m| {
            std::hint::black_box(warm_exec.refine_keywords(q, m, LAMBDA).ok());
        });
        record(
            format!("keyword/shards={shards}/warm"),
            shards,
            "keyword",
            "warm",
            &mut kw_warm,
            index_bytes,
            None,
        );
        let mut pref_warm = measure(reps, &cases, |q, m| {
            std::hint::black_box(warm_exec.refine_preference(q, m, LAMBDA).ok());
        });
        record(
            format!("preference/shards={shards}/warm"),
            shards,
            "preference",
            "warm",
            &mut pref_warm,
            index_bytes,
            None,
        );
    }

    print_table(
        &format!("E10 why-not sharded fan-out (n = {n}, k = 10, λ = {LAMBDA})"),
        &["bench", "mean", "p95", "hist p50", "hist p99", "reps"],
        &rows,
    );

    // Default to the workspace root regardless of cargo's bench CWD.
    let out = std::env::var("YASK_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_whynot.json", env!("CARGO_MANIFEST_DIR")));
    let doc = Json::obj([
        ("experiment", Json::str("whynot_sharded_fanout")),
        ("host", yask_bench::host_info()),
        ("corpus", Json::Num(n as f64)),
        ("k", Json::Num(10.0)),
        ("lambda", Json::Num(LAMBDA)),
        ("reps", Json::Num(reps as f64)),
        ("smoke", Json::Bool(smoke)),
        (
            "note",
            Json::str(
                "single-core bench host: sharded rows measure fan-out overhead, not speedup; \
                 re-measure on multi-core before tuning the default shard count. index_bytes \
                 shows the memory side: the shard trees are the whole index (no global tree).",
            ),
        ),
        ("results", Json::Arr(results)),
    ]);
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    println!("\nwrote {out}");
}
