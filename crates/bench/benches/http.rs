//! E13 — connection scaling through the readiness loop, and out-of-core
//! shard serving through the buffer pool.
//!
//! Part 1 measures end-to-end HTTP query latency on one busy keep-alive
//! connection while 64 / 256 / 1024 *idle* keep-alive connections stay
//! parked on the same server. Under the readiness loop an idle
//! connection costs one registered fd and a buffer — not a worker
//! thread — so the busy connection's p99 must stay flat as the idle herd
//! grows. Each row records mean/p95/p99 over the measured requests.
//!
//! Part 2 prices out-of-core serving: cold top-k latency on an executor
//! whose shard trees are paged through the buffer pool at resident
//! budgets of 100% / 50% / 25% of the per-tree arena size, against the
//! fully resident executor — with the answers verified identical on
//! every measured query, and the pager's chunk hit/miss/eviction
//! counters recorded per row.
//!
//! Results land in `BENCH_http.json` (host-stamped like every artifact)
//! so CI can archive the connection-scaling trajectory.
//!
//! Run with: `cargo bench --bench http` (append `-- --smoke` for the CI
//! short-iteration mode; `YASK_BENCH_OUT` overrides the artifact path).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use yask_bench::{fmt_us, host_info, print_table, std_corpus};
use yask_exec::{ExecConfig, Executor};
use yask_geo::Point;
use yask_query::{Query, RankedObject};
use yask_server::{HttpServer, Json, YaskService};
use yask_text::KeywordSet;
use yask_util::{Summary, Xoshiro256};

const CONN_COUNTS: [usize; 3] = [64, 256, 1024];
const BUDGET_PCTS: [u32; 3] = [100, 50, 25];

/// Reads one full HTTP response (header + content-length body) off a
/// kept-alive connection, using `buf` as the carry-over byte buffer.
fn read_response(s: &mut TcpStream, buf: &mut Vec<u8>) {
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(h) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..h]).to_lowercase();
            let cl: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("content-length:"))
                .and_then(|v| v.trim().parse().ok())
                .expect("response carries content-length");
            let total = h + 4 + cl;
            if buf.len() >= total {
                assert!(buf.starts_with(b"HTTP/1.1 200"), "bad response: {head}");
                buf.drain(..total);
                return;
            }
        }
        let n = s.read(&mut chunk).expect("read response");
        assert!(n > 0, "server closed the connection mid-response");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Opens a keep-alive connection and completes one `GET /health` on it,
/// so the server has it registered and parked in the reading state.
fn idle_conn(addr: SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).expect("connect idle");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(b"GET /health HTTP/1.1\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    read_response(&mut s, &mut buf);
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<Json> = Vec::new();

    // -- Part 1: idle keep-alive connection scaling ----------------------
    let reps = if smoke { 60 } else { 400 };
    let query_req = {
        let body = Json::obj([
            ("x", Json::Num(114.17)),
            ("y", Json::Num(22.30)),
            ("keywords", Json::Arr(vec![Json::str("clean"), Json::str("wifi")])),
            ("k", Json::Num(3.0)),
        ])
        .to_string();
        format!(
            "POST /query HTTP/1.1\r\ncontent-length: {}\r\ncontent-type: application/json\r\n\r\n{}",
            body.len(),
            body
        )
    };
    for conns in CONN_COUNTS {
        let service = Arc::new(YaskService::hk_demo());
        let server = HttpServer::spawn(0, 4, service.into_handler()).expect("bind");
        let addr = server.addr();
        // The idle herd: established keep-alive connections that send
        // nothing while the measurement runs.
        let herd: Vec<TcpStream> = (0..conns).map(|_| idle_conn(addr)).collect();

        let connect_busy = || {
            let s = TcpStream::connect(addr).expect("connect busy");
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            s
        };
        let mut busy = connect_busy();
        let mut buf = Vec::new();
        let mut s = Summary::new();
        for i in 0..reps {
            // Stay under the server's per-connection request cap
            // (`MAX_REQUESTS_PER_CONNECTION` = 256): roll the busy
            // connection over between timed requests.
            if i > 0 && i % 200 == 0 {
                busy = connect_busy();
                buf.clear();
            }
            let t0 = Instant::now();
            busy.write_all(query_req.as_bytes()).unwrap();
            read_response(&mut busy, &mut buf);
            s.record_duration(t0.elapsed());
        }
        let (mean, p95, p99) = (s.mean(), s.percentile(95.0), s.percentile(99.0));
        let name = format!("http/query/idle_conns={conns}");
        rows.push(vec![name.clone(), fmt_us(mean), fmt_us(p95), fmt_us(p99), reps.to_string()]);
        results.push(Json::obj([
            ("name", Json::str(name)),
            ("idle_conns", Json::Num(conns as f64)),
            ("mean_us", Json::Num(mean)),
            ("p95_us", Json::Num(p95)),
            ("p99_us", Json::Num(p99)),
            ("reps", Json::Num(reps as f64)),
        ]));
        drop(busy);
        drop(herd);
        drop(server);
    }

    // -- Part 2: out-of-core cold top-k through the buffer pool ----------
    let (n, oreps) = if smoke { (4_000, 40) } else { (20_000, 200) };
    let corpus = std_corpus(n);
    let cold = |budget: Option<usize>| {
        Executor::new(
            corpus.clone(),
            ExecConfig {
                resident_budget: budget,
                topk_cache: 0,
                answer_cache: 0,
                ..ExecConfig::default()
            },
        )
    };
    let mut rng = Xoshiro256::seed_from_u64(7);
    let queries: Vec<Query> = (0..64)
        .map(|_| {
            Query::new(
                Point::new(rng.next_f64(), rng.next_f64()),
                KeywordSet::from_raw((0..2 + rng.below(3)).map(|_| rng.below(5_000) as u32)),
                10,
            )
        })
        .collect();
    let measure = |exec: &Executor, answers: &mut Vec<Vec<RankedObject>>| -> Summary {
        let mut s = Summary::new();
        answers.clear();
        for i in 0..oreps {
            let q = &queries[i % queries.len()];
            let t0 = Instant::now();
            let r = exec.top_k(q);
            s.record_duration(t0.elapsed());
            if i < queries.len() {
                answers.push(r);
            }
        }
        s
    };

    let resident = cold(None);
    // Per-tree budget base: the largest shard arena, so "100%" means
    // every tree's decoded chunks fit entirely.
    let arena_max = resident
        .stats()
        .per_shard
        .iter()
        .map(|p| p.arena_bytes)
        .max()
        .unwrap_or(0)
        .max(1);
    let mut want = Vec::new();
    let mut rs = measure(&resident, &mut want);
    let (mean, p95, p99) = (rs.mean(), rs.percentile(95.0), rs.percentile(99.0));
    rows.push(vec![
        "oocore/topk/resident".to_owned(),
        fmt_us(mean),
        fmt_us(p95),
        fmt_us(p99),
        oreps.to_string(),
    ]);
    results.push(Json::obj([
        ("name", Json::str("oocore/topk/resident")),
        ("arena_bytes", Json::Num(arena_max as f64)),
        ("mean_us", Json::Num(mean)),
        ("p95_us", Json::Num(p95)),
        ("p99_us", Json::Num(p99)),
        ("reps", Json::Num(oreps as f64)),
    ]));
    for pct in BUDGET_PCTS {
        let budget = (arena_max as u64 * pct as u64 / 100).max(1) as usize;
        let paged = cold(Some(budget));
        let mut got = Vec::new();
        let mut s = measure(&paged, &mut got);
        // The oracle ride-along: paging must never change an answer.
        assert_eq!(want, got, "paged answers diverged at budget {pct}%");
        let p = paged.stats().pager.expect("paged executor exposes pager stats");
        let (mean, p95, p99) = (s.mean(), s.percentile(95.0), s.percentile(99.0));
        let name = format!("oocore/topk/budget={pct}%");
        rows.push(vec![name.clone(), fmt_us(mean), fmt_us(p95), fmt_us(p99), oreps.to_string()]);
        results.push(Json::obj([
            ("name", Json::str(name)),
            ("budget_pct", Json::Num(pct as f64)),
            ("budget_bytes", Json::Num(budget as f64)),
            ("mean_us", Json::Num(mean)),
            ("p95_us", Json::Num(p95)),
            ("p99_us", Json::Num(p99)),
            ("chunk_hits", Json::Num(p.chunk_hits as f64)),
            ("chunk_misses", Json::Num(p.chunk_misses as f64)),
            ("chunk_evictions", Json::Num(p.chunk_evictions as f64)),
            ("resident_chunks", Json::Num(p.resident_chunks as f64)),
            ("chunk_count", Json::Num(p.chunk_count as f64)),
            ("reps", Json::Num(oreps as f64)),
        ]));
    }

    print_table(
        &format!("E13 http connection scaling + out-of-core (n = {n}, k = 10)"),
        &["bench", "mean", "p95", "p99", "reps"],
        &rows,
    );

    let out = std::env::var("YASK_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_http.json", env!("CARGO_MANIFEST_DIR")));
    let doc = Json::obj([
        ("experiment", Json::str("http_conn_scaling_out_of_core")),
        ("host", host_info()),
        ("corpus", Json::Num(n as f64)),
        ("k", Json::Num(10.0)),
        ("smoke", Json::Bool(smoke)),
        ("results", Json::Arr(results)),
    ]);
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    println!("\nwrote {out}");
}
