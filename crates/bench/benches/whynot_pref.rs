//! Criterion bench for experiment E6: preference adjustment — rank-update
//! sweep vs range-filtered sweep vs the naive re-rank baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use yask_bench::std_corpus;
use yask_core::pref::refine_preference_filtered;
use yask_core::{refine_preference, refine_preference_naive};
use yask_data::{gen_queries, pick_missing};
use yask_query::ScoreParams;

fn bench_pref(c: &mut Criterion) {
    // Naive is O(candidates × |M| × n): keep the corpus small enough that
    // all three variants fit one bench run.
    let corpus = std_corpus(2_000);
    let params = ScoreParams::new(corpus.space());
    let q = &gen_queries(&corpus, 1, 3, 10, 19)[0];

    let mut g = c.benchmark_group("e6_pref");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for m_count in [1usize, 4] {
        let missing = pick_missing(&corpus, &params, q, m_count, 5);
        g.bench_with_input(BenchmarkId::new("sweep", m_count), &m_count, |b, _| {
            b.iter(|| black_box(refine_preference(&corpus, &params, q, &missing, 0.5).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("filtered", m_count), &m_count, |b, _| {
            b.iter(|| {
                black_box(refine_preference_filtered(&corpus, &params, q, &missing, 0.5).unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("naive", m_count), &m_count, |b, _| {
            b.iter(|| {
                black_box(refine_preference_naive(&corpus, &params, q, &missing, 0.5).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pref);
criterion_main!(benches);
