//! Criterion bench for experiment E4: query latency scalability in N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use yask_bench::std_corpus;
use yask_data::gen_selective_queries;
use yask_index::{RTreeParams, SetRTree};
use yask_query::{topk_tree, ScoreParams};

fn bench_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_scale");
    g.sample_size(15).measurement_time(Duration::from_secs(3));
    for n in [5_000usize, 20_000, 50_000] {
        let corpus = std_corpus(n);
        let params = ScoreParams::new(corpus.space());
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::default());
        let queries = gen_selective_queries(&corpus, 8, 3, 10, 13);
        g.throughput(Throughput::Elements(queries.len() as u64));
        g.bench_with_input(BenchmarkId::new("query", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(topk_tree(&tree, &params, q));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
