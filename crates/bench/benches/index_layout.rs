//! Node-layout microbench: cold traversal cost over the chunked arena.
//!
//! The persistent arena keeps nodes in 256-slot chunks allocated level
//! by level at bulk-load time, so a cold root-to-leaf walk touches a
//! handful of dense allocations instead of pointer-chased heap nodes.
//! This microbench puts a number on the layout: cold range scans and
//! nearest-neighbour searches over (a) a freshly bulk-loaded tree —
//! densely packed chunks — and (b) the same tree after a heavy
//! insert/delete churn — fragmented arena with freed slack and
//! path-copied chunks. The spread between the two rows is the layout's
//! cost of fragmentation; both are trend lines, same single-core caveat
//! as every BENCH artifact.
//!
//! Run with: `cargo bench --bench index_layout` (append `-- --smoke`
//! for CI short-iteration mode).

use std::time::Instant;

use yask_bench::{fmt_us, print_table, std_corpus};
use yask_geo::{Point, Rect};
use yask_index::{KcRTree, RTreeParams};
use yask_util::{Summary, Xoshiro256};

fn scan_workload(reps: usize, seed: u64) -> Vec<(Rect, Point)> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..reps)
        .map(|_| {
            let cx = rng.next_f64();
            let cy = rng.next_f64();
            let half = 0.02 + 0.08 * rng.next_f64();
            (
                Rect::from_coords(cx - half, cy - half, cx + half, cy + half),
                Point::new(cx, cy),
            )
        })
        .collect()
}

fn measure(tree: &KcRTree, probes: &[(Rect, Point)]) -> (Summary, Summary) {
    let mut range_lat = Summary::new();
    let mut nn_lat = Summary::new();
    for (rect, p) in probes {
        let t0 = Instant::now();
        std::hint::black_box(tree.range(rect));
        range_lat.record_duration(t0.elapsed());
        let t0 = Instant::now();
        std::hint::black_box(tree.nearest(p, 10));
        nn_lat.record_duration(t0.elapsed());
    }
    (range_lat, nn_lat)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, probes_n, churn) = if smoke {
        (vec![5_000usize], 60usize, 400usize)
    } else {
        (vec![20_000, 50_000], 400, 4_000)
    };
    let probes = scan_workload(probes_n, 17);
    let params = RTreeParams::default();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for n in sizes {
        let corpus = std_corpus(n);
        let tree = KcRTree::bulk_load(corpus.clone(), params);
        let (range_lat, nn_lat) = measure(&tree, &probes);
        rows.push(vec![
            format!("bulk/n={n}"),
            fmt_us(range_lat.mean()),
            fmt_us(nn_lat.mean()),
            format!("{}", tree.arena_chunk_count()),
            format!("{}", tree.free_slots()),
        ]);

        // Churn: alternating single-op insert/delete epochs fragment the
        // arena (freed slots, path-copied chunks) without changing n.
        let mut rng = Xoshiro256::seed_from_u64(29);
        let (mut c, mut t) = (corpus, tree);
        for i in 0..churn {
            let live = c.live_ids();
            let victim = live[rng.below(live.len())];
            let (nc, new_ids) = c.with_updates(
                [(
                    Point::new(rng.next_f64(), rng.next_f64()),
                    yask_text::KeywordSet::from_raw([rng.below(5_000) as u32]),
                    format!("churn-{i}"),
                )],
                &[victim],
            );
            let (nt, _) = t.with_updates(nc.clone(), &new_ids, &[victim]);
            (c, t) = (nc, nt);
        }
        let (range_lat, nn_lat) = measure(&t, &probes);
        rows.push(vec![
            format!("churned/n={n}"),
            fmt_us(range_lat.mean()),
            fmt_us(nn_lat.mean()),
            format!("{}", t.arena_chunk_count()),
            format!("{}", t.free_slots()),
        ]);
    }

    print_table(
        &format!(
            "index node-layout microbench (range + 10-NN cold scans, {probes_n} probes, churn = {churn} epochs)"
        ),
        &["bench", "range", "10-NN", "chunks", "free slots"],
        &rows,
    );
}
