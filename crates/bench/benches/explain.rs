//! Criterion bench for experiment E11: explanation generation on the
//! HK-539 demo dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use yask_core::explain;
use yask_data::hk_hotels;
use yask_geo::Point;
use yask_index::ObjectId;
use yask_query::{Query, ScoreParams};
use yask_text::KeywordSet;

fn bench_explain(c: &mut Criterion) {
    let (corpus, _) = hk_hotels();
    let params = ScoreParams::new(corpus.space());
    let q = Query::new(Point::new(114.172, 22.297), KeywordSet::from_raw([1, 2]), 3);

    let mut g = c.benchmark_group("e11_explain");
    g.sample_size(30).measurement_time(Duration::from_secs(3));
    g.bench_function("single_object", |b| {
        b.iter(|| black_box(explain(&corpus, &params, &q, &[ObjectId(100)]).unwrap()))
    });
    let many: Vec<ObjectId> = (0..10).map(|i| ObjectId(i * 37)).collect();
    g.bench_function("ten_objects", |b| {
        b.iter(|| black_box(explain(&corpus, &params, &q, &many).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_explain);
criterion_main!(benches);
