//! Criterion benches for experiments E2 (top-k vs k), E3 (vs |q.doc|)
//! and E5 (engine comparison). The `experiments` binary prints the
//! corresponding paper-style tables; these benches track regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use yask_bench::std_corpus;
use yask_data::gen_selective_queries;
use yask_index::{IrTree, KcRTree, RTreeParams, SetRTree};
use yask_query::{topk_scan, topk_tree, ScoreParams};

const N: usize = 20_000;

fn bench_topk_vs_k(c: &mut Criterion) {
    let corpus = std_corpus(N);
    let params = ScoreParams::new(corpus.space());
    let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::default());
    let queries = gen_selective_queries(&corpus, 8, 3, 1, 7);

    let mut g = c.benchmark_group("e2_topk_vs_k");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    for k in [1usize, 10, 50] {
        g.bench_with_input(BenchmarkId::new("setr", k), &k, |b, &k| {
            b.iter(|| {
                for q in &queries {
                    black_box(topk_tree(&tree, &params, &q.with_k(k)));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("scan", k), &k, |b, &k| {
            b.iter(|| {
                for q in &queries {
                    black_box(topk_scan(&corpus, &params, &q.with_k(k)));
                }
            })
        });
    }
    g.finish();
}

fn bench_topk_vs_doc(c: &mut Criterion) {
    let corpus = std_corpus(N);
    let params = ScoreParams::new(corpus.space());
    let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::default());

    let mut g = c.benchmark_group("e3_topk_vs_doc");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    for doc_len in [1usize, 3, 5] {
        let queries = gen_selective_queries(&corpus, 8, doc_len, 10, 11);
        g.bench_with_input(BenchmarkId::new("setr", doc_len), &doc_len, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(topk_tree(&tree, &params, q));
                }
            })
        });
    }
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    let corpus = std_corpus(N);
    let params = ScoreParams::new(corpus.space());
    let tp = RTreeParams::default();
    let set = SetRTree::bulk_load(corpus.clone(), tp);
    let kc = KcRTree::bulk_load(corpus.clone(), tp);
    let ir = IrTree::bulk_load(corpus.clone(), tp);
    let queries = gen_selective_queries(&corpus, 8, 3, 10, 17);

    let mut g = c.benchmark_group("e5_engines");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    g.bench_function("setr", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(topk_tree(&set, &params, q));
            }
        })
    });
    g.bench_function("kcr", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(topk_tree(&kc, &params, q));
            }
        })
    });
    g.bench_function("ir", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(topk_tree(&ir, &params, q));
            }
        })
    });
    g.bench_function("scan", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(topk_scan(&corpus, &params, q));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_topk_vs_k, bench_topk_vs_doc, bench_engines);
criterion_main!(benches);
