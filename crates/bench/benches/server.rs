//! Criterion bench for experiment E12: end-to-end HTTP query latency —
//! the "query response time" the demo displays in Panel 5.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use yask_server::{http_post, HttpServer, Json, YaskService};

fn bench_server(c: &mut Criterion) {
    let service = Arc::new(YaskService::hk_demo());
    let server = HttpServer::spawn(0, 4, service.into_handler()).expect("bind");
    let addr = server.addr();
    let payload = Json::obj([
        ("x", Json::Num(114.172)),
        ("y", Json::Num(22.297)),
        (
            "keywords",
            Json::Arr(vec![Json::str("clean"), Json::str("wifi")]),
        ),
        ("k", Json::Num(3.0)),
    ]);

    let mut g = c.benchmark_group("e12_server");
    g.sample_size(30).measurement_time(Duration::from_secs(3));
    g.bench_function("query_roundtrip", |b| {
        b.iter(|| {
            let (status, body) = http_post(addr, "/query", &payload).unwrap();
            assert_eq!(status, 200);
            black_box(body);
        })
    });
    g.finish();
    drop(server);
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
