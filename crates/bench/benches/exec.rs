//! E9 — the execution subsystem: scatter-gather shard scaling and answer
//! cache effectiveness.
//!
//! Measures executor top-k latency at 1/2/4/8 shards, cold (caches off)
//! and warm (cache pre-populated), over the standard clustered corpus.
//! Besides the console table, results land in `BENCH_exec.json` so CI can
//! archive the perf trajectory across PRs.
//!
//! Run with: `cargo bench --bench exec` (append `-- --smoke` for the CI
//! short-iteration mode; `YASK_BENCH_OUT` overrides the artifact path).

use std::time::Instant;

use yask_bench::{fmt_us, print_table, std_corpus};
use yask_core::YaskConfig;
use yask_exec::{ExecConfig, Executor};
use yask_geo::Point;
use yask_query::{Query, Weights};
use yask_server::Json;
use yask_text::KeywordSet;
use yask_util::{Summary, Xoshiro256};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn workload(n_queries: usize, seed: u64) -> Vec<Query> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n_queries)
        .map(|_| {
            Query::with_weights(
                Point::new(rng.next_f64(), rng.next_f64()),
                KeywordSet::from_raw((0..2 + rng.below(3)).map(|_| rng.below(5_000) as u32)),
                10,
                Weights::from_ws(rng.range_f64(0.2, 0.8)),
            )
        })
        .collect()
}

/// Times `reps` queries (round-robin over the workload) through `f`.
fn measure(reps: usize, queries: &[Query], mut f: impl FnMut(&Query)) -> Summary {
    let mut s = Summary::new();
    for i in 0..reps {
        let q = &queries[i % queries.len()];
        let t0 = Instant::now();
        f(q);
        s.record_duration(t0.elapsed());
    }
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, reps) = if smoke { (4_000, 60) } else { (30_000, 400) };
    let corpus = std_corpus(n);
    let queries = workload(64, 7);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<Json> = Vec::new();
    let mut record = |name: String, shards: usize, mode: &str, s: &mut Summary| {
        let (mean, p95, reps) = (s.mean(), s.percentile(95.0), s.len());
        rows.push(vec![name.clone(), fmt_us(mean), fmt_us(p95), reps.to_string()]);
        results.push(Json::obj([
            ("name", Json::str(name)),
            ("shards", Json::Num(shards as f64)),
            ("mode", Json::str(mode)),
            ("mean_us", Json::Num(mean)),
            ("p95_us", Json::Num(p95)),
            ("reps", Json::Num(reps as f64)),
        ]));
    };

    for shards in SHARD_COUNTS {
        // Cold: caches disabled, every query is a full computation.
        let cold_exec = Executor::new(
            corpus.clone(),
            ExecConfig {
                shards,
                workers: shards,
                topk_cache: 0,
                answer_cache: 0,
                yask: YaskConfig::default(),
                ..ExecConfig::default()
            },
        );
        let mut cold = measure(reps, &queries, |q| {
            std::hint::black_box(cold_exec.top_k(q));
        });
        record(format!("topk/shards={shards}/cold"), shards, "cold", &mut cold);

        // Warm: cache enabled and pre-populated with the whole workload.
        let warm_exec = Executor::new(
            corpus.clone(),
            ExecConfig {
                shards,
                workers: shards,
                topk_cache: 1024,
                answer_cache: 0,
                yask: YaskConfig::default(),
                ..ExecConfig::default()
            },
        );
        for q in &queries {
            warm_exec.top_k(q);
        }
        let mut warm = measure(reps, &queries, |q| {
            std::hint::black_box(warm_exec.top_k(q));
        });
        record(format!("topk/shards={shards}/warm"), shards, "warm", &mut warm);
    }

    print_table(
        &format!("E9 exec scatter-gather (n = {n}, k = 10)"),
        &["bench", "mean", "p95", "reps"],
        &rows,
    );

    // Default to the workspace root regardless of cargo's bench CWD.
    let out = std::env::var("YASK_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_exec.json", env!("CARGO_MANIFEST_DIR")));
    let doc = Json::obj([
        ("experiment", Json::str("exec_scatter_gather")),
        ("corpus", Json::Num(n as f64)),
        ("k", Json::Num(10.0)),
        ("reps", Json::Num(reps as f64)),
        ("smoke", Json::Bool(smoke)),
        ("results", Json::Arr(results)),
    ]);
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    println!("\nwrote {out}");
}
