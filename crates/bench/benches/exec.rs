//! E9 — the execution subsystem: scatter-gather shard scaling and answer
//! cache effectiveness.
//!
//! Measures executor top-k latency at 1/2/4/8 shards, cold (caches off)
//! and warm (cache pre-populated), over the standard clustered corpus.
//! Every row carries wall-clock mean/p95 from the harness plus p50/p99
//! read back from the executor's own `yask_obs` latency histograms — the
//! numbers `/metrics` serves, cross-checked against the harness here.
//! A final pair of rows prices span tracing: the same cold 4-shard run
//! untraced vs. with a full per-query trace recorded into a `TraceLog`
//! (the server's ambient-tracing path); `trace_overhead_pct` must stay
//! small (budget: < 5 % on the mean). A second pair prices the workload
//! observatory (sliding windows + heat map + keyword sketch) the same
//! way: `obs_overhead_pct`, budget < 3 %. Besides the console table,
//! results land in `BENCH_exec.json` so CI can archive the perf
//! trajectory (`bench_check` gates regressions against the committed
//! artifact).
//!
//! Run with: `cargo bench --bench exec` (append `-- --smoke` for the CI
//! short-iteration mode; `YASK_BENCH_OUT` overrides the artifact path).

use std::time::Instant;

use yask_bench::{fmt_us, print_table, std_corpus};
use yask_core::YaskConfig;
use yask_exec::{ExecConfig, Executor};
use yask_geo::Point;
use yask_obs::{HistogramSnapshot, Trace, TraceLog};
use yask_query::{Query, Weights};
use yask_server::Json;
use yask_text::KeywordSet;
use yask_util::{Summary, Xoshiro256};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn workload(n_queries: usize, seed: u64) -> Vec<Query> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n_queries)
        .map(|_| {
            Query::with_weights(
                Point::new(rng.next_f64(), rng.next_f64()),
                KeywordSet::from_raw((0..2 + rng.below(3)).map(|_| rng.below(5_000) as u32)),
                10,
                Weights::from_ws(rng.range_f64(0.2, 0.8)),
            )
        })
        .collect()
}

/// Times `reps` queries (round-robin over the workload) through `f`.
fn measure(reps: usize, queries: &[Query], mut f: impl FnMut(&Query)) -> Summary {
    let mut s = Summary::new();
    for i in 0..reps {
        let q = &queries[i % queries.len()];
        let t0 = Instant::now();
        f(q);
        s.record_duration(t0.elapsed());
    }
    s
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, reps) = if smoke { (4_000, 60) } else { (30_000, 400) };
    let corpus = std_corpus(n);
    let queries = workload(64, 7);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<Json> = Vec::new();
    // `s` is the harness wall clock; `hist` is the executor's own latency
    // histogram for the measured path (what `/metrics` exports), so the
    // artifact records both views of the same run.
    let mut record = |name: String, shards: usize, mode: &str, s: &mut Summary, hist: &HistogramSnapshot| {
        let (mean, p95, reps) = (s.mean(), s.percentile(95.0), s.len());
        let (p50, p99) = (hist.p50() as f64 / 1_000.0, hist.p99() as f64 / 1_000.0);
        rows.push(vec![
            name.clone(),
            fmt_us(mean),
            fmt_us(p95),
            fmt_us(p50),
            fmt_us(p99),
            reps.to_string(),
        ]);
        results.push(Json::obj([
            ("name", Json::str(name)),
            ("shards", Json::Num(shards as f64)),
            ("mode", Json::str(mode)),
            ("mean_us", Json::Num(mean)),
            ("p95_us", Json::Num(p95)),
            ("hist_p50_us", Json::Num(p50)),
            ("hist_p99_us", Json::Num(p99)),
            ("hist_count", Json::Num(hist.count as f64)),
            ("reps", Json::Num(reps as f64)),
        ]));
    };

    for shards in SHARD_COUNTS {
        // Cold: caches disabled, every query is a full computation.
        let cold_exec = Executor::new(
            corpus.clone(),
            ExecConfig {
                shards,
                workers: shards,
                topk_cache: 0,
                answer_cache: 0,
                yask: YaskConfig::default(),
                ..ExecConfig::default()
            },
        );
        let mut cold = measure(reps, &queries, |q| {
            std::hint::black_box(cold_exec.top_k(q));
        });
        let cold_hist = cold_exec.stats().topk_hist;
        record(format!("topk/shards={shards}/cold"), shards, "cold", &mut cold, &cold_hist);

        // Warm: cache enabled and pre-populated with the whole workload.
        let warm_exec = Executor::new(
            corpus.clone(),
            ExecConfig {
                shards,
                workers: shards,
                topk_cache: 1024,
                answer_cache: 0,
                yask: YaskConfig::default(),
                ..ExecConfig::default()
            },
        );
        for q in &queries {
            warm_exec.top_k(q);
        }
        let mut warm = measure(reps, &queries, |q| {
            std::hint::black_box(warm_exec.top_k(q));
        });
        // Warm queries are cache hits: the hit histogram is their record.
        let warm_hist = warm_exec.stats().topk_hit_hist;
        record(format!("topk/shards={shards}/warm"), shards, "warm", &mut warm, &warm_hist);
    }

    // Tracing overhead at the default shard count: a fresh executor per
    // mode keeps the histograms per-run. The traced side builds a span
    // tree per query and records it into a live TraceLog, exactly like a
    // server with ambient tracing on. The two modes are interleaved
    // rep-by-rep — back-to-back blocks of identical cold runs differ by
    // several percent from machine drift alone, which would swamp the
    // effect being priced — and the within-rep order alternates, because
    // both executors read the same shared corpus chunks and whichever
    // side runs second inherits a warm CPU cache.
    let overhead_config = ExecConfig {
        shards: 4,
        workers: 4,
        topk_cache: 0,
        answer_cache: 0,
        yask: YaskConfig::default(),
        ..ExecConfig::default()
    };
    let base_exec = Executor::new(corpus.clone(), overhead_config);
    let traced_exec = Executor::new(corpus.clone(), overhead_config);
    let log = TraceLog::new(256, 16);
    for q in &queries {
        std::hint::black_box(base_exec.top_k(q));
        std::hint::black_box(traced_exec.top_k(q));
    }
    // Rebuild both executors so the measured histograms exclude warmup.
    let base_exec = Executor::new(corpus.clone(), overhead_config);
    let traced_exec = Executor::new(corpus.clone(), overhead_config);
    let mut base = Summary::new();
    let mut traced = Summary::new();
    let run_base = |q: &Query, base: &mut Summary| {
        let t0 = Instant::now();
        std::hint::black_box(base_exec.compute_top_k(q));
        base.record_duration(t0.elapsed());
    };
    let run_traced = |q: &Query, traced: &mut Summary| {
        let t0 = Instant::now();
        let t = Trace::new("bench/topk");
        std::hint::black_box(traced_exec.compute_top_k_with_trace(q, &t));
        log.record(t.finish());
        traced.record_duration(t0.elapsed());
    };
    // The pair is cheap relative to the full sweep, so it gets extra
    // reps: the comparison is mean-vs-mean and the cold tail (multi-ms
    // outliers) puts the noise floor of a 400-rep mean near ±5 % — far
    // above the effect being priced.
    let overhead_reps = reps * 16;
    for i in 0..overhead_reps {
        let q = &queries[i % queries.len()];
        if i % 2 == 0 {
            run_base(q, &mut base);
            run_traced(q, &mut traced);
        } else {
            run_traced(q, &mut traced);
            run_base(q, &mut base);
        }
    }
    let base_hist = base_exec.stats().topk_hist;
    record("topk/shards=4/untraced".to_owned(), 4, "untraced", &mut base, &base_hist);
    let traced_hist = traced_exec.stats().topk_hist;
    record("topk/shards=4/traced".to_owned(), 4, "traced", &mut traced, &traced_hist);
    let trace_overhead_pct = (traced.mean() - base.mean()) / base.mean() * 100.0;

    // Workload-observatory overhead, priced the same way: the full
    // `top_k` entry path (heat map touch + keyword sketch + window
    // record per query) with the observatory off vs. on, caches
    // disabled, rep-interleaved with alternating within-rep order at the
    // same 16× reps. Budget: < 3 % on the mean.
    let obs_off_config = ExecConfig {
        shards: 4,
        workers: 4,
        topk_cache: 0,
        answer_cache: 0,
        observatory: false,
        yask: YaskConfig::default(),
        ..ExecConfig::default()
    };
    let obs_on_config = ExecConfig {
        observatory: true,
        ..obs_off_config
    };
    let off_exec = Executor::new(corpus.clone(), obs_off_config);
    let on_exec = Executor::new(corpus.clone(), obs_on_config);
    for q in &queries {
        std::hint::black_box(off_exec.top_k(q));
        std::hint::black_box(on_exec.top_k(q));
    }
    let off_exec = Executor::new(corpus.clone(), obs_off_config);
    let on_exec = Executor::new(corpus.clone(), obs_on_config);
    let mut obs_off = Summary::new();
    let mut obs_on = Summary::new();
    let run_off = |q: &Query, s: &mut Summary| {
        let t0 = Instant::now();
        std::hint::black_box(off_exec.top_k(q));
        s.record_duration(t0.elapsed());
    };
    let run_on = |q: &Query, s: &mut Summary| {
        let t0 = Instant::now();
        std::hint::black_box(on_exec.top_k(q));
        s.record_duration(t0.elapsed());
    };
    for i in 0..overhead_reps {
        let q = &queries[i % queries.len()];
        if i % 2 == 0 {
            run_off(q, &mut obs_off);
            run_on(q, &mut obs_on);
        } else {
            run_on(q, &mut obs_on);
            run_off(q, &mut obs_off);
        }
    }
    let off_hist = off_exec.stats().topk_hist;
    record("topk/shards=4/obs_off".to_owned(), 4, "obs_off", &mut obs_off, &off_hist);
    let on_hist = on_exec.stats().topk_hist;
    record("topk/shards=4/obs_on".to_owned(), 4, "obs_on", &mut obs_on, &on_hist);
    let obs_overhead_pct = (obs_on.mean() - obs_off.mean()) / obs_off.mean() * 100.0;
    // Summary rows go last so the `record` closure's borrow of `rows`
    // has ended by the time they're pushed.
    for (label, pct) in [
        ("trace overhead", trace_overhead_pct),
        ("observatory overhead", obs_overhead_pct),
    ] {
        rows.push(vec![
            label.to_owned(),
            format!("{pct:+.2}%"),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }

    print_table(
        &format!("E9 exec scatter-gather (n = {n}, k = 10)"),
        &["bench", "mean", "p95", "hist p50", "hist p99", "reps"],
        &rows,
    );

    // Default to the workspace root regardless of cargo's bench CWD.
    let out = std::env::var("YASK_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_exec.json", env!("CARGO_MANIFEST_DIR")));
    let doc = Json::obj([
        ("experiment", Json::str("exec_scatter_gather")),
        ("host", yask_bench::host_info()),
        ("corpus", Json::Num(n as f64)),
        ("k", Json::Num(10.0)),
        ("reps", Json::Num(reps as f64)),
        ("smoke", Json::Bool(smoke)),
        // Mean regression of the traced 4-shard cold run vs. untraced —
        // the span-tracing budget is < 5 %.
        ("trace_overhead_pct", Json::Num(trace_overhead_pct)),
        // Mean regression with the workload observatory recording on the
        // full top_k entry path vs. off — budget is < 3 %.
        ("obs_overhead_pct", Json::Num(obs_overhead_pct)),
        ("traces_recorded", Json::Num(log.recorded() as f64)),
        ("results", Json::Arr(results)),
    ]);
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    println!("\nwrote {out}");
}
