//! Criterion bench for the index-construction side of experiment E4:
//! bulk-load cost of each augmented tree variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use yask_bench::std_corpus;
use yask_index::{IrTree, KcRTree, PlainRTree, RTreeParams, SetRTree};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_index_build");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for n in [5_000usize, 20_000] {
        let corpus = std_corpus(n);
        g.throughput(Throughput::Elements(n as u64));
        let tp = RTreeParams::default();
        g.bench_with_input(BenchmarkId::new("plain", n), &n, |b, _| {
            b.iter(|| black_box(PlainRTree::bulk_load(corpus.clone(), tp)))
        });
        g.bench_with_input(BenchmarkId::new("setr", n), &n, |b, _| {
            b.iter(|| black_box(SetRTree::bulk_load(corpus.clone(), tp)))
        });
        g.bench_with_input(BenchmarkId::new("kcr", n), &n, |b, _| {
            b.iter(|| black_box(KcRTree::bulk_load(corpus.clone(), tp)))
        });
        g.bench_with_input(BenchmarkId::new("ir", n), &n, |b, _| {
            b.iter(|| black_box(IrTree::bulk_load(corpus.clone(), tp)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
