//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **R-tree fanout** — the bound-tightness / traversal-cost trade-off
//!   (smaller nodes ⇒ tighter keyword summaries ⇒ fewer expansions, but
//!   more nodes to touch);
//! * **keyword-adaptation bound depth** — how deep the cheap bound pass
//!   descends before declaring a candidate uncertain;
//! * **top-k threshold pruning** — best-first search with vs without the
//!   running-top-k pruning (the `IncrementalSearch` path is the
//!   unpruned algorithm).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use yask_bench::std_corpus;
use yask_core::keyword::{refine_keywords_with, KeywordOptions};
use yask_data::{gen_queries, gen_selective_queries, pick_missing};
use yask_index::{KcRTree, RTreeParams, SetRTree};
use yask_query::{topk_tree, IncrementalSearch, ScoreParams};

fn bench_fanout(c: &mut Criterion) {
    let corpus = std_corpus(20_000);
    let params = ScoreParams::new(corpus.space());
    let queries = gen_selective_queries(&corpus, 8, 3, 10, 17);

    let mut g = c.benchmark_group("ablation_fanout");
    g.sample_size(15).measurement_time(Duration::from_secs(3));
    for (max, min) in [(8usize, 3usize), (16, 6), (32, 12), (64, 25)] {
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::new(max, min));
        g.bench_with_input(BenchmarkId::new("query", max), &max, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(topk_tree(&tree, &params, q));
                }
            })
        });
    }
    g.finish();
}

fn bench_bound_depth(c: &mut Criterion) {
    let corpus = std_corpus(8_000);
    let params = ScoreParams::new(corpus.space());
    let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::default());
    let q = &gen_queries(&corpus, 1, 3, 5, 23)[0];
    let missing = pick_missing(&corpus, &params, q, 1, 4);

    let mut g = c.benchmark_group("ablation_bound_depth");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for depth in [1usize, 2, 4, 8] {
        let opts = KeywordOptions {
            bound_depth: depth,
            ..KeywordOptions::default()
        };
        g.bench_with_input(BenchmarkId::new("refine", depth), &depth, |b, _| {
            b.iter(|| {
                black_box(
                    refine_keywords_with(&tree, &params, q, &missing, 0.5, opts).unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_threshold_pruning(c: &mut Criterion) {
    let corpus = std_corpus(20_000);
    let params = ScoreParams::new(corpus.space());
    let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::default());
    let queries = gen_selective_queries(&corpus, 8, 3, 10, 29);

    let mut g = c.benchmark_group("ablation_threshold_pruning");
    g.sample_size(15).measurement_time(Duration::from_secs(3));
    g.bench_function("pruned_topk", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(topk_tree(&tree, &params, q));
            }
        })
    });
    g.bench_function("unpruned_stream", |b| {
        b.iter(|| {
            for q in &queries {
                let take = q.k;
                let got: Vec<_> = IncrementalSearch::new(&tree, params, q.clone())
                    .take(take)
                    .collect();
                black_box(got);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fanout, bench_bound_depth, bench_threshold_pruning);
criterion_main!(benches);
