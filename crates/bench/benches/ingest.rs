//! E10 — the ingest subsystem: mixed read/write throughput, write-cost
//! scaling, and checkpoint/recovery.
//!
//! **Part A (mixed):** sweeps read/write ratios (100/0, 95/5, 80/20)
//! over the writable executor at 1 and 4 shards: reads are cached top-k
//! queries, writes are single-op batches through the full
//! [`yask_ingest::Ingestor`] protocol (validate → WAL append + fsync →
//! corpus version derivation → epoch publish), alternating inserts and
//! deletes so the live count stays flat. Reported per ratio: overall op
//! latency plus the separated read and write means — the interesting
//! number is how much write traffic costs the read path (epoch republish
//! = cache invalidation, so warm reads degrade as the write share
//! grows).
//!
//! **Part B (write scaling + checkpointing):** fixed single-op batches
//! against corpora of different sizes (n = 20k and n = 50k; 3k/6k in
//! smoke mode) with WAL checkpointing at a small threshold. The chunked
//! copy-on-write corpus means per-batch *corpus* bytes copied must be
//! **flat in n** — that column is the ISSUE 5 acceptance criterion — and
//! the path-copying persistent tree arena means per-batch *index* bytes
//! copied must be O(spine), i.e. roughly flat (≤ logarithmic) from
//! n = 20k to n = 50k at K = 4 — the ISSUE 6 acceptance criterion,
//! reported alongside as `index_copy_bytes_per_batch`. The restart row
//! shows recovery loading the snapshot and replaying only the
//! post-checkpoint tail.
//!
//! Results land in `BENCH_ingest.json`. The same single-core caveat as
//! `BENCH_exec.json` applies: on the one-core CI host, fan-out and
//! copy-on-write overheads show without the parallel speedup, so treat
//! the numbers as trend lines, not absolutes.
//!
//! Run with: `cargo bench --bench ingest` (append `-- --smoke` for the
//! CI short-iteration mode; `YASK_BENCH_OUT` overrides the artifact
//! path).

use std::time::Instant;

use yask_bench::{fmt_us, print_table, std_corpus};
use yask_core::YaskConfig;
use yask_exec::{ExecConfig, Executor};
use yask_geo::Point;
use yask_ingest::{checkpoint_path, CheckpointConfig, Ingestor, NewObject, Update};
use yask_query::{Query, Weights};
use yask_server::Json;
use yask_text::KeywordSet;
use yask_util::{Summary, Xoshiro256};

/// (reads, writes) per 100 ops.
const RATIOS: [(u32, u32); 3] = [(100, 0), (95, 5), (80, 20)];
const SHARD_COUNTS: [usize; 2] = [1, 4];

fn workload(n_queries: usize, seed: u64) -> Vec<Query> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n_queries)
        .map(|_| {
            Query::with_weights(
                Point::new(rng.next_f64(), rng.next_f64()),
                KeywordSet::from_raw((0..2 + rng.below(3)).map(|_| rng.below(5_000) as u32)),
                10,
                Weights::from_ws(rng.range_f64(0.2, 0.8)),
            )
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, ops) = if smoke { (3_000, 240) } else { (20_000, 2_000) };
    let corpus = std_corpus(n);
    let queries = workload(64, 7);

    let mut wal_path = std::env::temp_dir();
    wal_path.push(format!("yask-bench-ingest-{}.wal", std::process::id()));

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<Json> = Vec::new();

    for shards in SHARD_COUNTS {
        for (reads, writes) in RATIOS {
            std::fs::remove_file(&wal_path).ok();
            let ingest = Ingestor::with_wal(corpus.clone(), &wal_path).expect("wal");
            let exec = Executor::new(
                corpus.clone(),
                ExecConfig {
                    shards,
                    workers: shards,
                    yask: YaskConfig::default(),
                    ..ExecConfig::default()
                },
            );

            let mut rng = Xoshiro256::seed_from_u64(11);
            let mut read_lat = Summary::new();
            let mut write_lat = Summary::new();
            let mut all_lat = Summary::new();
            let mut insert_next = true;
            for i in 0..ops {
                let is_write = (i % 100) as u32 >= reads && writes > 0;
                if is_write {
                    // Batch construction (victim scan, allocation) stays
                    // outside the timed window — the bench measures the
                    // ingest protocol, not workload generation.
                    let batch = if insert_next {
                        vec![Update::Insert(NewObject::new(
                            Point::new(rng.next_f64(), rng.next_f64()),
                            KeywordSet::from_raw(
                                (0..3).map(|_| rng.below(5_000) as u32),
                            ),
                            format!("live-{i}"),
                        ))]
                    } else {
                        // Alternates with inserts so the live count stays flat.
                        let live = ingest.corpus().live_ids();
                        vec![Update::Delete(live[rng.below(live.len())])]
                    };
                    insert_next = !insert_next;
                    let t0 = Instant::now();
                    ingest.apply(&exec, &batch).expect("bench batch");
                    let us = t0.elapsed();
                    write_lat.record_duration(us);
                    all_lat.record_duration(us);
                } else {
                    let q = &queries[i % queries.len()];
                    let t0 = Instant::now();
                    std::hint::black_box(exec.top_k(q));
                    let us = t0.elapsed();
                    read_lat.record_duration(us);
                    all_lat.record_duration(us);
                }
            }

            let stats = exec.stats();
            let name = format!("mixed/shards={shards}/{reads}r{writes}w");
            rows.push(vec![
                name.clone(),
                fmt_us(all_lat.mean()),
                fmt_us(if read_lat.is_empty() { 0.0 } else { read_lat.mean() }),
                fmt_us(if write_lat.is_empty() { 0.0 } else { write_lat.mean() }),
                format!("{}", stats.epoch),
                format!("{}", stats.rebalances),
            ]);
            results.push(Json::obj([
                ("name", Json::str(name)),
                ("shards", Json::Num(shards as f64)),
                ("reads_per_100", Json::Num(reads as f64)),
                ("writes_per_100", Json::Num(writes as f64)),
                ("ops", Json::Num(ops as f64)),
                ("mean_us", Json::Num(all_lat.mean())),
                ("p95_us", Json::Num(all_lat.percentile(95.0))),
                (
                    "read_mean_us",
                    Json::Num(if read_lat.is_empty() { 0.0 } else { read_lat.mean() }),
                ),
                (
                    "write_mean_us",
                    Json::Num(if write_lat.is_empty() { 0.0 } else { write_lat.mean() }),
                ),
                ("epochs", Json::Num(stats.epoch as f64)),
                ("rebalances", Json::Num(stats.rebalances as f64)),
                (
                    "topk_cache_hit_rate",
                    Json::Num(stats.topk_cache.hit_rate()),
                ),
            ]));
        }
    }
    std::fs::remove_file(&wal_path).ok();

    print_table(
        &format!("E10 ingest mixed read/write (n = {n}, k = 10, WAL on)"),
        &["bench", "mean", "read", "write", "epochs", "rebal"],
        &rows,
    );

    // Part B: write-cost scaling + checkpoint/recovery. Fixed single-op
    // batches against growing corpora — per-batch bytes copied must stay
    // flat in n (chunked copy-on-write), and restart must replay only
    // the post-checkpoint WAL tail.
    let (write_ns, write_ops) = if smoke {
        (vec![3_000usize, 6_000], 60usize)
    } else {
        (vec![20_000, 50_000], 600)
    };
    let ckpt_config = CheckpointConfig {
        max_wal_batches: (write_ops / 4).max(2) as u64,
        max_wal_bytes: u64::MAX,
    };
    let mut scaling_rows: Vec<Vec<String>> = Vec::new();
    for wn in write_ns {
        std::fs::remove_file(&wal_path).ok();
        std::fs::remove_file(checkpoint_path(&wal_path)).ok();
        let corpus = std_corpus(wn);
        let ingest =
            Ingestor::with_wal_config(corpus.clone(), &wal_path, ckpt_config).expect("wal");
        let exec = Executor::new(
            corpus,
            ExecConfig {
                shards: 4,
                workers: 4,
                yask: YaskConfig::default(),
                ..ExecConfig::default()
            },
        );
        let mut rng = Xoshiro256::seed_from_u64(23);
        let mut write_lat = Summary::new();
        let mut insert_next = true;
        for i in 0..write_ops {
            let batch = if insert_next {
                vec![Update::Insert(NewObject::new(
                    Point::new(rng.next_f64(), rng.next_f64()),
                    KeywordSet::from_raw((0..3).map(|_| rng.below(5_000) as u32)),
                    format!("scale-{i}"),
                ))]
            } else {
                let live = ingest.corpus().live_ids();
                vec![Update::Delete(live[rng.below(live.len())])]
            };
            insert_next = !insert_next;
            let t0 = Instant::now();
            ingest.apply(&exec, &batch).expect("scaling batch");
            write_lat.record_duration(t0.elapsed());
        }
        let copy = ingest.copy_stats();
        let exec_stats = exec.stats();
        let ckpt = ingest.checkpoint_stats();
        let wal_tail = ingest.wal_stats().map_or(0, |w| w.batches);
        let epoch = ingest.epoch();
        let corpus_after = ingest.corpus();
        drop(ingest);

        // Recovery: snapshot-then-tail — bounded by the checkpoint
        // interval, not the 600-batch history.
        let t0 = Instant::now();
        let revived =
            Ingestor::with_wal_config(std_corpus(wn), &wal_path, ckpt_config).expect("recover");
        let recovery_us = t0.elapsed().as_secs_f64() * 1e6;
        assert_eq!(revived.epoch(), epoch, "recovery must land on the same epoch");
        assert_eq!(revived.corpus().live_ids(), corpus_after.live_ids());

        let bytes_per_batch = copy.bytes_copied as f64 / write_ops as f64;
        let chunks_per_batch = copy.chunks_copied as f64 / write_ops as f64;
        let index_bytes_per_batch = exec_stats.index_copy_bytes as f64 / write_ops as f64;
        let index_chunks_per_batch = exec_stats.index_chunks_copied as f64 / write_ops as f64;
        let name = format!("write_scaling/n={wn}");
        scaling_rows.push(vec![
            name.clone(),
            fmt_us(write_lat.mean()),
            format!("{bytes_per_batch:.0}"),
            format!("{chunks_per_batch:.2}"),
            format!("{index_bytes_per_batch:.0}"),
            format!("{index_chunks_per_batch:.2}"),
            format!("{}", ckpt.checkpoints),
            format!("{wal_tail}"),
            fmt_us(recovery_us),
        ]);
        results.push(Json::obj([
            ("name", Json::str(name)),
            ("corpus", Json::Num(wn as f64)),
            ("ops", Json::Num(write_ops as f64)),
            ("write_mean_us", Json::Num(write_lat.mean())),
            ("write_p95_us", Json::Num(write_lat.percentile(95.0))),
            // The corpus acceptance column: flat between n=20k and n=50k.
            ("copy_bytes_per_batch", Json::Num(bytes_per_batch)),
            ("chunks_copied_per_batch", Json::Num(chunks_per_batch)),
            // The index acceptance column: per-batch tree bytes copied is
            // O(spine) — roughly flat (≤ logarithmic) in n.
            ("index_copy_bytes_per_batch", Json::Num(index_bytes_per_batch)),
            ("index_chunks_copied_per_batch", Json::Num(index_chunks_per_batch)),
            ("checkpoints", Json::Num(ckpt.checkpoints as f64)),
            ("wal_tail_batches", Json::Num(wal_tail as f64)),
            ("recovery_us", Json::Num(recovery_us)),
        ]));
    }
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(checkpoint_path(&wal_path)).ok();

    print_table(
        &format!("E10b write scaling + checkpointing (batch = 1 op, {write_ops} ops, ckpt every {} batches)", ckpt_config.max_wal_batches),
        &[
            "bench",
            "write",
            "corpusB/batch",
            "chunks/batch",
            "idxB/batch",
            "idxchunks/batch",
            "ckpts",
            "tail",
            "recovery",
        ],
        &scaling_rows,
    );

    // Default to the workspace root regardless of cargo's bench CWD.
    let out = std::env::var("YASK_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_ingest.json", env!("CARGO_MANIFEST_DIR")));
    let doc = Json::obj([
        ("experiment", Json::str("ingest_mixed_read_write")),
        ("host", yask_bench::host_info()),
        ("corpus", Json::Num(n as f64)),
        ("k", Json::Num(10.0)),
        ("ops", Json::Num(ops as f64)),
        ("smoke", Json::Bool(smoke)),
        ("results", Json::Arr(results)),
    ]);
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    println!("\nwrote {out}");
}
