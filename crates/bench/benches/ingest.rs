//! E10 — the ingest subsystem: mixed read/write throughput.
//!
//! Sweeps read/write ratios (100/0, 95/5, 80/20) over the writable
//! executor at 1 and 4 shards: reads are cached top-k queries, writes are
//! single-op batches through the full [`yask_ingest::Ingestor`] protocol
//! (validate → WAL append + fsync → corpus version derivation → epoch
//! publish), alternating inserts and deletes so the live count stays
//! flat. Reported per ratio: overall op latency plus the separated read
//! and write means — the interesting number is how much write traffic
//! costs the read path (epoch republish = cache invalidation, so warm
//! reads degrade as the write share grows).
//!
//! Results land in `BENCH_ingest.json`. The same single-core caveat as
//! `BENCH_exec.json` applies: on the one-core CI host, fan-out and
//! copy-on-write overheads show without the parallel speedup, so treat
//! the numbers as trend lines, not absolutes.
//!
//! Run with: `cargo bench --bench ingest` (append `-- --smoke` for the
//! CI short-iteration mode; `YASK_BENCH_OUT` overrides the artifact
//! path).

use std::time::Instant;

use yask_bench::{fmt_us, print_table, std_corpus};
use yask_core::YaskConfig;
use yask_exec::{ExecConfig, Executor};
use yask_geo::Point;
use yask_ingest::{Ingestor, NewObject, Update};
use yask_query::{Query, Weights};
use yask_server::Json;
use yask_text::KeywordSet;
use yask_util::{Summary, Xoshiro256};

/// (reads, writes) per 100 ops.
const RATIOS: [(u32, u32); 3] = [(100, 0), (95, 5), (80, 20)];
const SHARD_COUNTS: [usize; 2] = [1, 4];

fn workload(n_queries: usize, seed: u64) -> Vec<Query> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n_queries)
        .map(|_| {
            Query::with_weights(
                Point::new(rng.next_f64(), rng.next_f64()),
                KeywordSet::from_raw((0..2 + rng.below(3)).map(|_| rng.below(5_000) as u32)),
                10,
                Weights::from_ws(rng.range_f64(0.2, 0.8)),
            )
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, ops) = if smoke { (3_000, 240) } else { (20_000, 2_000) };
    let corpus = std_corpus(n);
    let queries = workload(64, 7);

    let mut wal_path = std::env::temp_dir();
    wal_path.push(format!("yask-bench-ingest-{}.wal", std::process::id()));

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<Json> = Vec::new();

    for shards in SHARD_COUNTS {
        for (reads, writes) in RATIOS {
            std::fs::remove_file(&wal_path).ok();
            let ingest = Ingestor::with_wal(corpus.clone(), &wal_path).expect("wal");
            let exec = Executor::new(
                corpus.clone(),
                ExecConfig {
                    shards,
                    workers: shards,
                    yask: YaskConfig::default(),
                    ..ExecConfig::default()
                },
            );

            let mut rng = Xoshiro256::seed_from_u64(11);
            let mut read_lat = Summary::new();
            let mut write_lat = Summary::new();
            let mut all_lat = Summary::new();
            let mut insert_next = true;
            for i in 0..ops {
                let is_write = (i % 100) as u32 >= reads && writes > 0;
                if is_write {
                    // Batch construction (victim scan, allocation) stays
                    // outside the timed window — the bench measures the
                    // ingest protocol, not workload generation.
                    let batch = if insert_next {
                        vec![Update::Insert(NewObject::new(
                            Point::new(rng.next_f64(), rng.next_f64()),
                            KeywordSet::from_raw(
                                (0..3).map(|_| rng.below(5_000) as u32),
                            ),
                            format!("live-{i}"),
                        ))]
                    } else {
                        // Alternates with inserts so the live count stays flat.
                        let live = ingest.corpus().live_ids();
                        vec![Update::Delete(live[rng.below(live.len())])]
                    };
                    insert_next = !insert_next;
                    let t0 = Instant::now();
                    ingest.apply(&exec, &batch).expect("bench batch");
                    let us = t0.elapsed();
                    write_lat.record_duration(us);
                    all_lat.record_duration(us);
                } else {
                    let q = &queries[i % queries.len()];
                    let t0 = Instant::now();
                    std::hint::black_box(exec.top_k(q));
                    let us = t0.elapsed();
                    read_lat.record_duration(us);
                    all_lat.record_duration(us);
                }
            }

            let stats = exec.stats();
            let name = format!("mixed/shards={shards}/{reads}r{writes}w");
            rows.push(vec![
                name.clone(),
                fmt_us(all_lat.mean()),
                fmt_us(if read_lat.is_empty() { 0.0 } else { read_lat.mean() }),
                fmt_us(if write_lat.is_empty() { 0.0 } else { write_lat.mean() }),
                format!("{}", stats.epoch),
                format!("{}", stats.rebalances),
            ]);
            results.push(Json::obj([
                ("name", Json::str(name)),
                ("shards", Json::Num(shards as f64)),
                ("reads_per_100", Json::Num(reads as f64)),
                ("writes_per_100", Json::Num(writes as f64)),
                ("ops", Json::Num(ops as f64)),
                ("mean_us", Json::Num(all_lat.mean())),
                ("p95_us", Json::Num(all_lat.percentile(95.0))),
                (
                    "read_mean_us",
                    Json::Num(if read_lat.is_empty() { 0.0 } else { read_lat.mean() }),
                ),
                (
                    "write_mean_us",
                    Json::Num(if write_lat.is_empty() { 0.0 } else { write_lat.mean() }),
                ),
                ("epochs", Json::Num(stats.epoch as f64)),
                ("rebalances", Json::Num(stats.rebalances as f64)),
                (
                    "topk_cache_hit_rate",
                    Json::Num(stats.topk_cache.hit_rate()),
                ),
            ]));
        }
    }
    std::fs::remove_file(&wal_path).ok();

    print_table(
        &format!("E10 ingest mixed read/write (n = {n}, k = 10, WAL on)"),
        &["bench", "mean", "read", "write", "epochs", "rebal"],
        &rows,
    );

    // Default to the workspace root regardless of cargo's bench CWD.
    let out = std::env::var("YASK_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_ingest.json", env!("CARGO_MANIFEST_DIR")));
    let doc = Json::obj([
        ("experiment", Json::str("ingest_mixed_read_write")),
        ("corpus", Json::Num(n as f64)),
        ("k", Json::Num(10.0)),
        ("ops", Json::Num(ops as f64)),
        ("smoke", Json::Bool(smoke)),
        ("results", Json::Arr(results)),
    ]);
    std::fs::write(&out, format!("{doc}\n")).expect("write bench artifact");
    println!("\nwrote {out}");
}
