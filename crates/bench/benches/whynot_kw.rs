//! Criterion bench for experiment E8: keyword adaptation — KcR-tree
//! bound-and-prune vs the naive full-scan baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use yask_bench::std_corpus;
use yask_core::{refine_keywords, refine_keywords_naive};
use yask_data::{gen_queries, pick_missing};
use yask_index::{KcRTree, RTreeParams};
use yask_query::ScoreParams;

fn bench_kw(c: &mut Criterion) {
    let corpus = std_corpus(8_000);
    let params = ScoreParams::new(corpus.space());
    let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::default());

    let mut g = c.benchmark_group("e8_keyword");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for doc_len in [2usize, 4] {
        let q = &gen_queries(&corpus, 1, doc_len, 5, 23)[0];
        let missing = pick_missing(&corpus, &params, q, 1, 4);
        g.bench_with_input(BenchmarkId::new("kcr_prune", doc_len), &doc_len, |b, _| {
            b.iter(|| black_box(refine_keywords(&tree, &params, q, &missing, 0.5).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("naive", doc_len), &doc_len, |b, _| {
            b.iter(|| {
                black_box(refine_keywords_naive(&corpus, &params, q, &missing, 0.5).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kw);
criterion_main!(benches);
