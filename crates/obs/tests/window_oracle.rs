//! Property suite for the sliding-window aggregator (ISSUE 8
//! acceptance): arbitrary timestamped workloads replayed through
//! `record_at` must agree with an exact oracle at every horizon.
//!
//! The oracle keeps every `(time, value)` event and, for a horizon of
//! `H` slots at time `now`, selects exactly the events whose slot falls
//! in `(slot(now) - H, slot(now)]` — the documented single-threaded
//! semantics of the window. Counts, sums and maxima must match the
//! oracle *exactly*; quantiles must equal the midpoint of the coarse
//! bucket containing the oracle's nearest-rank answer, which pins the
//! relative error at `1/16` ≈ 6.3 % (values under `WIN_SUB_BUCKETS`
//! are exact).

use proptest::prelude::*;

use yask_obs::window::{win_bucket_index, win_bucket_mid, WIN_SUB_BUCKETS};
use yask_obs::{SlidingWindow, WindowedMax};

const SLOT_NS: u64 = 1_000_000_000; // the standard 1 s slot

/// Exact nearest-rank quantile over the raw samples (the oracle).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A workload: monotone event times (built from deltas so replay order
/// is valid) paired with latency values spanning every regime the
/// engine records. Deltas up to 3 s force ring wraparound and gaps;
/// values stay below the 2^36 ns saturation point on purpose — the
/// saturated bucket's midpoint makes no error promise.
fn workload() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec(
        (
            0u64..3_000_000_000,
            prop_oneof![
                0u64..8,                       // unit-width buckets (exact)
                8u64..100_000,                 // sub-100µs
                100_000u64..50_000_000,        // 0.1–50 ms
                50_000_000u64..20_000_000_000, // 50 ms – 20 s
            ],
        ),
        1..300,
    )
}

/// Resolve deltas into absolute event times.
fn replay(events: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut t = 0u64;
    let mut out = Vec::with_capacity(events.len());
    for &(delta, v) in events {
        t += delta;
        out.push((t, v));
    }
    out
}

/// The oracle's view of a horizon: the values of every event whose slot
/// is one of the last `horizon` slots as of `now_ns`.
fn covered(events: &[(u64, u64)], now_ns: u64, horizon: u64) -> Vec<u64> {
    let slot_now = now_ns / SLOT_NS;
    let slot_min = (slot_now + 1).saturating_sub(horizon);
    events
        .iter()
        .filter(|(t, _)| {
            let s = t / SLOT_NS;
            s >= slot_min && s <= slot_now
        })
        .map(|&(_, v)| v)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counts, sums and maxima are exact per horizon, and every reported
    /// quantile is the bucket midpoint of the oracle's nearest-rank
    /// answer (⇒ within the 1/16 relative-error bound).
    #[test]
    fn window_matches_replay_oracle(events in workload()) {
        let w = SlidingWindow::standard();
        let timed = replay(&events);
        for &(t, v) in &timed {
            w.record_at(t, v);
        }
        let now = timed.last().unwrap().0;
        for &horizon in &[1u64, 10, 60] {
            let mut want = covered(&timed, now, horizon);
            let snap = w.snapshot_at(now, horizon as usize);
            prop_assert_eq!(
                snap.count, want.len() as u64,
                "horizon={} now={}", horizon, now
            );
            let want_sum: u64 = want.iter().sum();
            prop_assert_eq!(snap.sum_ns, want_sum, "horizon={}", horizon);
            let want_max = want.iter().max().copied().unwrap_or(0);
            prop_assert_eq!(snap.max_ns, want_max, "horizon={}", horizon);
            if want.is_empty() {
                prop_assert!(snap.is_empty());
                prop_assert_eq!(snap.p99(), 0);
                continue;
            }
            want.sort_unstable();
            for &q in &[0.0, 0.01, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
                let exact = exact_quantile(&want, q);
                let got = snap.quantile(q);
                prop_assert_eq!(
                    got, win_bucket_mid(win_bucket_index(exact)),
                    "q={} horizon={} exact={}", q, horizon, exact
                );
                if exact >= WIN_SUB_BUCKETS {
                    let err = (got as f64 - exact as f64).abs() / exact as f64;
                    prop_assert!(err <= 1.0 / 15.0, "q={} got={} exact={}", q, got, exact);
                } else {
                    prop_assert_eq!(got, exact);
                }
            }
        }
    }

    /// The windowed rate is the oracle count divided by the horizon.
    #[test]
    fn rates_are_count_over_horizon(events in workload()) {
        let w = SlidingWindow::standard();
        let timed = replay(&events);
        for &(t, v) in &timed {
            w.record_at(t, v);
        }
        let now = timed.last().unwrap().0;
        for &horizon in &[1u64, 10, 60] {
            let snap = w.snapshot_at(now, horizon as usize);
            let want = covered(&timed, now, horizon).len() as f64 / horizon as f64;
            prop_assert!(
                (snap.rate_per_sec() - want).abs() < 1e-9,
                "horizon={} got={} want={}", horizon, snap.rate_per_sec(), want
            );
        }
    }

    /// `WindowedMax` agrees with the oracle's max over every horizon.
    #[test]
    fn windowed_max_matches_replay_oracle(events in workload()) {
        let m = WindowedMax::standard();
        let timed = replay(&events);
        for &(t, v) in &timed {
            m.record_at(t, v);
        }
        let now = timed.last().unwrap().0;
        for &horizon in &[1u64, 10, 60] {
            let want = covered(&timed, now, horizon).iter().max().copied().unwrap_or(0);
            prop_assert_eq!(m.max_at(now, horizon as usize), want, "horizon={}", horizon);
        }
    }
}
