//! Property suite for the log-bucketed histogram (ISSUE 7 acceptance):
//! for arbitrary latency samples, every quantile the histogram reports
//! must sit within the documented relative-error bound of the *exact*
//! quantile computed from the sorted raw samples.
//!
//! The bound: values below `SUB_BUCKETS` land in unit-width buckets
//! (exact); above that the bucket width is at most `value / SUB_BUCKETS`,
//! so reporting the bucket midpoint is off by at most half a width —
//! `1 / (2 * SUB_BUCKETS)` ≈ 1.6 % relative, inside the 2.5 % budget the
//! observability spec allows. Both `quantile` and the oracle use the
//! same nearest-rank definition, so the histogram's answer is the
//! midpoint of the bucket that contains the exact answer and the bound
//! holds sample-for-sample, not just in expectation.

use proptest::prelude::*;

use yask_obs::hist::SUB_BUCKETS;
use yask_obs::Histogram;

/// Exact nearest-rank quantile over the raw samples (the oracle).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The histogram's worst-case absolute error for a true value `v`:
/// exact below `SUB_BUCKETS`, half a bucket width (`v / SUB_BUCKETS / 2`,
/// rounded up) above it.
fn error_bound(v: u64) -> u64 {
    if v < SUB_BUCKETS {
        0
    } else {
        v / SUB_BUCKETS / 2 + 1
    }
}

/// Latency samples spanning every regime the engine records: sub-µs
/// cache hits, µs-to-ms queries, and multi-second checkpoints.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..64,                        // unit-width buckets
            64u64..100_000,                  // sub-100µs
            100_000u64..50_000_000,          // 0.1–50 ms
            50_000_000u64..20_000_000_000,   // 50 ms – 20 s
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reported quantile is within half a bucket width of the
    /// exact sorted-oracle quantile, across the whole q range.
    #[test]
    fn quantiles_match_sorted_oracle(values in samples()) {
        let h = Histogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &[0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0] {
            let want = exact_quantile(&sorted, q);
            let got = snap.quantile(q);
            let bound = error_bound(want);
            prop_assert!(
                got.abs_diff(want) <= bound,
                "q={} got={} want={} bound={}", q, got, want, bound
            );
        }
    }

    /// Count and sum aggregates are exact (they bypass the buckets), so
    /// the mean is exact too — and the max is the bucket midpoint of the
    /// true maximum.
    #[test]
    fn aggregates_are_exact(values in samples()) {
        let h = Histogram::new();
        let mut sum = 0u64;
        for &v in &values {
            h.record_ns(v);
            sum += v;
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        let want_mean = sum as f64 / values.len() as f64;
        prop_assert!((snap.mean_ns() - want_mean).abs() < 1e-6);

        let max = *values.iter().max().unwrap();
        prop_assert!(snap.max_ns().abs_diff(max) <= error_bound(max));
    }

    /// The Prometheus `le` series is consistent with the oracle: each
    /// cumulative count is sandwiched between the strict and inclusive
    /// raw counts at its bound (power-of-two bounds align with octave
    /// edges, so the only slack is the 1 ns boundary convention), and the
    /// series is monotone.
    #[test]
    fn le_buckets_match_oracle_counts(values in samples()) {
        let h = Histogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let le = h.snapshot().le_buckets();
        let mut prev = 0u64;
        for &(bound, cum) in &le {
            let below = values.iter().filter(|&&v| v < bound).count() as u64;
            let at_or_below = values.iter().filter(|&&v| v <= bound).count() as u64;
            prop_assert!(
                below <= cum && cum <= at_or_below,
                "bound={} cum={} strict={} inclusive={}", bound, cum, below, at_or_below
            );
            prop_assert!(cum >= prev);
            prev = cum;
        }
    }
}
