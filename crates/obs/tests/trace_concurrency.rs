//! Concurrency coverage for `TraceLog` (ISSUE 8 satellite): the ring
//! under wraparound and the keep-the-slowest log were only exercised
//! single-threaded before.
//!
//! What is actually guaranteed under concurrent recording:
//!
//! - the admission counter is exact (every trace gets a unique `seq`);
//! - the ring always holds `min(cap, recorded)` traces with distinct
//!   seqs, and `recent()` returns them seq-descending — but *which*
//!   traces survive a same-slot race is scheduling-dependent, so the
//!   strict most-recent-N property is only asserted per-thread (each
//!   thread's own seqs are ordered, so its survivors must be its latest);
//! - the slow log is exact even under races: the `floor_ns` fast path
//!   only skips traces that were already beaten by a full log, so the
//!   final contents are precisely the global top-N by total time.

use std::sync::Arc;
use std::thread;

use yask_obs::{Trace, TraceLog};

const THREADS: u64 = 4;
const PER_THREAD: u64 = 250;

/// Build a finished trace with a chosen label and total time.
fn finished(label: String, total_ns: u64) -> yask_obs::FinishedTrace {
    let mut f = Trace::new(label).finish();
    f.total_ns = total_ns;
    f
}

#[test]
fn ring_wraparound_is_sound_under_concurrent_recording() {
    let ring_cap = 16usize;
    let log = Arc::new(TraceLog::new(ring_cap, 0));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let log = Arc::clone(&log);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    log.record(finished(format!("t{t}-{i}"), i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(log.recorded(), THREADS * PER_THREAD);
    let recent = log.recent();
    assert_eq!(recent.len(), ring_cap, "full ring stays full");
    // Distinct seqs, seq-descending, all within the admitted range.
    for pair in recent.windows(2) {
        assert!(pair[0].seq > pair[1].seq, "recent() must be seq-descending");
    }
    assert!(recent.iter().all(|f| f.seq < THREADS * PER_THREAD));
    // Per-thread recency: a thread records its traces in order, so any
    // of its traces still in the ring must be among its last `ring_cap`
    // (an earlier one can only be displaced later, never resurrected).
    for f in &recent {
        let (_, idx) = f.label.split_once('-').expect("label format t<t>-<i>");
        let idx: u64 = idx.parse().unwrap();
        assert!(
            idx >= PER_THREAD - ring_cap as u64,
            "stale trace {} survived wraparound",
            f.label
        );
    }
}

#[test]
fn slow_log_keeps_exact_top_n_under_concurrent_recording() {
    let slow_cap = 8usize;
    let log = Arc::new(TraceLog::new(4, slow_cap));
    // Every trace gets a globally distinct total_ns so the expected
    // order is unambiguous (the seq tie-break is scheduling-dependent).
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let log = Arc::clone(&log);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let total = (i * THREADS + t) * 10 + 1;
                    log.record(finished(format!("t{t}-{i}"), total));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let mut all: Vec<u64> = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (i * THREADS + t) * 10 + 1))
        .collect();
    all.sort_unstable_by(|a, b| b.cmp(a));
    let want: Vec<u64> = all.into_iter().take(slow_cap).collect();
    let got: Vec<u64> = log.slowest().iter().map(|f| f.total_ns).collect();
    assert_eq!(got, want, "slow log must hold the exact global top-N, slowest first");

    // The admission floor must now reject anything below the kept set.
    log.record(finished("late-fast".into(), 0));
    assert!(!log.slowest().iter().any(|f| f.label == "late-fast"));
    // ...while a new global maximum still evicts the current minimum.
    log.record(finished("late-slow".into(), u64::MAX));
    let after: Vec<u64> = log.slowest().iter().map(|f| f.total_ns).collect();
    assert_eq!(after[0], u64::MAX);
    assert_eq!(after.len(), slow_cap);
    assert!(!after.contains(want.last().unwrap()), "old minimum must be evicted");
}
