//! Per-cell workload heat with exponential decay, plus a top-N keyword
//! frequency sketch.
//!
//! A [`HeatMap`] keeps one atomic word per cell (the executor uses one
//! cell per STR shard). Each word packs a 48-bit fixed-point heat value
//! (8 fractional bits) with the 16-bit decay *generation* it was last
//! folded to. Heat halves once per generation (one generation = the
//! configured half-life), implemented as a lazy right-shift inside the
//! recorder's CAS loop — no background thread, no global lock, and a
//! cell that stops receiving traffic costs nothing until the next read.
//! Readers fold every cell to the current generation, so two cells are
//! always comparable no matter when each was last touched.
//!
//! Alongside the decayed heat each cell keeps a raw since-boot touch
//! counter (a plain `fetch_add`) so absolute volumes stay available for
//! counters while the heat answers "where is the load *now*".
//!
//! The [`TopKSketch`] is a Misra–Gries heavy-hitters summary over
//! keyword ids: with capacity `c`, any keyword whose true count exceeds
//! `total / (c + 1)` is guaranteed present, and every reported estimate
//! undercounts by at most that same bound. It takes a mutex, but only
//! per query (few keywords each) — not per sample on a hot loop.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Fractional bits of the fixed-point heat value.
const FRAC_BITS: u32 = 8;
/// Bits of the packed decay generation.
const GEN_BITS: u32 = 16;
const GEN_MASK: u64 = (1 << GEN_BITS) - 1;
/// Heat saturates here instead of overflowing into the generation bits.
const HEAT_MAX: u64 = (1 << (64 - GEN_BITS)) - 1;

#[inline]
fn pack(heat: u64, gen: u64) -> u64 {
    (heat.min(HEAT_MAX) << GEN_BITS) | (gen & GEN_MASK)
}

#[inline]
fn unpack(word: u64) -> (u64, u64) {
    (word >> GEN_BITS, word & GEN_MASK)
}

/// Decay `heat` across `delta` generations (halving per generation).
#[inline]
fn decayed(heat: u64, delta: u64) -> u64 {
    if delta >= 64 - GEN_BITS as u64 {
        0
    } else {
        heat >> delta
    }
}

/// Exponentially-decayed per-cell touch counters; see the module docs.
pub struct HeatMap {
    start: Instant,
    half_life_ns: u64,
    /// Packed (heat, generation) per cell.
    cells: Vec<AtomicU64>,
    /// Raw since-boot touches per cell.
    touches: Vec<AtomicU64>,
}

impl HeatMap {
    /// `cells` fixed at build time (the executor's shard count); `half_life`
    /// is how long a touch takes to decay to half its weight.
    pub fn new(cells: usize, half_life: Duration) -> HeatMap {
        let half_life_ns = half_life.as_nanos().clamp(1, u64::MAX as u128) as u64;
        HeatMap {
            start: Instant::now(),
            half_life_ns,
            cells: (0..cells.max(1)).map(|_| AtomicU64::new(0)).collect(),
            touches: (0..cells.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    pub fn half_life(&self) -> Duration {
        Duration::from_nanos(self.half_life_ns)
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Record one touch of `cell` now.
    #[inline]
    pub fn record(&self, cell: usize) {
        self.record_many_at(self.now_ns(), cell, 1);
    }

    /// Record `n` touches of `cell` now (a write batch routing `n` ops).
    #[inline]
    pub fn record_many(&self, cell: usize, n: u64) {
        self.record_many_at(self.now_ns(), cell, n);
    }

    /// Record at an explicit virtual time (deterministic tests). Out of
    /// range cells are ignored (a rebalance can race a stale router).
    pub fn record_many_at(&self, now_ns: u64, cell: usize, n: u64) {
        let Some(word) = self.cells.get(cell) else {
            return;
        };
        let gen = now_ns / self.half_life_ns;
        let add = n.saturating_mul(1 << FRAC_BITS);
        loop {
            let old = word.load(Ordering::Relaxed);
            let (heat, old_gen) = unpack(old);
            // Generations only move forward; a wrapped difference far in
            // the "future" means the cell is ahead of this (stale) clock
            // read — fold into the newer generation without decaying.
            let delta = gen.wrapping_sub(old_gen) & GEN_MASK;
            let (fold_gen, folded) = if delta <= GEN_MASK / 2 {
                (gen, decayed(heat, delta))
            } else {
                (old_gen, heat)
            };
            let new = pack(folded.saturating_add(add), fold_gen);
            if word
                .compare_exchange_weak(old, new, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        self.touches[cell].fetch_add(n, Ordering::Relaxed);
    }

    /// Decayed heat per cell, folded to the current generation. A heat of
    /// `h` means "the equivalent of `h` touches, all arriving just now".
    pub fn heats(&self) -> Vec<f64> {
        self.heats_at(self.now_ns())
    }

    /// [`HeatMap::heats`] at an explicit virtual time.
    pub fn heats_at(&self, now_ns: u64) -> Vec<f64> {
        let gen = now_ns / self.half_life_ns;
        self.cells
            .iter()
            .map(|word| {
                let (heat, old_gen) = unpack(word.load(Ordering::Relaxed));
                let delta = gen.wrapping_sub(old_gen) & GEN_MASK;
                let folded = if delta <= GEN_MASK / 2 { decayed(heat, delta) } else { heat };
                folded as f64 / (1u64 << FRAC_BITS) as f64
            })
            .collect()
    }

    /// Raw since-boot touches per cell.
    pub fn touches(&self) -> Vec<u64> {
        self.touches.iter().map(|t| t.load(Ordering::Relaxed)).collect()
    }

    /// Skew ratio of the current heat distribution: hottest cell over the
    /// mean cell (1.0 = perfectly balanced, `cells` = everything in one
    /// cell). 0.0 while the map is cold — "no skew" and "no data" must
    /// not alias to the balanced value.
    pub fn skew(&self) -> f64 {
        Self::skew_of(&self.heats())
    }

    /// Skew ratio of an already-materialised heat vector.
    pub fn skew_of(heats: &[f64]) -> f64 {
        let total: f64 = heats.iter().sum();
        if total <= 0.0 || heats.is_empty() {
            return 0.0;
        }
        let max = heats.iter().cloned().fold(0.0f64, f64::max);
        max / (total / heats.len() as f64)
    }
}

/// Misra–Gries top-N frequency sketch over `u32` keys.
pub struct TopKSketch {
    cap: usize,
    inner: Mutex<SketchState>,
}

#[derive(Default)]
struct SketchState {
    counts: HashMap<u32, u64>,
    /// Total decrement passes — the undercount bound for every estimate.
    decrements: u64,
    total: u64,
}

impl TopKSketch {
    /// Tracks at most `cap` keys; any key with true frequency above
    /// `total / (cap + 1)` is guaranteed to be present.
    pub fn new(cap: usize) -> TopKSketch {
        TopKSketch {
            cap: cap.max(1),
            inner: Mutex::new(SketchState::default()),
        }
    }

    /// Record one occurrence of `key`.
    pub fn record(&self, key: u32) {
        let mut s = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        s.total += 1;
        if let Some(c) = s.counts.get_mut(&key) {
            *c += 1;
            return;
        }
        if s.counts.len() < self.cap {
            s.counts.insert(key, 1);
            return;
        }
        // Summary full: decrement every counter (the new key's single
        // occurrence cancels against one of each survivor's).
        s.decrements += 1;
        s.counts.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    /// Record every key of one query's keyword set.
    pub fn record_all(&self, keys: impl IntoIterator<Item = u32>) {
        for k in keys {
            self.record(k);
        }
    }

    /// Total occurrences recorded.
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).total
    }

    /// The top `n` keys by estimated count, count-descending (key
    /// ascending on ties, so the order is deterministic). Estimates
    /// undercount true frequencies by at most `total / (cap + 1)`.
    pub fn top(&self, n: usize) -> Vec<(u32, u64)> {
        let s = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<(u32, u64)> = s.counts.iter().map(|(&k, &c)| (k, c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(n);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HL: u64 = 1_000_000_000; // 1 s half-life in ns

    #[test]
    fn heat_accumulates_and_halves_per_half_life() {
        let h = HeatMap::new(4, Duration::from_secs(1));
        for _ in 0..100 {
            h.record_many_at(10, 2, 1);
        }
        let heats = h.heats_at(10);
        assert!((heats[2] - 100.0).abs() < 1e-9, "{heats:?}");
        // One half-life later: 50. Three more: 6.25.
        assert!((h.heats_at(HL + 10)[2] - 50.0).abs() < 1e-9);
        assert!((h.heats_at(4 * HL + 10)[2] - 6.25).abs() < 1e-9);
        // Far future: fully decayed, but raw touches persist.
        assert_eq!(h.heats_at(100 * HL)[2], 0.0);
        assert_eq!(h.touches(), vec![0, 0, 100, 0]);
    }

    #[test]
    fn decay_folds_lazily_across_mixed_recording_times() {
        let h = HeatMap::new(2, Duration::from_secs(1));
        h.record_many_at(0, 0, 80); // decays ×1/4 by t=2HL
        h.record_many_at(2 * HL, 0, 10);
        let heat = h.heats_at(2 * HL)[0];
        assert!((heat - 30.0).abs() < 1e-9, "heat={heat}");
    }

    #[test]
    fn record_many_matches_repeated_record() {
        let a = HeatMap::new(2, Duration::from_secs(60));
        let b = HeatMap::new(2, Duration::from_secs(60));
        a.record_many_at(5, 1, 7);
        for _ in 0..7 {
            b.record_many_at(5, 1, 1);
        }
        assert_eq!(a.heats_at(5), b.heats_at(5));
        assert_eq!(a.touches(), b.touches());
    }

    #[test]
    fn skew_ratio_is_max_over_mean() {
        // All heat in one of four cells: skew = 4.
        let h = HeatMap::new(4, Duration::from_secs(60));
        for _ in 0..10 {
            h.record_many_at(0, 1, 1);
        }
        assert!((h.skew() - 4.0).abs() < 1e-9);
        // Perfectly balanced: skew = 1.
        let b = HeatMap::new(4, Duration::from_secs(60));
        for c in 0..4 {
            b.record_many_at(0, c, 5);
        }
        assert!((b.skew() - 1.0).abs() < 1e-9);
        // Cold map: 0, not 1.
        assert_eq!(HeatMap::new(4, Duration::from_secs(60)).skew(), 0.0);
    }

    #[test]
    fn out_of_range_cells_are_ignored() {
        let h = HeatMap::new(2, Duration::from_secs(1));
        h.record_many_at(0, 9, 5);
        assert_eq!(h.touches(), vec![0, 0]);
    }

    #[test]
    fn concurrent_heat_recording_loses_nothing_within_a_generation() {
        use std::sync::Arc;
        let h = Arc::new(HeatMap::new(4, Duration::from_secs(3600)));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        h.record(t % 4);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let heats = h.heats();
        assert!(heats.iter().all(|&x| (x - 10_000.0).abs() < 1e-9), "{heats:?}");
    }

    #[test]
    fn sketch_finds_heavy_hitters() {
        let s = TopKSketch::new(8);
        // Zipf-ish: key 0 dominates, then 1, 2; plus 200 distinct strays.
        for i in 0..1000u32 {
            s.record(0);
            if i % 2 == 0 {
                s.record(1);
            }
            if i % 4 == 0 {
                s.record(2);
            }
            s.record(100 + (i % 200));
        }
        let top = s.top(3);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[1].0, 1);
        assert_eq!(top[2].0, 2);
        // Misra–Gries bound: estimate ≥ true - total/(cap+1).
        let total = s.total();
        assert!(top[0].1 >= 1000 - total / 9, "{top:?} total={total}");
    }

    #[test]
    fn sketch_tie_order_is_deterministic() {
        let s = TopKSketch::new(8);
        for k in [5u32, 3, 9, 3, 5, 9] {
            s.record(k);
        }
        assert_eq!(s.top(3), vec![(3, 2), (5, 2), (9, 2)]);
    }
}
