//! # yask_obs — observability kernel
//!
//! Zero-dependency building blocks the engine uses to explain where its
//! own time goes:
//!
//! - [`hist`]: lock-free log-bucketed latency [`Histogram`]s (atomic
//!   buckets, ≤ ~1.6 % relative quantile error, mergeable
//!   [`HistogramSnapshot`]s yielding p50/p90/p99/p99.9).
//! - [`trace`]: per-query span [`Trace`]s collected into a bounded
//!   [`TraceLog`] ring with a top-N slow-query log.
//! - [`window`]: lock-free [`SlidingWindow`] aggregators (ring of
//!   epoch-stamped sub-windows) giving *recent* rates and p50/p99 over
//!   1 s / 10 s / 1 m horizons, plus a windowed high-water
//!   [`WindowedMax`].
//! - [`heat`]: exponentially-decayed per-cell [`HeatMap`]s (query/write
//!   touches per STR shard cell, skew ratio) and a Misra–Gries keyword
//!   [`TopKSketch`].
//! - [`prom`]: Prometheus text exposition writer ([`PromText`]) and the
//!   validating parser ([`validate_exposition`]) shared by tests and the
//!   CI smoke check.
//!
//! Everything here is `std`-only so the crate can sit under the query
//! hot path without pulling dependencies into `exec` or `ingest`.

pub mod heat;
pub mod hist;
pub mod prom;
pub mod trace;
pub mod window;

pub use heat::{HeatMap, TopKSketch};
pub use hist::{Histogram, HistogramSnapshot};
pub use prom::{validate_exposition, ExpositionSummary, PromText};
pub use trace::{FinishedTrace, SpanRecord, Trace, TraceLog, NO_PARENT};
pub use window::{SlidingWindow, WindowSnapshot, WindowedMax};
