//! Lock-free sliding-window aggregation: windowed rates, quantiles and
//! maxima over the last 1 s / 10 s / 1 m instead of since-boot.
//!
//! A [`SlidingWindow`] is a ring of epoch-stamped sub-windows. Time is
//! divided into fixed-width *slots* (1 s by default); each live slot
//! holds a coarse log-bucketed histogram plus count/sum/max aggregates,
//! all plain relaxed atomics like [`crate::Histogram`]. A recorder
//! computes the current slot epoch from elapsed time, lazily reclaims
//! the ring slot if it still carries an expired epoch (one CAS decides a
//! single resetter), and then does a handful of relaxed `fetch_add`s —
//! no locks, so the query hot path can afford it. A snapshot over a
//! horizon of H slots sums every slot whose stamped epoch falls inside
//! the horizon, giving windowed counts (→ rates), mean, max and
//! quantiles that *forget* old traffic instead of averaging over the
//! process lifetime.
//!
//! Resolution trade-off: the per-slot histograms use 8 sub-buckets per
//! octave (vs the cumulative histograms' 32), bounding the reported
//! quantile's relative error at `1/16` ≈ 6.3 % — coarser than the
//! since-boot histograms but 4× smaller, which matters because every
//! route keeps one histogram *per live slot*. Values saturate at
//! 2^36 ns (~69 s), far beyond any latency this engine records.
//!
//! Concurrency semantics: recording is exact within a slot; at a slot
//! boundary a racing recorder can land a sample in the slot that is
//! being reclaimed, and a reader can observe a slot mid-reset, so
//! windowed counts are approximate within ±(in-flight recorders) at
//! boundaries. Deterministic callers (tests, the replay oracle) drive
//! explicit timestamps through [`SlidingWindow::record_at`] /
//! [`SlidingWindow::snapshot_at`] single-threaded, where the semantics
//! are exact: a sample stamped `t` is visible to a horizon-`H` snapshot
//! at `now` iff `slot(t) ∈ (slot(now) - H, slot(now)]`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// log2 of sub-buckets per octave in the windowed histograms.
pub const WIN_SUB_BITS: u32 = 3;
/// Sub-buckets per octave (8): quantile midpoint error ≤ 1/16.
pub const WIN_SUB_BUCKETS: u64 = 1 << WIN_SUB_BITS;
/// Values at or above `2^WIN_MAX_EXP` ns saturate into the top bucket.
pub const WIN_MAX_EXP: u32 = 36;
/// Buckets per slot: unit region + (WIN_MAX_EXP - WIN_SUB_BITS) octaves.
pub const WIN_BUCKET_COUNT: usize =
    ((WIN_MAX_EXP - WIN_SUB_BITS) as usize) * (WIN_SUB_BUCKETS as usize) + WIN_SUB_BUCKETS as usize;

/// Map a nanosecond value to its windowed-histogram bucket.
#[inline]
pub fn win_bucket_index(v: u64) -> usize {
    if v < WIN_SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - WIN_SUB_BITS) as usize;
    let sub = ((v >> (msb - WIN_SUB_BITS)) & (WIN_SUB_BUCKETS - 1)) as usize;
    ((octave << WIN_SUB_BITS) + WIN_SUB_BUCKETS as usize + sub).min(WIN_BUCKET_COUNT - 1)
}

/// Inclusive lower bound of windowed bucket `i`.
#[inline]
pub fn win_bucket_low(i: usize) -> u64 {
    if i < WIN_SUB_BUCKETS as usize {
        return i as u64;
    }
    let j = i - WIN_SUB_BUCKETS as usize;
    let octave = (j >> WIN_SUB_BITS) as u32;
    let sub = (j as u64) & (WIN_SUB_BUCKETS - 1);
    (WIN_SUB_BUCKETS + sub) << octave
}

/// Representative (midpoint) value for windowed bucket `i`.
#[inline]
pub fn win_bucket_mid(i: usize) -> u64 {
    if i < WIN_SUB_BUCKETS as usize {
        return i as u64;
    }
    let j = i - WIN_SUB_BUCKETS as usize;
    let octave = (j >> WIN_SUB_BITS) as u32;
    win_bucket_low(i) + (1u64 << octave) / 2
}

/// One sub-window: an epoch stamp plus the slot's aggregates. The stamp
/// stores `epoch + 1` so 0 can mean "never used".
struct Slot {
    stamp: AtomicU64,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            buckets: (0..WIN_BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Ensure the slot is stamped for `stamp_want`; the CAS winner (and
    /// only it) zeroes the aggregates left over from the expired epoch.
    /// Returns false when the slot already belongs to a *later* epoch
    /// (the caller's sample is too old to attribute and is dropped).
    fn claim(&self, stamp_want: u64) -> bool {
        loop {
            let cur = self.stamp.load(Ordering::Relaxed);
            if cur == stamp_want {
                return true;
            }
            if cur > stamp_want {
                return false;
            }
            if self
                .stamp
                .compare_exchange(cur, stamp_want, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.count.store(0, Ordering::Relaxed);
                self.sum_ns.store(0, Ordering::Relaxed);
                self.max_ns.store(0, Ordering::Relaxed);
                for b in self.buckets.iter() {
                    b.store(0, Ordering::Relaxed);
                }
                return true;
            }
        }
    }
}

/// A ring of epoch-stamped sub-windows; see the module docs.
pub struct SlidingWindow {
    start: Instant,
    slot_ns: u64,
    slots: Vec<Slot>,
}

impl SlidingWindow {
    /// `slot` is the sub-window width, `slots` the ring length. A horizon
    /// of H slots is valid while `H ≤ slots - 1` (the extra slot absorbs
    /// the ring-reuse ambiguity at the write edge).
    pub fn new(slot: Duration, slots: usize) -> SlidingWindow {
        let slot_ns = slot.as_nanos().clamp(1, u64::MAX as u128) as u64;
        SlidingWindow {
            start: Instant::now(),
            slot_ns,
            slots: (0..slots.max(2)).map(|_| Slot::new()).collect(),
        }
    }

    /// The standard shape behind the server's 1 s / 10 s / 1 m horizons:
    /// 1-second slots, 64-slot ring.
    pub fn standard() -> SlidingWindow {
        SlidingWindow::new(Duration::from_secs(1), 64)
    }

    /// Sub-window width in nanoseconds.
    pub fn slot_ns(&self) -> u64 {
        self.slot_ns
    }

    /// Ring length in slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Record an elapsed duration at the current time.
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.record_at(self.now_ns(), elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record `value_ns` as of `now_ns` (nanoseconds since the window
    /// started). Exposed so tests and replay oracles can drive virtual
    /// time deterministically; `record` feeds it real elapsed time.
    pub fn record_at(&self, now_ns: u64, value_ns: u64) {
        let epoch = now_ns / self.slot_ns;
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        if !slot.claim(epoch + 1) {
            return;
        }
        slot.buckets[win_bucket_index(value_ns)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum_ns.fetch_add(value_ns, Ordering::Relaxed);
        slot.max_ns.fetch_max(value_ns, Ordering::Relaxed);
    }

    /// Snapshot the last `horizon` slots (current partial slot included)
    /// as of now.
    pub fn snapshot(&self, horizon: usize) -> WindowSnapshot {
        self.snapshot_at(self.now_ns(), horizon)
    }

    /// [`SlidingWindow::snapshot`] at an explicit virtual time. `horizon`
    /// is clamped to `slots - 1` so a live writer reusing the oldest ring
    /// slot for the newest epoch can never be double-counted.
    pub fn snapshot_at(&self, now_ns: u64, horizon: usize) -> WindowSnapshot {
        let horizon = horizon.clamp(1, self.slots.len() - 1);
        let epoch = now_ns / self.slot_ns;
        // Live stamps are epoch+1 for the current slot down to
        // epoch+2-horizon for the oldest covered one.
        let stamp_min = (epoch + 2).saturating_sub(horizon as u64);
        let mut snap = WindowSnapshot {
            horizon_ns: horizon as u64 * self.slot_ns,
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            buckets: vec![0u64; WIN_BUCKET_COUNT],
        };
        for slot in &self.slots {
            let stamp = slot.stamp.load(Ordering::Relaxed);
            if stamp < stamp_min || stamp > epoch + 1 || stamp == 0 {
                continue;
            }
            snap.sum_ns = snap.sum_ns.saturating_add(slot.sum_ns.load(Ordering::Relaxed));
            snap.max_ns = snap.max_ns.max(slot.max_ns.load(Ordering::Relaxed));
            for (dst, src) in snap.buckets.iter_mut().zip(slot.buckets.iter()) {
                *dst += src.load(Ordering::Relaxed);
            }
        }
        // Normalise the count to the bucket total so quantiles stay
        // internally consistent under concurrent recording.
        snap.count = snap.buckets.iter().sum();
        snap
    }
}

/// Aggregates over one snapshot horizon.
#[derive(Clone, Debug, Default)]
pub struct WindowSnapshot {
    /// The horizon this snapshot covers, nanoseconds.
    pub horizon_ns: u64,
    /// Samples recorded inside the horizon.
    pub count: u64,
    /// Sum of the samples, nanoseconds.
    pub sum_ns: u64,
    /// Largest sample, nanoseconds (0 when empty).
    pub max_ns: u64,
    buckets: Vec<u64>,
}

impl WindowSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Samples per second over the horizon. The current partial slot is
    /// inside the horizon, so rates during the first slot of traffic
    /// understate slightly rather than spike.
    pub fn rate_per_sec(&self) -> f64 {
        if self.horizon_ns == 0 {
            return 0.0;
        }
        self.count as f64 / (self.horizon_ns as f64 / 1e9)
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile over the windowed buckets (midpoint
    /// reported, ≤ ~6.3 % relative error). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return win_bucket_mid(i);
            }
        }
        win_bucket_mid(WIN_BUCKET_COUNT - 1)
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A windowed high-water mark: like [`SlidingWindow`] but each slot only
/// keeps a `fetch_max`. Backs reset-safe gauges ("max queue depth over
/// the last minute") beside their unbounded since-boot cousins.
pub struct WindowedMax {
    start: Instant,
    slot_ns: u64,
    slots: Vec<(AtomicU64, AtomicU64)>, // (stamp = epoch+1, max)
}

impl WindowedMax {
    pub fn new(slot: Duration, slots: usize) -> WindowedMax {
        let slot_ns = slot.as_nanos().clamp(1, u64::MAX as u128) as u64;
        WindowedMax {
            start: Instant::now(),
            slot_ns,
            slots: (0..slots.max(2))
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                .collect(),
        }
    }

    /// 1-second slots, 64-slot ring (horizons up to 63 s).
    pub fn standard() -> WindowedMax {
        WindowedMax::new(Duration::from_secs(1), 64)
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Record an observed value at the current time.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_at(self.now_ns(), value);
    }

    /// Record at an explicit virtual time (deterministic tests).
    pub fn record_at(&self, now_ns: u64, value: u64) {
        let epoch = now_ns / self.slot_ns;
        let (stamp, max) = &self.slots[(epoch % self.slots.len() as u64) as usize];
        let want = epoch + 1;
        loop {
            let cur = stamp.load(Ordering::Relaxed);
            if cur == want {
                break;
            }
            if cur > want {
                return;
            }
            if stamp
                .compare_exchange(cur, want, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                max.store(0, Ordering::Relaxed);
                break;
            }
        }
        max.fetch_max(value, Ordering::Relaxed);
    }

    /// Largest value recorded in the last `horizon` slots (current
    /// partial slot included); 0 when nothing was recorded.
    pub fn max(&self, horizon: usize) -> u64 {
        self.max_at(self.now_ns(), horizon)
    }

    /// [`WindowedMax::max`] at an explicit virtual time.
    pub fn max_at(&self, now_ns: u64, horizon: usize) -> u64 {
        let horizon = horizon.clamp(1, self.slots.len() - 1);
        let epoch = now_ns / self.slot_ns;
        let stamp_min = (epoch + 2).saturating_sub(horizon as u64);
        let mut best = 0u64;
        for (stamp, max) in &self.slots {
            let s = stamp.load(Ordering::Relaxed);
            if s >= stamp_min && s <= epoch + 1 && s != 0 {
                best = best.max(max.load(Ordering::Relaxed));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000; // 1 s in ns

    fn window() -> SlidingWindow {
        SlidingWindow::new(Duration::from_secs(1), 64)
    }

    #[test]
    fn win_buckets_tile_and_saturate() {
        for i in 0..WIN_BUCKET_COUNT {
            let lo = win_bucket_low(i);
            assert_eq!(win_bucket_index(lo), i, "low of bucket {i}");
            let mid = win_bucket_mid(i);
            assert!(mid >= lo, "mid of bucket {i}");
            if i + 1 < WIN_BUCKET_COUNT {
                assert!(mid < win_bucket_low(i + 1), "mid of bucket {i}");
            }
        }
        // Saturation: anything ≥ 2^36 ns lands in the top bucket.
        assert_eq!(win_bucket_index(1 << 36), WIN_BUCKET_COUNT - 1);
        assert_eq!(win_bucket_index(u64::MAX), WIN_BUCKET_COUNT - 1);
        // Relative error bound for in-range values.
        for &v in &[100u64, 12_345, 1_000_000, 123_456_789, 10_000_000_000] {
            let m = win_bucket_mid(win_bucket_index(v));
            let err = (m as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 15.0, "v={v} mid={m} err={err}");
        }
    }

    #[test]
    fn horizons_forget_old_slots() {
        let w = window();
        // 5 samples in second 0, 3 in second 30, 1 in second 59.
        for i in 0..5 {
            w.record_at(100 + i, 1000);
        }
        for _ in 0..3 {
            w.record_at(30 * S + 7, 2000);
        }
        w.record_at(59 * S + 3, 4000);
        let now = 59 * S + 10;
        assert_eq!(w.snapshot_at(now, 1).count, 1);
        assert_eq!(w.snapshot_at(now, 10).count, 1);
        assert_eq!(w.snapshot_at(now, 30).count, 4); // covers seconds 30..=59
        assert_eq!(w.snapshot_at(now, 60).count, 9);
        // 2 minutes later everything has aged out.
        assert_eq!(w.snapshot_at(now + 120 * S, 60).count, 0);
    }

    #[test]
    fn slots_are_reclaimed_on_ring_reuse() {
        let w = SlidingWindow::new(Duration::from_secs(1), 4);
        w.record_at(0, 100);
        w.record_at(1, 100);
        // Epoch 4 reuses epoch 0's ring slot: the old samples must go.
        w.record_at(4 * S, 700);
        let snap = w.snapshot_at(4 * S, 3);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.max_ns, 700);
    }

    #[test]
    fn rates_and_quantiles() {
        let w = window();
        for i in 0..100u64 {
            w.record_at(i * 10_000_000, 1_000_000 * (1 + i % 10)); // 1..10 ms over 1 s
        }
        let s = w.snapshot_at(999_999_999, 1);
        assert_eq!(s.count, 100);
        assert!((s.rate_per_sec() - 100.0).abs() < 1e-9);
        let p50 = s.p50() as f64;
        assert!((p50 - 5_000_000.0).abs() / 5_000_000.0 < 0.07, "p50={p50}");
        let p99 = s.p99() as f64;
        assert!((p99 - 10_000_000.0).abs() / 10_000_000.0 < 0.07, "p99={p99}");
        assert_eq!(s.max_ns, 10_000_000);
        assert!((s.mean_ns() - 5_500_000.0).abs() < 1.0);
    }

    #[test]
    fn stale_samples_are_dropped_not_misfiled() {
        let w = SlidingWindow::new(Duration::from_secs(1), 4);
        w.record_at(10 * S, 100);
        // A recorder whose timestamp maps to the same ring slot but an
        // older epoch must not pollute the newer slot.
        w.record_at(6 * S, 999);
        assert_eq!(w.snapshot_at(10 * S, 1).count, 1);
    }

    #[test]
    fn concurrent_recording_within_one_slot_is_exact() {
        use std::sync::Arc;
        let w = Arc::new(window());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for k in 0..10_000u64 {
                        // All in slot 0 of virtual time.
                        w.record_at(1000 + k % 7, 100 + t * 13);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(w.snapshot_at(2000, 1).count, 40_000);
    }

    #[test]
    fn windowed_max_resets_with_time() {
        let m = WindowedMax::new(Duration::from_secs(1), 64);
        m.record_at(0, 50);
        m.record_at(5 * S, 9);
        assert_eq!(m.max_at(5 * S, 10), 50);
        // A minute later the spike has aged out but the recent value shows.
        m.record_at(70 * S, 9);
        assert_eq!(m.max_at(70 * S, 60), 9);
        assert_eq!(m.max_at(200 * S, 60), 0);
    }
}
