//! Lock-free log-bucketed latency histograms.
//!
//! The layout follows the HdrHistogram idea: values (nanoseconds) below
//! [`SUB_BUCKETS`] land in exact unit-width buckets; above that, each
//! power-of-two octave is split into [`SUB_BUCKETS`] sub-buckets, so the
//! bucket width is always at most `value / SUB_BUCKETS`. Reporting the
//! bucket midpoint therefore bounds the relative error by
//! `1 / (2 * SUB_BUCKETS)` ≈ 1.6 %, inside the 2.5 % budget the
//! observability spec asks for.
//!
//! `record` is a single `fetch_add` on an `AtomicU64` (plus two more for
//! the count/sum aggregates) — no locks, no allocation — so it is safe to
//! call from the query hot path and from inside pool workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the number of sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32): bounds the relative quantile error at
/// `1/64` when the bucket midpoint is reported.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` nanosecond range.
pub const BUCKET_COUNT: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB_BUCKETS as usize;

/// Map a nanosecond value to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
    (octave << SUB_BITS) + SUB_BUCKETS as usize + sub
}

/// Inclusive lower bound of bucket `i`.
#[inline]
pub fn bucket_low(i: usize) -> u64 {
    if i < SUB_BUCKETS as usize {
        return i as u64;
    }
    let j = i - SUB_BUCKETS as usize;
    let octave = (j >> SUB_BITS) as u32;
    let sub = (j as u64) & (SUB_BUCKETS - 1);
    (SUB_BUCKETS + sub) << octave
}

/// Exclusive upper bound of bucket `i`.
#[inline]
pub fn bucket_high(i: usize) -> u64 {
    if i < SUB_BUCKETS as usize {
        return i as u64 + 1;
    }
    let j = i - SUB_BUCKETS as usize;
    let octave = (j >> SUB_BITS) as u32;
    bucket_low(i).saturating_add(1u64 << octave)
}

/// Representative value reported for bucket `i` (midpoint; exact for
/// unit-width buckets).
#[inline]
pub fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_low(i);
    let hi = bucket_high(i);
    if hi - lo <= 1 {
        lo
    } else {
        lo + (hi - lo) / 2
    }
}

/// A concurrent latency histogram. All mutation is via atomic adds.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record a raw nanosecond value. Lock-free: three relaxed atomic adds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record an elapsed [`Duration`].
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Take a point-in-time copy. Concurrent recorders may land between the
    /// aggregate and bucket reads; the snapshot normalises `count` to the
    /// bucket total so quantiles stay internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot { count, sum_ns, buckets }
    }
}

/// An immutable, mergeable copy of a [`Histogram`].
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_ns: u64,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge another snapshot into this one (shard → global roll-up).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        if self.buckets.is_empty() {
            self.buckets = other.buckets.clone();
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Quantile in nanoseconds (nearest-rank over the bucketed counts).
    /// `q` is clamped to `[0, 1]`; returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i);
            }
        }
        bucket_mid(self.buckets.len().saturating_sub(1))
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Maximum recorded value, reported as its bucket midpoint.
    pub fn max_ns(&self) -> u64 {
        for i in (0..self.buckets.len()).rev() {
            if self.buckets[i] > 0 {
                return bucket_mid(i);
            }
        }
        0
    }

    /// Cumulative counts at power-of-two nanosecond boundaries, for
    /// Prometheus `le` buckets. Returns `(upper_bound_ns, cumulative)`
    /// pairs with strictly increasing bounds; the `+Inf` bucket (== total
    /// count) is appended by the exposition writer, not here.
    ///
    /// Bounds run from 1.024 µs to ~17.2 s (2^10..=2^34 ns), which spans
    /// every latency this engine records (cache hits through full
    /// checkpoints). Because every fine bucket at those scales is fully
    /// contained in one power-of-two octave, the cumulative counts are
    /// exact sums of fine buckets.
    pub fn le_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(25);
        let mut cum = 0u64;
        let mut i = 0usize;
        for exp in 10..=34u32 {
            let bound = 1u64 << exp;
            while i < self.buckets.len() && bucket_high(i) <= bound.saturating_add(1) {
                cum += self.buckets[i];
                i += 1;
            }
            out.push((bound, cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS {
            let i = bucket_index(v);
            assert_eq!(bucket_low(i), v);
            assert_eq!(bucket_mid(i), v);
        }
    }

    #[test]
    fn buckets_tile_the_line() {
        // Every bucket's high is the next bucket's low: no gaps, no overlap.
        for i in 0..BUCKET_COUNT - 1 {
            assert_eq!(bucket_high(i), bucket_low(i + 1), "bucket {i}");
        }
        // Spot-check round trips across octaves.
        for &v in &[0u64, 1, 31, 32, 33, 63, 64, 65, 1000, 1 << 20, (1 << 40) + 12345] {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v, "v={v} i={i}");
            assert!(v < bucket_high(i), "v={v} i={i}");
        }
        // The top bucket saturates instead of overflowing.
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_high(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn midpoint_error_is_bounded() {
        for &v in &[100u64, 999, 12_345, 1_000_000, 123_456_789, 10_000_000_000] {
            let m = bucket_mid(bucket_index(v));
            let err = (m as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 60.0, "v={v} mid={m} err={err}");
        }
    }

    #[test]
    fn quantiles_and_merge() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record_ns(v * 1000); // 1µs..1ms
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let p50 = s.p50() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.025, "p50={p50}");
        let p99 = s.p99() as f64;
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.025, "p99={p99}");

        let h2 = Histogram::new();
        for _ in 0..1000 {
            h2.record_ns(2_000_000);
        }
        let mut merged = s.clone();
        merged.merge(&h2.snapshot());
        assert_eq!(merged.count, 2000);
        let p90 = merged.p90() as f64;
        assert!((p90 - 2_000_000.0).abs() / 2_000_000.0 < 0.025, "p90={p90}");
    }

    #[test]
    fn le_buckets_are_monotone_and_bounded_by_count() {
        let h = Histogram::new();
        for v in [100u64, 2000, 50_000, 1 << 22, 1 << 30, 1 << 36, u64::MAX] {
            h.record_ns(v);
        }
        let s = h.snapshot();
        let le = s.le_buckets();
        assert_eq!(le.len(), 25);
        let mut prev_bound = 0;
        let mut prev_cum = 0;
        for &(bound, cum) in &le {
            assert!(bound > prev_bound);
            assert!(cum >= prev_cum);
            assert!(cum <= s.count);
            prev_bound = bound;
            prev_cum = cum;
        }
        // 100ns and 2µs and 50µs and 4MiB-ns and 1GiB-ns are <= 2^34;
        // 2^36 and u64::MAX are only in +Inf.
        assert_eq!(le.last().unwrap().1, 5);
    }

    #[test]
    fn concurrent_records_all_land() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for k in 0..10_000u64 {
                        h.record_ns(1 + t * 1000 + k % 97);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 40_000);
    }
}
