//! Per-query span tracing, a bounded ring of recent traces, and a
//! slow-query log.
//!
//! A [`Trace`] is created at request dispatch and threaded (by shared
//! handle) through the layers a request crosses: cache lookup, scatter,
//! per-shard search, gather, why-not phases. Each layer opens a
//! [`SpanGuard`] that records its wall time on drop, or stamps an
//! externally-timed span with [`Trace::add_span_elapsed`] (used by pool
//! workers that already measured their own duration).
//!
//! Finished traces go into a [`TraceLog`]: a fixed-capacity ring of the
//! most recent traces plus a top-N slowest list. The ring uses one tiny
//! per-slot mutex (never contended across slots) so readers can scrape
//! `GET /debug/slow` without pausing writers; the query hot path itself
//! holds no lock while spans are open — span records are appended under
//! the trace's own uncontended mutex only at span close.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sentinel parent id for root spans.
pub const NO_PARENT: u32 = u32::MAX;

/// One closed span inside a trace.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub id: u32,
    pub parent: u32,
    pub name: String,
    /// Offset from the trace start, nanoseconds.
    pub start_ns: u64,
    pub dur_ns: u64,
}

struct TraceInner {
    label: String,
    started: Instant,
    next_id: AtomicU32,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A shared handle to an in-flight trace. Cloning is cheap (`Arc`).
#[derive(Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl Trace {
    pub fn new(label: impl Into<String>) -> Trace {
        Trace {
            inner: Arc::new(TraceInner {
                label: label.into(),
                started: Instant::now(),
                next_id: AtomicU32::new(0),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.inner.started.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Open a root span; it records itself when the guard drops.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        self.span_with_parent(NO_PARENT, name)
    }

    fn span_with_parent(&self, parent: u32, name: impl Into<String>) -> SpanGuard {
        SpanGuard {
            trace: self.clone(),
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name: name.into(),
            start_ns: self.now_ns(),
        }
    }

    /// Record a span that ends now and started `dur_ns` ago (for work
    /// timed externally, e.g. inside a pool worker). Returns the span id.
    pub fn add_span_elapsed(&self, parent: u32, name: impl Into<String>, dur_ns: u64) -> u32 {
        let end = self.now_ns();
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(SpanRecord {
            id,
            parent,
            name: name.into(),
            start_ns: end.saturating_sub(dur_ns),
            dur_ns,
        });
        id
    }

    fn push(&self, rec: SpanRecord) {
        self.inner.spans.lock().unwrap_or_else(|e| e.into_inner()).push(rec);
    }

    pub fn elapsed_ns(&self) -> u64 {
        self.now_ns()
    }

    /// Close the trace: copy out the recorded spans with the total elapsed
    /// time. The handle stays usable (other clones may still be alive),
    /// so `finish` takes `&self`.
    pub fn finish(&self) -> FinishedTrace {
        let total_ns = self.now_ns();
        let mut spans = self.inner.spans.lock().unwrap_or_else(|e| e.into_inner()).clone();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        FinishedTrace {
            label: self.inner.label.clone(),
            total_ns,
            spans,
            seq: 0,
        }
    }
}

/// RAII span: records its duration into the owning trace on drop.
pub struct SpanGuard {
    trace: Trace,
    id: u32,
    parent: u32,
    name: String,
    start_ns: u64,
}

impl SpanGuard {
    /// The id of this span, usable as a parent for externally-timed spans.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Open a child span of this one.
    pub fn child(&self, name: impl Into<String>) -> SpanGuard {
        self.trace.span_with_parent(self.id, name)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = self.trace.now_ns();
        self.trace.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
        });
    }
}

/// A completed trace: label, total latency, and the closed spans sorted by
/// start offset.
#[derive(Clone, Debug)]
pub struct FinishedTrace {
    pub label: String,
    pub total_ns: u64,
    pub spans: Vec<SpanRecord>,
    /// Monotone admission number assigned by the [`TraceLog`].
    pub seq: u64,
}

impl FinishedTrace {
    /// Children of `parent` (use [`NO_PARENT`] for roots), in start order.
    pub fn children_of(&self, parent: u32) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == parent)
    }
}

struct SlowLog {
    cap: usize,
    /// Fast-path admission floor: the smallest total_ns currently kept.
    /// Traces faster than this skip the lock entirely once the log is full.
    floor_ns: AtomicU64,
    entries: Mutex<Vec<Arc<FinishedTrace>>>,
}

impl SlowLog {
    fn new(cap: usize) -> SlowLog {
        SlowLog {
            cap,
            floor_ns: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    fn offer(&self, t: &Arc<FinishedTrace>) {
        if self.cap == 0 || t.total_ns < self.floor_ns.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.push(Arc::clone(t));
        entries.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.seq.cmp(&b.seq)));
        entries.truncate(self.cap);
        if entries.len() == self.cap {
            self.floor_ns
                .store(entries.last().map(|e| e.total_ns).unwrap_or(0), Ordering::Relaxed);
        }
    }

    fn slowest(&self) -> Vec<Arc<FinishedTrace>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Bounded store of finished traces: a ring of the most recent plus the
/// top-N slowest.
pub struct TraceLog {
    ring: Vec<Mutex<Option<Arc<FinishedTrace>>>>,
    head: AtomicUsize,
    seq: AtomicU64,
    slow: SlowLog,
}

impl TraceLog {
    /// `ring_cap` bounds the recent-trace ring; `slow_cap` bounds the
    /// slow-query log. Either may be 0 to disable that half.
    pub fn new(ring_cap: usize, slow_cap: usize) -> TraceLog {
        TraceLog {
            ring: (0..ring_cap).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            slow: SlowLog::new(slow_cap),
        }
    }

    /// Admit a finished trace; returns the shared handle (with its
    /// admission `seq` stamped) so callers can render it inline.
    pub fn record(&self, mut t: FinishedTrace) -> Arc<FinishedTrace> {
        t.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let t = Arc::new(t);
        if !self.ring.is_empty() {
            let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.ring.len();
            *self.ring[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&t));
        }
        self.slow.offer(&t);
        t
    }

    /// Number of traces admitted so far.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// True when both capacities are 0 — nothing offered would be
    /// retained, so callers can skip building traces entirely.
    pub fn is_disabled(&self) -> bool {
        self.ring.is_empty() && self.slow.cap == 0
    }

    /// The retained recent traces, most recent first.
    pub fn recent(&self) -> Vec<Arc<FinishedTrace>> {
        let mut out: Vec<Arc<FinishedTrace>> = self
            .ring
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        out.sort_by_key(|t| std::cmp::Reverse(t.seq));
        out
    }

    /// The slow-query log, slowest first.
    pub fn slowest(&self) -> Vec<Arc<FinishedTrace>> {
        self.slow.slowest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_sort() {
        let t = Trace::new("q1");
        {
            let root = t.span("dispatch");
            {
                let _lookup = root.child("cache_lookup");
            }
            let scatter = root.child("scatter");
            t.add_span_elapsed(scatter.id(), "shard0", 1000);
            t.add_span_elapsed(scatter.id(), "shard1", 2000);
        }
        let f = t.finish();
        assert_eq!(f.spans.len(), 5);
        let roots: Vec<_> = f.children_of(NO_PARENT).collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "dispatch");
        let kids: Vec<_> = f.children_of(roots[0].id).map(|s| s.name.clone()).collect();
        assert!(kids.contains(&"cache_lookup".to_string()));
        assert!(kids.contains(&"scatter".to_string()));
        let scatter_id = f.spans.iter().find(|s| s.name == "scatter").unwrap().id;
        assert_eq!(f.children_of(scatter_id).count(), 2);
        assert!(f.total_ns >= f.spans.iter().map(|s| s.dur_ns).max().unwrap());
    }

    #[test]
    fn ring_wraps_and_keeps_most_recent() {
        let log = TraceLog::new(4, 0);
        for i in 0..10 {
            log.record(Trace::new(format!("t{i}")).finish());
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].label, "t9");
        assert_eq!(recent[3].label, "t6");
        assert_eq!(log.recorded(), 10);
    }

    #[test]
    fn slow_log_keeps_top_n_by_duration() {
        let log = TraceLog::new(2, 3);
        for (label, ns) in [("a", 50), ("b", 500), ("c", 10), ("d", 300), ("e", 400), ("f", 5)] {
            let mut f = Trace::new(label).finish();
            f.total_ns = ns;
            log.record(f);
        }
        let slow = log.slowest();
        let labels: Vec<_> = slow.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(labels, vec!["b", "e", "d"]);
    }

    #[test]
    fn zero_capacity_is_safe() {
        let log = TraceLog::new(0, 0);
        log.record(Trace::new("x").finish());
        assert!(log.recent().is_empty());
        assert!(log.slowest().is_empty());
    }
}
