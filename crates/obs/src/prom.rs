//! Prometheus text exposition (format 0.0.4): a small writer used by the
//! server's `GET /metrics`, and a validating parser shared by the unit
//! tests and the CI smoke check so both sides agree on "well-formed".

use crate::hist::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a label value per the exposition format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf".into() } else { "-Inf".into() }
    } else if v.is_nan() {
        "NaN".into()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// One labelled sample: label pairs plus the value.
pub type LabelledValue<'a> = (Vec<(&'a str, String)>, f64);
/// One labelled histogram series: label pairs plus the snapshot.
pub type LabelledHistogram<'a> = (Vec<(&'a str, String)>, HistogramSnapshot);

/// Incremental writer for one exposition document. Emit each metric
/// family exactly once (HELP + TYPE + samples); `finish` returns the
/// document text.
#[derive(Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// A counter family with one unlabelled sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.counter_family(name, help, &[(vec![], value as f64)]);
    }

    /// A counter family with one sample per label set.
    pub fn counter_family(&mut self, name: &str, help: &str, series: &[LabelledValue]) {
        self.header(name, help, "counter");
        for (labels, value) in series {
            let _ = writeln!(self.out, "{name}{} {}", render_labels(labels), format_value(*value));
        }
    }

    /// A gauge family with one unlabelled sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.gauge_family(name, help, &[(vec![], value)]);
    }

    /// A gauge family with one sample per label set.
    pub fn gauge_family(&mut self, name: &str, help: &str, series: &[LabelledValue]) {
        self.header(name, help, "gauge");
        for (labels, value) in series {
            let _ = writeln!(self.out, "{name}{} {}", render_labels(labels), format_value(*value));
        }
    }

    /// A histogram family with one unlabelled series.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        self.histogram_family(name, help, &[(vec![], snap.clone())]);
    }

    /// A histogram family with one series per label set. Durations are
    /// exported in seconds, per Prometheus convention.
    pub fn histogram_family(
        &mut self,
        name: &str,
        help: &str,
        series: &[LabelledHistogram],
    ) {
        self.header(name, help, "histogram");
        for (labels, snap) in series {
            for (bound_ns, cum) in snap.le_buckets() {
                let mut labels_le = labels.clone();
                labels_le.push(("le", format!("{}", bound_ns as f64 / 1e9)));
                let _ = writeln!(
                    self.out,
                    "{name}_bucket{} {cum}",
                    render_labels(&labels_le)
                );
            }
            let mut labels_inf = labels.clone();
            labels_inf.push(("le", "+Inf".to_string()));
            let _ = writeln!(self.out, "{name}_bucket{} {}", render_labels(&labels_inf), snap.count);
            let _ = writeln!(
                self.out,
                "{name}_sum{} {}",
                render_labels(labels),
                format_value(snap.sum_ns as f64 / 1e9)
            );
            let _ = writeln!(self.out, "{name}_count{} {}", render_labels(labels), snap.count);
        }
    }

    pub fn finish(self) -> String {
        self.out
    }
}

/// Summary of a validated exposition document.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ExpositionSummary {
    pub families: usize,
    pub histograms: usize,
    pub samples: usize,
    pub family_names: Vec<String>,
}

impl ExpositionSummary {
    pub fn has_family(&self, name: &str) -> bool {
        self.family_names.iter().any(|n| n == name)
    }
}

fn is_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse::<f64>().map_err(|_| format!("bad sample value {s:?}")),
    }
}

/// Parse `{k="v",...}` starting after the metric name. Returns the label
/// pairs and the rest of the line (which must hold the value).
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

fn parse_labels(s: &str) -> Result<ParsedLabels<'_>, String> {
    debug_assert!(s.starts_with('{'));
    let mut labels = Vec::new();
    let mut rest = &s[1..];
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix('}') {
            return Ok((labels, r));
        }
        let eq = rest.find('=').ok_or_else(|| format!("label without '=' near {rest:?}"))?;
        let name = rest[..eq].trim();
        if !is_label_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label value for {name:?} not quoted")),
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    c => return Err(format!("bad escape '\\{c}' in label {name:?}")),
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value for {name:?}"))?;
        labels.push((name.to_string(), value));
        rest = rest[end + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.starts_with('}') {
            return Err(format!("expected ',' or '}}' after label {name:?}"));
        }
    }
}

/// One parsed sample: full sample name, labels, value.
type Sample = (String, Vec<(String, String)>, f64);

#[derive(Default)]
struct Family {
    help: bool,
    kind: Option<String>,
    samples: Vec<Sample>,
}

/// Base family name for a sample, honouring histogram/summary suffixes.
fn family_of<'a>(name: &'a str, families: &BTreeMap<String, Family>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if let Some(fam) = families.get(base) {
                if matches!(fam.kind.as_deref(), Some("histogram") | Some("summary")) {
                    return base;
                }
            }
        }
    }
    name
}

/// Validate a Prometheus text exposition document. Checks, per the 0.0.4
/// format: HELP/TYPE lines precede samples and appear at most once per
/// family; metric and label names are legal; label values are quoted with
/// legal escapes; values parse; histogram families have per-series
/// monotone cumulative buckets, a `+Inf` bucket, and matching `_count`
/// and `_bucket{le="+Inf"}`.
pub fn validate_exposition(text: &str) -> Result<ExpositionSummary, String> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest.split_once(' ').unwrap_or((rest, ""));
            if !is_metric_name(name) {
                return Err(err(format!("bad metric name in HELP: {name:?}")));
            }
            let fam = families.entry(name.to_string()).or_default();
            if fam.help {
                return Err(err(format!("duplicate HELP for {name}")));
            }
            if !fam.samples.is_empty() {
                return Err(err(format!("HELP for {name} after its samples")));
            }
            fam.help = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| err(format!("TYPE line without a type: {rest:?}")))?;
            if !is_metric_name(name) {
                return Err(err(format!("bad metric name in TYPE: {name:?}")));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(err(format!("unknown metric type {kind:?} for {name}")));
            }
            let fam = families.entry(name.to_string()).or_default();
            if fam.kind.is_some() {
                return Err(err(format!("duplicate TYPE for {name}")));
            }
            if !fam.samples.is_empty() {
                return Err(err(format!("TYPE for {name} after its samples")));
            }
            fam.kind = Some(kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(|c: char| c == '{' || c.is_ascii_whitespace())
            .ok_or_else(|| err(format!("sample without value: {line:?}")))?;
        let name = &line[..name_end];
        if !is_metric_name(name) {
            return Err(err(format!("bad metric name {name:?}")));
        }
        let (labels, rest) = if line[name_end..].starts_with('{') {
            parse_labels(&line[name_end..]).map_err(err)?
        } else {
            (Vec::new(), &line[name_end..])
        };
        {
            let mut seen = Vec::new();
            for (k, _) in &labels {
                if seen.contains(&k) {
                    return Err(err(format!("duplicate label {k:?} on {name}")));
                }
                seen.push(k);
            }
        }
        let mut parts = rest.split_ascii_whitespace();
        let value = parse_value(parts.next().ok_or_else(|| err(format!("sample {name} missing value")))?)
            .map_err(err)?;
        if let Some(ts) = parts.next() {
            ts.parse::<i64>().map_err(|_| err(format!("bad timestamp {ts:?}")))?;
        }
        if parts.next().is_some() {
            return Err(err(format!("trailing tokens on sample {name}")));
        }
        let base = family_of(name, &families).to_string();
        families
            .entry(base)
            .or_default()
            .samples
            .push((name.to_string(), labels, value));
    }

    let mut summary = ExpositionSummary::default();
    for (name, fam) in &families {
        let kind = fam
            .kind
            .as_deref()
            .ok_or_else(|| format!("family {name} has no TYPE"))?;
        if !fam.help {
            return Err(format!("family {name} has no HELP"));
        }
        // A declared family with zero samples is fine (a histogram whose
        // label sets are all empty this scrape still keeps its HELP/TYPE
        // header so the family doesn't flap in and out of existence).
        if kind == "histogram" {
            validate_histogram(name, fam)?;
            summary.histograms += 1;
        }
        summary.families += 1;
        summary.samples += fam.samples.len();
        summary.family_names.push(name.clone());
    }
    Ok(summary)
}

fn validate_histogram(name: &str, fam: &Family) -> Result<(), String> {
    // Group by the label set minus `le`.
    type Series = (Vec<(f64, f64)>, Option<f64>, Option<f64>);
    let mut series: BTreeMap<String, Series> = BTreeMap::new();
    for (sample_name, labels, value) in &fam.samples {
        let key: String = {
            let mut l: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            l.sort();
            l.join(",")
        };
        let entry = series.entry(key).or_default();
        if sample_name == &format!("{name}_bucket") {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("{name}_bucket sample without le label"))?;
            entry.0.push((parse_value(&le.1)?, *value));
        } else if sample_name == &format!("{name}_sum") {
            entry.1 = Some(*value);
        } else if sample_name == &format!("{name}_count") {
            entry.2 = Some(*value);
        } else {
            return Err(format!("unexpected sample {sample_name} in histogram {name}"));
        }
    }
    for (key, (buckets, sum, count)) in &series {
        let what = if key.is_empty() { name.to_string() } else { format!("{name}{{{key}}}") };
        if buckets.is_empty() {
            return Err(format!("histogram {what} has no buckets"));
        }
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = -1.0;
        for &(le, cum) in buckets {
            if le <= prev_le {
                return Err(format!("histogram {what}: le bounds not increasing ({le} after {prev_le})"));
            }
            if cum < prev_cum {
                return Err(format!("histogram {what}: bucket counts not monotone ({cum} after {prev_cum})"));
            }
            prev_le = le;
            prev_cum = cum;
        }
        let last = buckets.last().unwrap();
        if !last.0.is_infinite() {
            return Err(format!("histogram {what}: missing +Inf bucket"));
        }
        let count = count.ok_or_else(|| format!("histogram {what}: missing _count"))?;
        sum.ok_or_else(|| format!("histogram {what}: missing _sum"))?;
        if (last.1 - count).abs() > f64::EPSILON * count.abs().max(1.0) {
            return Err(format!(
                "histogram {what}: +Inf bucket {} != _count {count}",
                last.1
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn writer_output_validates() {
        let h = Histogram::new();
        for v in [1_000u64, 50_000, 2_000_000, 30_000_000_000] {
            h.record_ns(v);
        }
        let mut w = PromText::new();
        w.counter("yask_queries_total", "Total queries.", 42);
        w.gauge("yask_queue_depth", "Current pool queue depth.", 3.0);
        w.counter_family(
            "yask_shard_queries_total",
            "Per-shard queries.",
            &[
                (vec![("shard", "0".into())], 10.0),
                (vec![("shard", "1".into())], 12.0),
            ],
        );
        w.histogram("yask_topk_latency_seconds", "Top-k latency.", &h.snapshot());
        w.histogram_family(
            "yask_whynot_latency_seconds",
            "Why-not latency.",
            &[
                (vec![("module", "explain".into())], h.snapshot()),
                (vec![("module", "keyword".into())], h.snapshot()),
            ],
        );
        let text = w.finish();
        let summary = validate_exposition(&text).expect("must validate");
        assert_eq!(summary.families, 5);
        assert_eq!(summary.histograms, 2);
        assert!(summary.has_family("yask_topk_latency_seconds"));
    }

    #[test]
    fn header_only_families_validate() {
        // A family may be declared (HELP + TYPE) with zero samples this
        // scrape — e.g. a per-shard histogram before any shard exists.
        let text = "# HELP yask_empty_seconds x\n# TYPE yask_empty_seconds histogram\n\
                    # HELP yask_live_total y\n# TYPE yask_live_total counter\nyask_live_total 1\n";
        let summary = validate_exposition(text).expect("header-only family must validate");
        assert_eq!(summary.families, 2);
        assert_eq!(summary.histograms, 1);
        assert_eq!(summary.samples, 1);
        assert!(summary.has_family("yask_empty_seconds"));
        // TYPE is still required once anything is declared or sampled.
        assert!(validate_exposition("# HELP f h\n").is_err());
    }

    #[test]
    fn label_escaping_round_trips() {
        let mut w = PromText::new();
        w.counter_family(
            "x_total",
            "Escapes.",
            &[(vec![("k", "a\"b\\c\nd".into())], 1.0)],
        );
        let text = w.finish();
        validate_exposition(&text).expect("escaped labels must validate");
        assert!(text.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn rejects_malformed_documents() {
        // Sample without TYPE.
        assert!(validate_exposition("foo 1\n").is_err());
        // Duplicate TYPE.
        assert!(validate_exposition("# HELP f h\n# TYPE f counter\n# TYPE f counter\nf 1\n").is_err());
        // Bad label syntax.
        assert!(validate_exposition("# HELP f h\n# TYPE f counter\nf{k=v} 1\n").is_err());
        // Histogram without +Inf.
        let missing_inf = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate_exposition(missing_inf).unwrap_err().contains("+Inf"));
        // Non-monotone buckets.
        let nonmono = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(nonmono).unwrap_err().contains("monotone"));
        // +Inf != count.
        let badcount = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n";
        assert!(validate_exposition(badcount).is_err());
        // Bad value.
        assert!(validate_exposition("# HELP f h\n# TYPE f counter\nf abc\n").is_err());
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(0.25), "0.25");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
    }
}
