//! Randomized smoke tests for rectangle intersection and MBR enlargement
//! round-trips — the invariants the R-tree layers above lean on.

use yask_geo::{Point, Rect};

/// Tiny deterministic LCG so this crate stays dependency-free.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn rect(&mut self) -> Rect {
        let (x0, y0) = (self.next_f64(), self.next_f64());
        let (w, h) = (self.next_f64() * 0.5, self.next_f64() * 0.5);
        Rect::from_coords(x0, y0, x0 + w, y0 + h)
    }

    fn point(&mut self) -> Point {
        Point::new(self.next_f64() * 1.5 - 0.25, self.next_f64() * 1.5 - 0.25)
    }
}

#[test]
fn union_round_trips_with_expand_and_contains_both() {
    let mut rng = Lcg(0xDECAF);
    for _ in 0..500 {
        let a = rng.rect();
        let b = rng.rect();
        let u = a.union(&b);
        assert!(u.contains_rect(&a), "union must cover {a:?}");
        assert!(u.contains_rect(&b), "union must cover {b:?}");
        // expand() is the in-place spelling of union().
        let mut e = a;
        e.expand(&b);
        assert_eq!(e, u);
        // Union is commutative and idempotent against its result.
        assert_eq!(b.union(&a), u);
        assert_eq!(u.union(&a), u);
    }
}

#[test]
fn enlargement_matches_union_area_delta() {
    let mut rng = Lcg(0xBEEF);
    for _ in 0..500 {
        let a = rng.rect();
        let b = rng.rect();
        let delta = a.enlargement(&b);
        assert!(delta >= -1e-12, "enlargement cannot be negative: {delta}");
        let direct = a.union(&b).area() - a.area();
        assert!(
            (delta - direct).abs() < 1e-12,
            "enlargement {delta} != union area delta {direct}"
        );
        if a.contains_rect(&b) {
            assert!(delta.abs() < 1e-12, "contained rect must not enlarge");
        }
    }
}

#[test]
fn intersection_predicates_agree_with_overlap_area() {
    let mut rng = Lcg(0xF00D);
    for _ in 0..500 {
        let a = rng.rect();
        let b = rng.rect();
        let overlap = a.overlap_area(&b);
        assert!(overlap >= 0.0);
        assert_eq!(a.intersects(&b), b.intersects(&a), "intersects is symmetric");
        if overlap > 0.0 {
            assert!(a.intersects(&b), "positive overlap implies intersection");
        }
        if !a.intersects(&b) {
            assert_eq!(overlap, 0.0, "disjoint rects cannot overlap");
        }
        // Overlap never exceeds either area.
        assert!(overlap <= a.area() + 1e-12);
        assert!(overlap <= b.area() + 1e-12);
    }
}

#[test]
fn point_distances_bracket_every_corner() {
    let mut rng = Lcg(0xACE);
    for _ in 0..500 {
        let r = rng.rect();
        let p = rng.point();
        let (lo, hi) = (r.min_dist2(&p), r.max_dist2(&p));
        assert!(lo <= hi + 1e-12);
        if r.contains_point(&p) {
            assert_eq!(lo, 0.0, "inside point has zero min dist");
        }
        for corner in [
            r.lo,
            r.hi,
            Point::new(r.lo.x, r.hi.y),
            Point::new(r.hi.x, r.lo.y),
        ] {
            let d = p.dist2(&corner);
            assert!(d + 1e-12 >= lo, "corner closer than min_dist2");
            assert!(d <= hi + 1e-12, "corner farther than max_dist2");
        }
    }
}
