//! Geometry substrate for YASK.
//!
//! The paper's ranking function (Eqn (1)) uses a *normalized* Euclidean
//! distance `SDist(o, q) ∈ [0, 1]`. This crate provides:
//!
//! * [`Point`] — a 2-D point with Euclidean distance,
//! * [`Rect`] — an axis-aligned rectangle (R-tree MBR) with min/max
//!   point-distance and the usual area/overlap algebra,
//! * [`Space`] — the data-space bounding box that turns raw distances into
//!   the normalized `SDist` used everywhere above this crate.
//!
//! All types are plain `Copy` data; nothing here allocates.

pub mod point;
pub mod rect;
pub mod space;

pub use point::Point;
pub use rect::Rect;
pub use space::Space;
