//! 2-D points and Euclidean distance.

use serde::{Deserialize, Serialize};

/// A point in the 2-D data space.
///
/// For the hotel datasets the coordinates are (longitude, latitude) treated
/// as planar — exactly what the paper does by computing Euclidean distance
/// on the stored coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (x / longitude).
    pub x: f64,
    /// Vertical coordinate (y / latitude).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`. Preferred in comparisons:
    /// avoids the square root and preserves order.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// True when both coordinates are finite (valid for indexing).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(b.dist(&a), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(1.5, -2.5);
        assert_eq!(p.dist(&p), 0.0);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(&b), Point::new(1.0, 3.0));
        assert_eq!(a.max(&b), Point::new(2.0, 5.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn tuple_conversion() {
        let p: Point = (7.0, 8.0).into();
        assert_eq!(p, Point::new(7.0, 8.0));
    }
}
