//! Axis-aligned rectangles (R-tree minimum bounding rectangles).

use serde::{Deserialize, Serialize};

use crate::point::Point;

/// An axis-aligned rectangle, the MBR stored in every R-tree node.
///
/// Invariant: `lo.x <= hi.x && lo.y <= hi.y` for any rectangle produced by
/// the constructors here (an [`Rect::EMPTY`] sentinel inverts the bounds so
/// that unioning into it behaves as the identity).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl Rect {
    /// The empty rectangle: identity element for [`Rect::union`]. Contains
    /// nothing and intersects nothing.
    pub const EMPTY: Rect = Rect {
        lo: Point::new(f64::INFINITY, f64::INFINITY),
        hi: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Rectangle from corners; panics in debug builds if inverted.
    #[inline]
    pub fn new(lo: Point, hi: Point) -> Self {
        debug_assert!(lo.x <= hi.x && lo.y <= hi.y, "inverted rect {lo:?}..{hi:?}");
        Rect { lo, hi }
    }

    /// Degenerate rectangle covering a single point.
    #[inline]
    pub fn point(p: Point) -> Self {
        Rect { lo: p, hi: p }
    }

    /// Rectangle from raw coordinates.
    #[inline]
    pub fn from_coords(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// True for the [`Rect::EMPTY`] sentinel (or any inverted rect).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.hi.x - self.lo.x).max(0.0)
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.hi.y - self.lo.y).max(0.0)
    }

    /// Area (0 for empty/degenerate rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half-perimeter, the classic R-tree "margin" measure.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Center point. Meaningless for empty rects.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) * 0.5, (self.lo.y + self.hi.y) * 0.5)
    }

    /// Diagonal length — used to normalize distances over a data space.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.lo.dist(&self.hi)
        }
    }

    /// Smallest rectangle covering both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// Grows this rectangle to cover `other`.
    #[inline]
    pub fn expand(&mut self, other: &Rect) {
        *self = self.union(other);
    }

    /// Area increase caused by unioning `other` in — the R-tree insertion
    /// heuristic ("least enlargement").
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// True when the rectangles share at least a boundary point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// True when `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// True when the point lies inside (boundary included).
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        !self.is_empty()
            && self.lo.x <= p.x
            && p.x <= self.hi.x
            && self.lo.y <= p.y
            && p.y <= self.hi.y
    }

    /// Intersection area with `other` (0 when disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        if !self.intersects(other) {
            return 0.0;
        }
        let w = self.hi.x.min(other.hi.x) - self.lo.x.max(other.lo.x);
        let h = self.hi.y.min(other.hi.y) - self.lo.y.max(other.lo.y);
        w.max(0.0) * h.max(0.0)
    }

    /// Squared minimum distance from `p` to any point of the rectangle
    /// (0 when `p` is inside). This is the lower bound used to order R-tree
    /// nodes in best-first search.
    #[inline]
    pub fn min_dist2(&self, p: &Point) -> f64 {
        debug_assert!(!self.is_empty());
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        dx * dx + dy * dy
    }

    /// Minimum distance from `p` to the rectangle.
    #[inline]
    pub fn min_dist(&self, p: &Point) -> f64 {
        self.min_dist2(p).sqrt()
    }

    /// Squared maximum distance from `p` to any point of the rectangle —
    /// realized at one of the four corners.
    #[inline]
    pub fn max_dist2(&self, p: &Point) -> f64 {
        debug_assert!(!self.is_empty());
        let dx = (p.x - self.lo.x).abs().max((p.x - self.hi.x).abs());
        let dy = (p.y - self.lo.y).abs().max((p.y - self.hi.y).abs());
        dx * dx + dy * dy
    }

    /// Maximum distance from `p` to the rectangle.
    #[inline]
    pub fn max_dist(&self, p: &Point) -> f64 {
        self.max_dist2(p).sqrt()
    }
}

impl Default for Rect {
    fn default() -> Self {
        Rect::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn empty_identity_for_union() {
        let a = r(1.0, 1.0, 2.0, 2.0);
        assert_eq!(Rect::EMPTY.union(&a), a);
        assert_eq!(a.union(&Rect::EMPTY), a);
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.area(), 0.0);
        assert_eq!(Rect::EMPTY.margin(), 0.0);
        assert_eq!(Rect::EMPTY.diagonal(), 0.0);
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 4.0);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, 0.0, 3.0, 4.0));
    }

    #[test]
    fn area_margin_center() {
        let a = r(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(a.center(), Point::new(1.0, 1.5));
        assert_eq!(a.diagonal(), 13.0_f64.sqrt());
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(1.0, 1.0, 2.0, 2.0);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn intersection_predicates() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        let c = r(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Touching edges count as intersecting.
        let d = r(2.0, 0.0, 3.0, 2.0);
        assert!(a.intersects(&d));
        assert_eq!(a.overlap_area(&b), 1.0);
        assert_eq!(a.overlap_area(&c), 0.0);
        assert_eq!(a.overlap_area(&d), 0.0);
    }

    #[test]
    fn containment() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        assert!(a.contains_rect(&r(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.contains_rect(&r(3.0, 3.0, 5.0, 5.0)));
        assert!(a.contains_point(&Point::new(0.0, 0.0)));
        assert!(a.contains_point(&Point::new(4.0, 4.0)));
        assert!(!a.contains_point(&Point::new(4.1, 4.0)));
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_dist(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.min_dist(&Point::new(2.0, 2.0)), 0.0);
    }

    #[test]
    fn min_dist_outside() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        // Directly right of the rect.
        assert_eq!(a.min_dist(&Point::new(5.0, 1.0)), 3.0);
        // Diagonal from corner (3,3): distance to (2,2) is sqrt(2).
        assert!((a.min_dist(&Point::new(3.0, 3.0)) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_dist_is_far_corner() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        // From origin corner the far corner is (2,2).
        assert!((a.max_dist(&Point::new(0.0, 0.0)) - 8.0_f64.sqrt()).abs() < 1e-12);
        // From the center the corners are equidistant.
        assert!((a.max_dist(&Point::new(1.0, 1.0)) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_le_max_dist_everywhere() {
        let a = r(-1.0, -2.0, 3.0, 5.0);
        for &(x, y) in &[(0.0, 0.0), (10.0, 10.0), (-5.0, 2.0), (3.0, 5.0)] {
            let p = Point::new(x, y);
            assert!(a.min_dist(&p) <= a.max_dist(&p) + 1e-12);
        }
    }

    #[test]
    fn point_rect_degenerate() {
        let p = Point::new(1.0, 2.0);
        let a = Rect::point(p);
        assert_eq!(a.area(), 0.0);
        assert!(a.contains_point(&p));
        assert_eq!(a.min_dist(&p), 0.0);
        assert_eq!(a.max_dist(&p), 0.0);
    }
}
