//! The normalized data space behind `SDist`.
//!
//! Eqn (1) of the paper requires `SDist(o, q) ∈ [0, 1]`. The standard way
//! (used by the papers YASK builds on) is to divide raw Euclidean distance
//! by the diagonal of the data-space bounding box; [`Space`] owns that
//! bounding box and performs the normalization, for both exact points and
//! R-tree node MBRs (min/max bounds).

use serde::{Deserialize, Serialize};

use crate::point::Point;
use crate::rect::Rect;

/// The bounding box of the data set, with distance normalization.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Space {
    bounds: Rect,
    inv_diagonal: f64,
}

impl Space {
    /// Creates the space from a bounding rectangle.
    ///
    /// A degenerate rectangle (all objects at one point) yields a space in
    /// which every normalized distance is 0 — queries then rank purely by
    /// text, which is the sensible degenerate behaviour.
    pub fn new(bounds: Rect) -> Self {
        let d = bounds.diagonal();
        Space {
            bounds,
            inv_diagonal: if d > 0.0 { 1.0 / d } else { 0.0 },
        }
    }

    /// Space covering a set of points; `None` when the iterator is empty.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut bounds = Rect::EMPTY;
        let mut any = false;
        for p in points {
            bounds.expand(&Rect::point(p));
            any = true;
        }
        any.then(|| Space::new(bounds))
    }

    /// The unit square `[0,1] × [0,1]`, the default synthetic data space.
    pub fn unit() -> Self {
        Space::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0))
    }

    /// The bounding rectangle.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The normalization constant (diagonal length), 0 if degenerate.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.bounds.diagonal()
    }

    /// Normalized distance between two points, clamped into `[0, 1]`.
    ///
    /// Clamping matters for query points *outside* the data space (a user
    /// may click anywhere on the map): the score contribution saturates
    /// instead of going negative.
    #[inline]
    pub fn sdist(&self, a: &Point, b: &Point) -> f64 {
        (a.dist(b) * self.inv_diagonal).min(1.0)
    }

    /// Lower bound of [`Space::sdist`] from `q` to any point in `mbr`.
    #[inline]
    pub fn sdist_min(&self, q: &Point, mbr: &Rect) -> f64 {
        (mbr.min_dist(q) * self.inv_diagonal).min(1.0)
    }

    /// Upper bound of [`Space::sdist`] from `q` to any point in `mbr`.
    #[inline]
    pub fn sdist_max(&self, q: &Point, mbr: &Rect) -> f64 {
        (mbr.max_dist(q) * self.inv_diagonal).min(1.0)
    }
}

impl Default for Space {
    fn default() -> Self {
        Space::unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_space_diagonal() {
        let s = Space::unit();
        assert!((s.diagonal() - 2.0_f64.sqrt()).abs() < 1e-12);
        let d = s.sdist(&Point::new(0.0, 0.0), &Point::new(1.0, 1.0));
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sdist_is_normalized() {
        let s = Space::new(Rect::from_coords(0.0, 0.0, 10.0, 0.0));
        let d = s.sdist(&Point::new(0.0, 0.0), &Point::new(5.0, 0.0));
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sdist_clamps_outside_queries() {
        let s = Space::unit();
        let d = s.sdist(&Point::new(10.0, 10.0), &Point::new(0.0, 0.0));
        assert_eq!(d, 1.0);
    }

    #[test]
    fn degenerate_space_gives_zero_distance() {
        let s = Space::new(Rect::point(Point::new(3.0, 3.0)));
        assert_eq!(s.sdist(&Point::new(0.0, 0.0), &Point::new(9.0, 9.0)), 0.0);
        assert_eq!(s.diagonal(), 0.0);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = vec![
            Point::new(1.0, 1.0),
            Point::new(-2.0, 4.0),
            Point::new(3.0, 0.0),
        ];
        let s = Space::from_points(pts.clone()).unwrap();
        for p in &pts {
            assert!(s.bounds().contains_point(p));
        }
        assert!(Space::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn node_bounds_bracket_point_distance() {
        let s = Space::unit();
        let mbr = Rect::from_coords(0.4, 0.4, 0.6, 0.6);
        let q = Point::new(0.0, 0.0);
        let exact = s.sdist(&q, &Point::new(0.5, 0.5));
        assert!(s.sdist_min(&q, &mbr) <= exact);
        assert!(exact <= s.sdist_max(&q, &mbr));
    }
}
