//! The spatial keyword top-k query engine of YASK (paper §2.1, §3.3).
//!
//! A spatial keyword top-k query `q = (loc, doc, k, ~w)` retrieves the `k`
//! objects maximizing
//!
//! ```text
//! ST(o, q) = ws · (1 − SDist(o, q)) + wt · TSim(o, q)        (Eqn 1)
//! ```
//!
//! with `SDist` the normalized Euclidean distance and `TSim` the Jaccard
//! similarity (Eqn 2) by default. This crate provides:
//!
//! * [`Query`] / [`Weights`] — query parameters with the paper's
//!   `ws + wt = 1` invariant,
//! * [`ScoreParams`] — the scoring function plus node-level upper/lower
//!   bounds for any augmented R-tree,
//! * [`topk`] — the best-first priority-queue algorithm of §3.3, generic
//!   over the index variant, with traversal statistics,
//! * [`scan`] — the exact linear-scan baseline and rank oracles,
//! * [`iter`] — incremental best-first enumeration (objects stream out in
//!   rank order), which the why-not engine uses to locate missing objects'
//!   ranks without fixing `k` in advance,
//! * [`engine`] — object-safe [`engine::SpatialKeywordEngine`] wrappers
//!   (SetR-tree, KcR-tree, IR-tree, scan) so callers can swap engines.
//!
//! Ranking is a *total* order: score descending, object id ascending on
//! ties. Every algorithm in the workspace (and every test comparing them)
//! uses this same order, which is what makes the why-not modules' rank
//! arithmetic exact.

pub mod boolean;
pub mod engine;
pub mod iter;
pub mod query;
pub mod range;
pub mod scan;
pub mod score;
pub mod topk;

pub use boolean::{boolean_topk_scan, boolean_topk_tree};
pub use engine::{
    EngineKind, IrTreeEngine, KcRTreeEngine, ScanEngine, SetRTreeEngine, SpatialKeywordEngine,
};
pub use iter::IncrementalSearch;
pub use query::{Query, Weights};
pub use range::{range_keyword_scan, range_keyword_tree, MatchMode};
pub use scan::{rank_of_scan, ranks_of_scan, topk_scan};
pub use score::{RankedObject, ScoreParams};
pub use topk::{topk_tree, topk_tree_with_stats, TraversalStats};
