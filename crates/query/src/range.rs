//! Spatio-textual range queries.
//!
//! "All objects inside this map viewport that mention *harbour*" — the
//! workhorse query behind the demo's map panel (grey/green markers in a
//! viewport). Objects inside a rectangle whose keyword sets match the
//! query keywords under a [`MatchMode`], pruned by both the MBRs and the
//! textual augmentation.

use yask_geo::Rect;
use yask_index::{Augmentation, Corpus, NodeKind, ObjectId, RTree, TextualBound};
use yask_text::KeywordSet;

/// How the query keywords must match an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchMode {
    /// At least one query keyword present (disjunctive). An empty query
    /// set matches nothing under this mode.
    Any,
    /// Every query keyword present (conjunctive). An empty query set
    /// matches everything (vacuous truth).
    All,
}

/// Scan oracle for [`range_keyword_tree`].
pub fn range_keyword_scan(
    corpus: &Corpus,
    rect: &Rect,
    doc: &KeywordSet,
    mode: MatchMode,
) -> Vec<ObjectId> {
    corpus
        .iter()
        .filter(|o| rect.contains_point(&o.loc) && matches(doc, &o.doc, mode))
        .map(|o| o.id)
        .collect()
}

fn matches(query: &KeywordSet, doc: &KeywordSet, mode: MatchMode) -> bool {
    match mode {
        MatchMode::Any => query.intersection_size(doc) > 0,
        MatchMode::All => query.is_subset_of(doc),
    }
}

/// Index-backed spatio-textual range query: descends only subtrees whose
/// MBR intersects `rect` *and* whose keyword summary can still satisfy
/// the match mode.
pub fn range_keyword_tree<A: Augmentation + TextualBound>(
    tree: &RTree<A>,
    rect: &Rect,
    doc: &KeywordSet,
    mode: MatchMode,
) -> Vec<ObjectId> {
    let mut out = Vec::new();
    let Some(root) = tree.root() else {
        return out;
    };
    let _guard = tree.read_guard();
    let mut stack = vec![root];
    while let Some(nid) = stack.pop() {
        let node = tree.node(nid);
        if !node.mbr.intersects(rect) {
            continue;
        }
        let stats = node.aug().text_stats(doc);
        let viable = match mode {
            MatchMode::Any => stats.max_inter > 0,
            MatchMode::All => stats.max_inter == doc.len(),
        };
        if !viable {
            continue;
        }
        match &node.kind {
            NodeKind::Leaf(entries) => {
                for &id in entries {
                    let o = tree.corpus().get(id);
                    if rect.contains_point(&o.loc) && matches(doc, &o.doc, mode) {
                        out.push(id);
                    }
                }
            }
            NodeKind::Internal(children) => stack.extend_from_slice(children),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::{CorpusBuilder, KcRTree, RTreeParams, SetRTree};
    use yask_util::Xoshiro256;

    fn random_corpus(n: usize, vocab: u32, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw(
                (0..1 + rng.below(5)).map(|_| rng.below(vocab as usize) as u32),
            );
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    #[test]
    fn tree_matches_scan_both_modes() {
        let corpus = random_corpus(400, 10, 71);
        let set = SetRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let kc = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let mut rng = Xoshiro256::seed_from_u64(72);
        for _ in 0..20 {
            let x0 = rng.next_f64() * 0.7;
            let y0 = rng.next_f64() * 0.7;
            let rect = Rect::from_coords(x0, y0, x0 + 0.3, y0 + 0.3);
            let doc = KeywordSet::from_raw((0..1 + rng.below(3)).map(|_| rng.below(10) as u32));
            for mode in [MatchMode::Any, MatchMode::All] {
                let mut want = range_keyword_scan(&corpus, &rect, &doc, mode);
                want.sort();
                for (name, tree_result) in [
                    ("set", range_keyword_tree(&set, &rect, &doc, mode)),
                    ("kc", range_keyword_tree(&kc, &rect, &doc, mode)),
                ] {
                    let mut got = tree_result;
                    got.sort();
                    assert_eq!(got, want.clone(), "{name} {mode:?} rect {rect:?}");
                }
            }
        }
    }

    #[test]
    fn any_mode_with_empty_doc_matches_nothing() {
        let corpus = random_corpus(50, 5, 73);
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let all = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert!(range_keyword_tree(&tree, &all, &KeywordSet::empty(), MatchMode::Any).is_empty());
    }

    #[test]
    fn all_mode_with_empty_doc_is_pure_spatial_range() {
        let corpus = random_corpus(80, 5, 74);
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let rect = Rect::from_coords(0.25, 0.25, 0.75, 0.75);
        let mut got = range_keyword_tree(&tree, &rect, &KeywordSet::empty(), MatchMode::All);
        got.sort();
        let mut want = tree.range(&rect);
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn disjoint_rect_is_empty() {
        let corpus = random_corpus(50, 5, 75);
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let rect = Rect::from_coords(5.0, 5.0, 6.0, 6.0);
        assert!(range_keyword_tree(&tree, &rect, &KeywordSet::from_raw([1]), MatchMode::Any)
            .is_empty());
    }
}
