//! The best-first top-k algorithm of paper §3.3.
//!
//! "To process a spatial keyword top-k query, we maintain a priority queue
//! `Q` that is initialized with the SetR-tree root node. In each iteration
//! of query processing, we pop up the first element in `Q` and report it
//! as a result if it is an object; otherwise, we unfold it and put its
//! children into `Q`. The process continues until `k` objects are
//! retrieved."
//!
//! Nodes are keyed by their score *upper bound* (spatial min-distance +
//! textual bound from the augmentation), objects by their exact score;
//! the first `k` objects popped are exactly the top-k. The algorithm is
//! generic over the augmentation, so the same code runs the SetR-tree,
//! KcR-tree, IR-tree and plain-R-tree engines — only the tightness of the
//! bound (and therefore the number of node expansions) differs, which is
//! what experiment E5 measures.

use std::collections::BinaryHeap;

use yask_index::{Augmentation, NodeId, NodeKind, ObjectId, RTree, TextualBound};
use yask_util::Scored;

use crate::query::Query;
use crate::score::{RankedObject, ScoreParams};

/// Traversal counters for bound-quality experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Internal/leaf nodes popped and expanded.
    pub nodes_expanded: usize,
    /// Objects whose exact score was computed.
    pub objects_scored: usize,
    /// Total heap pushes (nodes + objects).
    pub heap_pushes: usize,
}

/// Heap entry: node (by bound) or object (by exact score).
///
/// Derive order puts `Node < Object`; combined with [`Scored`]'s
/// smaller-item-wins tie-break, a node popping at the same key as an
/// object pops *first* — required for correctness, because the node may
/// still contain an equal-scored object with a smaller id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Entry {
    Node(NodeId),
    Object(ObjectId),
}

/// Runs the best-first top-k search over any augmented R-tree.
pub fn topk_tree<A: Augmentation + TextualBound>(
    tree: &RTree<A>,
    params: &ScoreParams,
    q: &Query,
) -> Vec<RankedObject> {
    topk_tree_with_stats(tree, params, q).0
}

/// [`topk_tree`] with traversal statistics.
///
/// On top of the paper's pop-and-unfold loop, the search maintains the
/// best `k` object scores seen so far ([`yask_util::TopK`]) and skips any
/// push that provably cannot enter the final result: an object already
/// beaten by `k` seen objects, or a node whose upper bound falls strictly
/// below the current `k`-th score. Neither prune can discard a true
/// result (the `k` witnesses are in the heap or the output), so the
/// answer is unchanged — only the heap traffic shrinks.
pub fn topk_tree_with_stats<A: Augmentation + TextualBound>(
    tree: &RTree<A>,
    params: &ScoreParams,
    q: &Query,
) -> (Vec<RankedObject>, TraversalStats) {
    let mut stats = TraversalStats::default();
    let mut out = Vec::with_capacity(q.k.min(tree.len()));
    let Some(root) = tree.root() else {
        return (out, stats);
    };
    let _guard = tree.read_guard();
    let mut heap: BinaryHeap<Scored<Entry>> = BinaryHeap::new();
    let mut seen: yask_util::TopK<ObjectId> = yask_util::TopK::new(q.k);
    let root_node = tree.node(root);
    heap.push(Scored::new(
        params.node_upper(&root_node.mbr, root_node.aug(), q),
        Entry::Node(root),
    ));
    stats.heap_pushes += 1;

    while let Some(top) = heap.pop() {
        match top.item {
            Entry::Object(id) => {
                out.push(RankedObject {
                    id,
                    score: top.score.get(),
                });
                if out.len() == q.k {
                    break;
                }
            }
            Entry::Node(n) => {
                // The bound may have gone stale while queued; re-check.
                if seen.is_full() && top.score.get() < seen.threshold() {
                    continue;
                }
                stats.nodes_expanded += 1;
                match &tree.node(n).kind {
                    NodeKind::Leaf(entries) => {
                        for &id in entries {
                            let s = params.score(tree.corpus().get(id), q);
                            stats.objects_scored += 1;
                            // Not retained ⇒ k better objects already seen
                            // ⇒ cannot be in the answer.
                            if seen.push(s, id) {
                                stats.heap_pushes += 1;
                                heap.push(Scored::new(s, Entry::Object(id)));
                            }
                        }
                    }
                    NodeKind::Internal(children) => {
                        for &c in children {
                            let child = tree.node(c);
                            let ub = params.node_upper(&child.mbr, child.aug(), q);
                            if seen.is_full() && ub < seen.threshold() {
                                continue;
                            }
                            stats.heap_pushes += 1;
                            heap.push(Scored::new(ub, Entry::Node(c)));
                        }
                    }
                }
            }
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Weights;
    use crate::scan::topk_scan;
    use yask_geo::{Point, Space};
    use yask_index::{Corpus, CorpusBuilder, IrAug, KcAug, NoAug, RTreeParams, SetAug};
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn random_corpus(n: usize, vocab: u32, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let loc = Point::new(rng.next_f64(), rng.next_f64());
            let nk = 1 + rng.below(6);
            let doc = KeywordSet::from_raw((0..nk).map(|_| rng.below(vocab as usize) as u32));
            b.push(loc, doc, format!("o{i}"));
        }
        b.build()
    }

    fn random_query(rng: &mut Xoshiro256, vocab: u32) -> Query {
        let loc = Point::new(rng.next_f64(), rng.next_f64());
        let nk = 1 + rng.below(4);
        let doc = KeywordSet::from_raw((0..nk).map(|_| rng.below(vocab as usize) as u32));
        let k = 1 + rng.below(20);
        let ws = rng.range_f64(0.05, 0.95);
        Query::with_weights(loc, doc, k, Weights::from_ws(ws))
    }

    /// The central correctness battery: every tree variant must agree with
    /// the scan baseline on score *and* order for many random queries.
    #[test]
    fn all_engines_match_scan() {
        let corpus = random_corpus(400, 25, 11);
        let params = ScoreParams::new(corpus.space());
        let tp = RTreeParams::new(8, 3);
        let set: RTree<SetAug> = RTree::bulk_load(corpus.clone(), tp);
        let kc: RTree<KcAug> = RTree::bulk_load(corpus.clone(), tp);
        let ir: RTree<IrAug> = RTree::bulk_load(corpus.clone(), tp);
        let plain: RTree<NoAug> = RTree::bulk_load(corpus.clone(), tp);
        let mut rng = Xoshiro256::seed_from_u64(5);
        for case in 0..40 {
            let q = random_query(&mut rng, 25);
            let want = topk_scan(&corpus, &params, &q);
            for (name, got) in [
                ("setr", topk_tree(&set, &params, &q)),
                ("kcr", topk_tree(&kc, &params, &q)),
                ("ir", topk_tree(&ir, &params, &q)),
                ("plain", topk_tree(&plain, &params, &q)),
            ] {
                assert_eq!(
                    got.iter().map(|r| r.id).collect::<Vec<_>>(),
                    want.iter().map(|r| r.id).collect::<Vec<_>>(),
                    "{name} diverged on case {case} (q = {q:?})"
                );
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.score - w.score).abs() < 1e-9, "{name} score mismatch");
                }
            }
        }
    }

    #[test]
    fn tighter_bounds_expand_fewer_nodes() {
        // SetR/KcR bounds are at least as tight as IR, which is at least
        // as tight as the plain tree — expansion counts must reflect it.
        let corpus = random_corpus(2000, 40, 21);
        let params = ScoreParams::new(corpus.space());
        let tp = RTreeParams::new(16, 6);
        let set: RTree<SetAug> = RTree::bulk_load(corpus.clone(), tp);
        let ir: RTree<IrAug> = RTree::bulk_load(corpus.clone(), tp);
        let plain: RTree<NoAug> = RTree::bulk_load(corpus.clone(), tp);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut set_total = 0usize;
        let mut ir_total = 0usize;
        let mut plain_total = 0usize;
        for _ in 0..20 {
            let q = random_query(&mut rng, 40);
            set_total += topk_tree_with_stats(&set, &params, &q).1.nodes_expanded;
            ir_total += topk_tree_with_stats(&ir, &params, &q).1.nodes_expanded;
            plain_total += topk_tree_with_stats(&plain, &params, &q).1.nodes_expanded;
        }
        assert!(
            set_total <= ir_total,
            "SetR expanded {set_total} > IR {ir_total}"
        );
        assert!(
            ir_total <= plain_total,
            "IR expanded {ir_total} > plain {plain_total}"
        );
    }

    #[test]
    fn empty_tree_returns_empty() {
        let corpus = random_corpus(0, 5, 1);
        let params = ScoreParams::new(corpus.space());
        let t: RTree<SetAug> = RTree::bulk_load(corpus, RTreeParams::default());
        let q = Query::new(Point::new(0.5, 0.5), KeywordSet::from_raw([1]), 5);
        let (res, stats) = topk_tree_with_stats(&t, &params, &q);
        assert!(res.is_empty());
        assert_eq!(stats.nodes_expanded, 0);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let corpus = random_corpus(10, 5, 2);
        let params = ScoreParams::new(corpus.space());
        let t: RTree<SetAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let q = Query::new(Point::new(0.5, 0.5), KeywordSet::from_raw([1]), 50);
        let res = topk_tree(&t, &params, &q);
        assert_eq!(res.len(), 10);
        let scan = topk_scan(&corpus, &params, &q);
        assert_eq!(
            res.iter().map(|r| r.id).collect::<Vec<_>>(),
            scan.iter().map(|r| r.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_query_doc_ranks_by_distance_only() {
        let corpus = random_corpus(100, 10, 4);
        let params = ScoreParams::new(corpus.space());
        let t: RTree<SetAug> = RTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let q = Query::new(Point::new(0.5, 0.5), KeywordSet::empty(), 5);
        let res = topk_tree(&t, &params, &q);
        let scan = topk_scan(&corpus, &params, &q);
        assert_eq!(
            res.iter().map(|r| r.id).collect::<Vec<_>>(),
            scan.iter().map(|r| r.id).collect::<Vec<_>>()
        );
        // Nearest by distance must come first.
        let nearest = t.nearest(&q.loc, 1)[0].1;
        assert_eq!(res[0].id, nearest);
    }

    #[test]
    fn works_on_insertion_built_tree() {
        let corpus = random_corpus(150, 15, 6);
        let params = ScoreParams::new(corpus.space());
        let t: RTree<SetAug> = RTree::build_by_insertion(corpus.clone(), RTreeParams::new(6, 2));
        t.validate().unwrap();
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..10 {
            let q = random_query(&mut rng, 15);
            let got: Vec<ObjectId> = topk_tree(&t, &params, &q).iter().map(|r| r.id).collect();
            let want: Vec<ObjectId> =
                topk_scan(&corpus, &params, &q).iter().map(|r| r.id).collect();
            assert_eq!(got, want);
        }
    }
}
