//! Incremental best-first enumeration.
//!
//! [`IncrementalSearch`] is the top-k algorithm of §3.3 *without* the `k`
//! cut-off: it yields objects one at a time in exact rank order. The
//! why-not engine uses it to compute `R(M, q)` — "the lowest rank of the
//! missing objects under the query q" — by pulling results until every
//! missing object has surfaced, paying only for the ranks actually
//! reached instead of scoring the whole database.

use std::collections::BinaryHeap;

use yask_index::{ArenaReadGuard, Augmentation, NodeId, NodeKind, ObjectId, RTree, TextualBound};
use yask_util::Scored;

use crate::query::Query;
use crate::score::{RankedObject, ScoreParams};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Entry {
    Node(NodeId),
    Object(ObjectId),
}

/// A lazy, rank-ordered stream of query results.
pub struct IncrementalSearch<'t, A: Augmentation> {
    tree: &'t RTree<A>,
    /// Pins the arena of a paged tree for the stream's whole lifetime —
    /// node references taken in `next` must outlive each heap push.
    _guard: ArenaReadGuard<'t, A>,
    params: ScoreParams,
    query: Query,
    heap: BinaryHeap<Scored<Entry>>,
    yielded: usize,
}

impl<'t, A: Augmentation + TextualBound> IncrementalSearch<'t, A> {
    /// Starts a search; `q.k` is ignored (the stream is unbounded).
    pub fn new(tree: &'t RTree<A>, params: ScoreParams, query: Query) -> Self {
        let guard = tree.read_guard();
        let mut heap = BinaryHeap::new();
        if let Some(root) = tree.root() {
            let node = tree.node(root);
            heap.push(Scored::new(
                params.node_upper(&node.mbr, node.aug(), &query),
                Entry::Node(root),
            ));
        }
        IncrementalSearch {
            tree,
            _guard: guard,
            params,
            query,
            heap,
            yielded: 0,
        }
    }

    /// Number of objects yielded so far — the rank of the last result.
    pub fn yielded(&self) -> usize {
        self.yielded
    }

    /// Pulls results until `target` surfaces; returns its 1-based rank,
    /// or `None` if the stream ends first (object not indexed).
    pub fn rank_of(&mut self, target: ObjectId) -> Option<usize> {
        for r in self.by_ref() {
            if r.id == target {
                return Some(self.yielded);
            }
        }
        None
    }
}

impl<A: Augmentation + TextualBound> Iterator for IncrementalSearch<'_, A> {
    type Item = RankedObject;

    fn next(&mut self) -> Option<RankedObject> {
        while let Some(top) = self.heap.pop() {
            match top.item {
                Entry::Object(id) => {
                    self.yielded += 1;
                    return Some(RankedObject {
                        id,
                        score: top.score.get(),
                    });
                }
                Entry::Node(n) => match &self.tree.node(n).kind {
                    NodeKind::Leaf(entries) => {
                        for &id in entries {
                            let s = self.params.score(self.tree.corpus().get(id), &self.query);
                            self.heap.push(Scored::new(s, Entry::Object(id)));
                        }
                    }
                    NodeKind::Internal(children) => {
                        for &c in children {
                            let child = self.tree.node(c);
                            let ub =
                                self.params
                                    .node_upper(&child.mbr, child.aug(), &self.query);
                            self.heap.push(Scored::new(ub, Entry::Node(c)));
                        }
                    }
                },
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{rank_of_scan, topk_scan};
    use yask_geo::{Point, Space};
    use yask_index::{Corpus, CorpusBuilder, RTreeParams, SetAug};
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(12) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    #[test]
    fn stream_matches_full_ranking() {
        let c = corpus(120, 1);
        let params = ScoreParams::new(c.space());
        let tree: RTree<SetAug> = RTree::bulk_load(c.clone(), RTreeParams::new(8, 3));
        let q = Query::new(Point::new(0.4, 0.6), KeywordSet::from_raw([1, 3]), 1);
        let streamed: Vec<ObjectId> =
            IncrementalSearch::new(&tree, params, q.clone()).map(|r| r.id).collect();
        assert_eq!(streamed.len(), 120);
        let want: Vec<ObjectId> = topk_scan(&c, &params, &q.with_k(120))
            .iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(streamed, want);
    }

    #[test]
    fn rank_of_matches_scan_oracle() {
        let c = corpus(200, 2);
        let params = ScoreParams::new(c.space());
        let tree: RTree<SetAug> = RTree::bulk_load(c.clone(), RTreeParams::new(8, 3));
        let q = Query::new(Point::new(0.2, 0.8), KeywordSet::from_raw([2, 5]), 1);
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..20 {
            let target = ObjectId(rng.below(200) as u32);
            let mut search = IncrementalSearch::new(&tree, params, q.clone());
            let got = search.rank_of(target).unwrap();
            assert_eq!(got, rank_of_scan(&c, &params, &q, target));
        }
    }

    #[test]
    fn rank_of_unindexed_object_is_none() {
        let c = corpus(20, 3);
        let params = ScoreParams::new(c.space());
        // Index only the first 10 objects.
        let ids: Vec<ObjectId> = (0..10).map(ObjectId).collect();
        let tree: RTree<SetAug> =
            RTree::bulk_load_subset(c.clone(), &ids, RTreeParams::new(4, 2));
        let q = Query::new(Point::new(0.5, 0.5), KeywordSet::from_raw([1]), 1);
        let mut search = IncrementalSearch::new(&tree, params, q);
        assert_eq!(search.rank_of(ObjectId(15)), None);
        assert_eq!(search.yielded(), 10);
    }

    #[test]
    fn empty_tree_stream_is_empty() {
        let c = corpus(0, 4);
        let params = ScoreParams::new(c.space());
        let tree: RTree<SetAug> = RTree::bulk_load(c, RTreeParams::default());
        let q = Query::new(Point::new(0.5, 0.5), KeywordSet::from_raw([1]), 1);
        assert_eq!(IncrementalSearch::new(&tree, params, q).count(), 0);
    }

    #[test]
    fn yielded_counts_progress() {
        let c = corpus(50, 5);
        let params = ScoreParams::new(c.space());
        let tree: RTree<SetAug> = RTree::bulk_load(c, RTreeParams::new(8, 3));
        let q = Query::new(Point::new(0.1, 0.1), KeywordSet::from_raw([1]), 1);
        let mut s = IncrementalSearch::new(&tree, params, q);
        assert_eq!(s.yielded(), 0);
        s.next();
        s.next();
        assert_eq!(s.yielded(), 2);
    }
}
