//! The ranking function `ST` (Eqn 1) and its node-level bounds.

use yask_geo::{Rect, Space};
use yask_index::{ObjectId, SpatioTextualObject, TextualBound};
use yask_text::{KeywordSet, SimilarityModel};

use crate::query::Query;

/// A scored result entry. Result vectors are sorted best-first; an entry's
/// rank is its position + 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedObject {
    /// The object.
    pub id: ObjectId,
    /// Its `ST` score under the query.
    pub score: f64,
}

/// Server-side scoring configuration: the data space (for `SDist`
/// normalization) and the similarity model (for `TSim`).
///
/// The per-query weights live in [`Query`]; everything else about the
/// ranking function is a system parameter, exactly as in the demo where
/// "the system ... leaves the weighting vector ~w as a system parameter on
/// the server" and Jaccard is the fixed model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreParams {
    /// The normalized data space.
    pub space: Space,
    /// The textual similarity model (default Jaccard).
    pub model: SimilarityModel,
}

impl ScoreParams {
    /// Creates scoring parameters with the paper's Jaccard default.
    pub fn new(space: Space) -> Self {
        ScoreParams {
            space,
            model: SimilarityModel::Jaccard,
        }
    }

    /// Overrides the similarity model (footnote 1 of the paper).
    pub fn with_model(mut self, model: SimilarityModel) -> Self {
        self.model = model;
        self
    }

    /// The spatial/textual components of the score:
    /// `(1 − SDist(o, q), TSim(o, q))`, both in `[0, 1]`.
    ///
    /// These are the `(a_o, b_o)` coordinates that the preference-
    /// adjustment module maps to segments in the weight plane.
    #[inline]
    pub fn parts(&self, o: &SpatioTextualObject, q: &Query) -> (f64, f64) {
        let a = 1.0 - self.space.sdist(&q.loc, &o.loc);
        let b = self.model.similarity(&q.doc, &o.doc);
        (a, b)
    }

    /// `ST(o, q)` — Eqn (1).
    #[inline]
    pub fn score(&self, o: &SpatioTextualObject, q: &Query) -> f64 {
        let (a, b) = self.parts(o, q);
        q.weights.ws() * a + q.weights.wt() * b
    }

    /// Score with an explicit keyword set substituted for `q.doc` — used
    /// by the keyword-adaptation module to score candidates without
    /// cloning the query.
    #[inline]
    pub fn score_with_doc(&self, o: &SpatioTextualObject, q: &Query, doc: &KeywordSet) -> f64 {
        let a = 1.0 - self.space.sdist(&q.loc, &o.loc);
        let b = self.model.similarity(doc, &o.doc);
        q.weights.ws() * a + q.weights.wt() * b
    }

    /// Upper bound of `ST(o, q)` over all objects `o` inside a node with
    /// rectangle `mbr` and augmentation `aug`.
    #[inline]
    pub fn node_upper<A: TextualBound>(&self, mbr: &Rect, aug: &A, q: &Query) -> f64 {
        self.node_upper_with_doc(mbr, aug, q, &q.doc)
    }

    /// [`ScoreParams::node_upper`] with a substituted keyword set.
    #[inline]
    pub fn node_upper_with_doc<A: TextualBound>(
        &self,
        mbr: &Rect,
        aug: &A,
        q: &Query,
        doc: &KeywordSet,
    ) -> f64 {
        let a = 1.0 - self.space.sdist_min(&q.loc, mbr);
        let b = aug.sim_upper(doc, self.model);
        q.weights.ws() * a + q.weights.wt() * b
    }

    /// Lower bound counterpart: every object below the node scores at
    /// least this much.
    #[inline]
    pub fn node_lower<A: TextualBound>(&self, mbr: &Rect, aug: &A, q: &Query) -> f64 {
        self.node_lower_with_doc(mbr, aug, q, &q.doc)
    }

    /// [`ScoreParams::node_lower`] with a substituted keyword set.
    #[inline]
    pub fn node_lower_with_doc<A: TextualBound>(
        &self,
        mbr: &Rect,
        aug: &A,
        q: &Query,
        doc: &KeywordSet,
    ) -> f64 {
        let a = 1.0 - self.space.sdist_max(&q.loc, mbr);
        let b = aug.sim_lower(doc, self.model);
        q.weights.ws() * a + q.weights.wt() * b
    }

    /// True when object `x` ranks strictly better than object `y` under
    /// the workspace total order (score descending, id ascending).
    #[inline]
    pub fn ranks_before(score_x: f64, x: ObjectId, score_y: f64, y: ObjectId) -> bool {
        score_x > score_y || (score_x == score_y && x < y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::Point;
    use yask_index::{Augmentation, CorpusBuilder, SetAug};

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    fn fixture() -> (yask_index::Corpus, ScoreParams) {
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        b.push(Point::new(0.0, 0.0), ks(&[1, 2]), "near-match");
        b.push(Point::new(1.0, 1.0), ks(&[1, 2]), "far-match");
        b.push(Point::new(0.0, 0.0), ks(&[9]), "near-miss");
        let corpus = b.build();
        let params = ScoreParams::new(corpus.space());
        (corpus, params)
    }

    #[test]
    fn score_combines_parts_linearly() {
        let (corpus, params) = fixture();
        let q = Query::with_weights(
            Point::new(0.0, 0.0),
            ks(&[1, 2]),
            1,
            crate::Weights::from_ws(0.3),
        );
        let o = corpus.get(ObjectId(0));
        let (a, b) = params.parts(o, &q);
        assert_eq!(a, 1.0); // co-located
        assert_eq!(b, 1.0); // identical keywords
        assert!((params.score(o, &q) - 1.0).abs() < 1e-12);

        let far = corpus.get(ObjectId(1));
        let (a, b) = params.parts(far, &q);
        assert!((a - 0.0).abs() < 1e-12); // opposite corner of unit space
        assert_eq!(b, 1.0);
        assert!((params.score(far, &q) - 0.7).abs() < 1e-12); // wt · 1
    }

    #[test]
    fn perfect_score_requires_both_components() {
        let (corpus, params) = fixture();
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1, 2]), 1);
        let near_miss = corpus.get(ObjectId(2));
        // Same location but no keyword overlap: score = ws only.
        assert!((params.score(near_miss, &q) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn score_with_doc_overrides_keywords() {
        let (corpus, params) = fixture();
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1, 2]), 1);
        let near_miss = corpus.get(ObjectId(2));
        let s = params.score_with_doc(near_miss, &q, &ks(&[9]));
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_bounds_bracket_member_scores() {
        let (corpus, params) = fixture();
        let q = Query::new(Point::new(0.2, 0.1), ks(&[1, 9]), 1);
        let objs: Vec<&yask_index::SpatioTextualObject> = corpus.iter().collect();
        let aug = SetAug::for_leaf(&objs);
        let mut mbr = Rect::EMPTY;
        for o in &objs {
            mbr.expand(&Rect::point(o.loc));
        }
        let ub = params.node_upper(&mbr, &aug, &q);
        let lb = params.node_lower(&mbr, &aug, &q);
        assert!(lb <= ub);
        for o in &objs {
            let s = params.score(o, &q);
            assert!(s <= ub + 1e-12, "{s} > {ub}");
            assert!(s + 1e-12 >= lb, "{s} < {lb}");
        }
    }

    #[test]
    fn ranks_before_total_order() {
        let a = ObjectId(1);
        let b = ObjectId(2);
        assert!(ScoreParams::ranks_before(0.9, b, 0.8, a));
        assert!(ScoreParams::ranks_before(0.8, a, 0.8, b)); // tie → smaller id
        assert!(!ScoreParams::ranks_before(0.8, b, 0.8, a));
        assert!(!ScoreParams::ranks_before(0.7, a, 0.8, b));
    }

    #[test]
    fn model_override_changes_scores() {
        let (corpus, _) = fixture();
        let params = ScoreParams::new(corpus.space()).with_model(SimilarityModel::Dice);
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1]), 1);
        let o = corpus.get(ObjectId(0)); // doc {1,2}
        let (_, b) = params.parts(o, &q);
        // Dice: 2·1/(1+2) = 2/3 vs Jaccard 1/2.
        assert!((b - 2.0 / 3.0).abs() < 1e-12);
    }
}
