//! Linear-scan baseline and exact rank oracles.
//!
//! Scoring every object is the ground truth that the index-backed engines
//! are tested against, the baseline of the engine-comparison experiment
//! (E5), and the rank oracle `R(M, q)` that the why-not penalty functions
//! (Eqns 3–4) are defined in terms of.

use yask_index::{Corpus, ObjectId};
use yask_util::TopK;

use crate::query::Query;
use crate::score::{RankedObject, ScoreParams};

/// Exact top-k by scoring every object. Ties break towards smaller ids.
pub fn topk_scan(corpus: &Corpus, params: &ScoreParams, q: &Query) -> Vec<RankedObject> {
    let mut heap: TopK<ObjectId> = TopK::new(q.k);
    for o in corpus.iter() {
        heap.push(params.score(o, q), o.id);
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|s| RankedObject {
            id: s.item,
            score: s.score.get(),
        })
        .collect()
}

/// The exact rank of `target` under `q` (1-based; rank 1 = best), over the
/// whole database — the `R({o}, q)` of the paper's penalty functions.
pub fn rank_of_scan(corpus: &Corpus, params: &ScoreParams, q: &Query, target: ObjectId) -> usize {
    let target_score = params.score(corpus.get(target), q);
    let mut better = 0usize;
    for o in corpus.iter() {
        if o.id == target {
            continue;
        }
        if ScoreParams::ranks_before(params.score(o, q), o.id, target_score, target) {
            better += 1;
        }
    }
    better + 1
}

/// Ranks of several targets in one pass; the maximum entry is the paper's
/// `R(M, q)` ("the lowest rank of the missing objects under q").
pub fn ranks_of_scan(
    corpus: &Corpus,
    params: &ScoreParams,
    q: &Query,
    targets: &[ObjectId],
) -> Vec<usize> {
    let scored: Vec<(f64, ObjectId)> = targets
        .iter()
        .map(|&t| (params.score(corpus.get(t), q), t))
        .collect();
    let mut better = vec![0usize; targets.len()];
    for o in corpus.iter() {
        let s = params.score(o, q);
        for (i, &(ts, t)) in scored.iter().enumerate() {
            if o.id != t && ScoreParams::ranks_before(s, o.id, ts, t) {
                better[i] += 1;
            }
        }
    }
    better.iter().map(|b| b + 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_text::KeywordSet;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    fn corpus() -> Corpus {
        // Four objects along the diagonal with varying keyword overlap.
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        b.push(Point::new(0.0, 0.0), ks(&[1, 2]), "o0"); // near, strong text
        b.push(Point::new(0.5, 0.5), ks(&[1, 2]), "o1"); // mid, strong text
        b.push(Point::new(0.1, 0.1), ks(&[9]), "o2"); // near, no text
        b.push(Point::new(0.9, 0.9), ks(&[9]), "o3"); // far, no text
        b.build()
    }

    #[test]
    fn topk_orders_best_first() {
        let c = corpus();
        let params = ScoreParams::new(c.space());
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1, 2]), 4);
        let res = topk_scan(&c, &params, &q);
        assert_eq!(res.len(), 4);
        assert_eq!(res[0].id, ObjectId(0));
        for w in res.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn topk_truncates_to_k() {
        let c = corpus();
        let params = ScoreParams::new(c.space());
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1, 2]), 2);
        assert_eq!(topk_scan(&c, &params, &q).len(), 2);
    }

    #[test]
    fn topk_k_exceeds_n() {
        let c = corpus();
        let params = ScoreParams::new(c.space());
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1]), 100);
        assert_eq!(topk_scan(&c, &params, &q).len(), 4);
    }

    #[test]
    fn rank_of_agrees_with_topk_positions() {
        let c = corpus();
        let params = ScoreParams::new(c.space());
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1, 2]), 4);
        let res = topk_scan(&c, &params, &q);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(rank_of_scan(&c, &params, &q, r.id), i + 1);
        }
    }

    #[test]
    fn ranks_of_matches_individual_ranks() {
        let c = corpus();
        let params = ScoreParams::new(c.space());
        let q = Query::new(Point::new(0.3, 0.3), ks(&[1, 9]), 2);
        let targets = [ObjectId(0), ObjectId(2), ObjectId(3)];
        let batch = ranks_of_scan(&c, &params, &q, &targets);
        for (i, &t) in targets.iter().enumerate() {
            assert_eq!(batch[i], rank_of_scan(&c, &params, &q, t));
        }
    }

    #[test]
    fn tie_break_by_id() {
        // Two objects with identical location and keywords → identical
        // score; the smaller id must rank first.
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        b.push(Point::new(0.5, 0.5), ks(&[1]), "a");
        b.push(Point::new(0.5, 0.5), ks(&[1]), "b");
        let c = b.build();
        let params = ScoreParams::new(c.space());
        let q = Query::new(Point::new(0.2, 0.2), ks(&[1]), 2);
        let res = topk_scan(&c, &params, &q);
        assert_eq!(res[0].id, ObjectId(0));
        assert_eq!(res[1].id, ObjectId(1));
        assert_eq!(rank_of_scan(&c, &params, &q, ObjectId(0)), 1);
        assert_eq!(rank_of_scan(&c, &params, &q, ObjectId(1)), 2);
    }

    #[test]
    fn empty_corpus_returns_nothing() {
        let c = CorpusBuilder::new().build();
        let params = ScoreParams::new(c.space());
        let q = Query::new(Point::new(0.0, 0.0), ks(&[1]), 3);
        assert!(topk_scan(&c, &params, &q).is_empty());
    }
}
