//! Boolean (conjunctive) spatial keyword queries.
//!
//! The spatial keyword querying survey the paper builds on (its reference
//! \[2\]) distinguishes *ranking* queries — Eqn (1), implemented in
//! [`crate::topk`] — from **boolean kNN queries**, where only objects
//! containing *all* query keywords qualify and qualifying objects are
//! ranked by the same score. Both modes matter in practice ("find cafes
//! that definitely have wifi *and* parking, nearest first").
//!
//! The index variants prune conjunctive queries aggressively: a subtree
//! can contain a qualifying object only if every query keyword appears in
//! its union keyword set (`TextStats::max_inter == |q.doc|`), which the
//! SetR/KcR/IR augmentations all expose.

use std::collections::BinaryHeap;

use yask_index::{Augmentation, Corpus, NodeId, NodeKind, ObjectId, RTree, TextualBound};
use yask_util::{Scored, TopK};

use crate::query::Query;
use crate::score::{RankedObject, ScoreParams};

/// Exact boolean top-k by scan: filter on containment, rank by `ST`.
pub fn boolean_topk_scan(corpus: &Corpus, params: &ScoreParams, q: &Query) -> Vec<RankedObject> {
    let mut heap: TopK<ObjectId> = TopK::new(q.k);
    for o in corpus.iter() {
        if q.doc.is_subset_of(&o.doc) {
            heap.push(params.score(o, q), o.id);
        }
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|s| RankedObject {
            id: s.item,
            score: s.score.get(),
        })
        .collect()
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Entry {
    Node(NodeId),
    Object(ObjectId),
}

/// Boolean top-k over any augmented R-tree: subtrees missing any query
/// keyword are pruned outright; qualifying objects stream out best-first.
///
/// Note the result may hold fewer than `k` objects — conjunctive
/// semantics can be unsatisfiable.
pub fn boolean_topk_tree<A: Augmentation + TextualBound>(
    tree: &RTree<A>,
    params: &ScoreParams,
    q: &Query,
) -> Vec<RankedObject> {
    let mut out = Vec::new();
    let Some(root) = tree.root() else {
        return out;
    };
    let _guard = tree.read_guard();
    let q_len = q.doc.len();
    let mut heap: BinaryHeap<Scored<Entry>> = BinaryHeap::new();
    let root_node = tree.node(root);
    if root_node.aug().text_stats(&q.doc).max_inter == q_len {
        heap.push(Scored::new(
            params.node_upper(&root_node.mbr, root_node.aug(), q),
            Entry::Node(root),
        ));
    }
    while let Some(top) = heap.pop() {
        match top.item {
            Entry::Object(id) => {
                out.push(RankedObject {
                    id,
                    score: top.score.get(),
                });
                if out.len() == q.k {
                    break;
                }
            }
            Entry::Node(n) => match &tree.node(n).kind {
                NodeKind::Leaf(entries) => {
                    for &id in entries {
                        let o = tree.corpus().get(id);
                        if q.doc.is_subset_of(&o.doc) {
                            heap.push(Scored::new(params.score(o, q), Entry::Object(id)));
                        }
                    }
                }
                NodeKind::Internal(children) => {
                    for &c in children {
                        let child = tree.node(c);
                        // Conjunctive prune: every query keyword must
                        // appear somewhere below this child.
                        if child.aug().text_stats(&q.doc).max_inter < q_len {
                            continue;
                        }
                        heap.push(Scored::new(
                            params.node_upper(&child.mbr, child.aug(), q),
                            Entry::Node(c),
                        ));
                    }
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Weights;
    use yask_geo::{Point, Space};
    use yask_index::{CorpusBuilder, RTreeParams, SetRTree};
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn random_corpus(n: usize, vocab: u32, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw(
                (0..1 + rng.below(6)).map(|_| rng.below(vocab as usize) as u32),
            );
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    #[test]
    fn tree_matches_scan_on_random_data() {
        let corpus = random_corpus(500, 12, 61);
        let params = ScoreParams::new(corpus.space());
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let mut rng = Xoshiro256::seed_from_u64(62);
        for _ in 0..30 {
            let doc = KeywordSet::from_raw((0..1 + rng.below(3)).map(|_| rng.below(12) as u32));
            let q = Query::with_weights(
                Point::new(rng.next_f64(), rng.next_f64()),
                doc,
                1 + rng.below(10),
                Weights::from_ws(rng.range_f64(0.1, 0.9)),
            );
            let got: Vec<ObjectId> =
                boolean_topk_tree(&tree, &params, &q).iter().map(|r| r.id).collect();
            let want: Vec<ObjectId> =
                boolean_topk_scan(&corpus, &params, &q).iter().map(|r| r.id).collect();
            assert_eq!(got, want, "q = {q:?}");
        }
    }

    #[test]
    fn every_result_contains_all_keywords() {
        let corpus = random_corpus(300, 8, 63);
        let params = ScoreParams::new(corpus.space());
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let q = Query::new(Point::new(0.5, 0.5), KeywordSet::from_raw([1, 3]), 10);
        for r in boolean_topk_tree(&tree, &params, &q) {
            assert!(q.doc.is_subset_of(&corpus.get(r.id).doc));
        }
    }

    #[test]
    fn unsatisfiable_conjunction_returns_empty() {
        let corpus = random_corpus(100, 5, 64);
        let params = ScoreParams::new(corpus.space());
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        // Keyword 99 exists nowhere.
        let q = Query::new(Point::new(0.5, 0.5), KeywordSet::from_raw([1, 99]), 5);
        assert!(boolean_topk_tree(&tree, &params, &q).is_empty());
        assert!(boolean_topk_scan(&corpus, &params, &q).is_empty());
    }

    #[test]
    fn empty_doc_matches_everything() {
        // An empty conjunction is vacuously satisfied: pure spatial kNN.
        let corpus = random_corpus(50, 5, 65);
        let params = ScoreParams::new(corpus.space());
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
        let q = Query::new(Point::new(0.2, 0.8), KeywordSet::empty(), 5);
        let got = boolean_topk_tree(&tree, &params, &q);
        assert_eq!(got.len(), 5);
        let want = boolean_topk_scan(&corpus, &params, &q);
        assert_eq!(
            got.iter().map(|r| r.id).collect::<Vec<_>>(),
            want.iter().map(|r| r.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fewer_than_k_matches_are_all_returned() {
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        b.push(Point::new(0.1, 0.1), KeywordSet::from_raw([1, 2]), "both");
        b.push(Point::new(0.2, 0.2), KeywordSet::from_raw([1]), "only1");
        b.push(Point::new(0.3, 0.3), KeywordSet::from_raw([2]), "only2");
        let corpus = b.build();
        let params = ScoreParams::new(corpus.space());
        let tree = SetRTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));
        let q = Query::new(Point::new(0.0, 0.0), KeywordSet::from_raw([1, 2]), 10);
        let got = boolean_topk_tree(&tree, &params, &q);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, ObjectId(0));
    }
}
