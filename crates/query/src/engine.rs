//! Object-safe engine wrappers.
//!
//! The YASK server holds one "spatial keyword top-k query engine" (Fig 1)
//! whose concrete index is a deployment choice. [`SpatialKeywordEngine`]
//! is that seam: the SetR-tree engine is the paper's default, the KcR-tree
//! engine shares its index with the keyword-adaptation module, the IR-tree
//! and scan engines exist for the comparison experiments.

use yask_index::{Corpus, IrTree, KcRTree, ObjectId, RTreeParams, SetRTree};

use crate::iter::IncrementalSearch;
use crate::query::Query;
use crate::scan::{rank_of_scan, topk_scan};
use crate::score::{RankedObject, ScoreParams};
use crate::topk::{topk_tree, topk_tree_with_stats, TraversalStats};

/// A pluggable spatial keyword top-k engine.
pub trait SpatialKeywordEngine: Send + Sync {
    /// Engine name for logs/benches.
    fn name(&self) -> &'static str;

    /// The corpus served by this engine.
    fn corpus(&self) -> &Corpus;

    /// The scoring configuration.
    fn score_params(&self) -> ScoreParams;

    /// Runs the top-k query (Definition 1).
    fn top_k(&self, q: &Query) -> Vec<RankedObject>;

    /// Runs the query and reports traversal statistics.
    fn top_k_with_stats(&self, q: &Query) -> (Vec<RankedObject>, TraversalStats);

    /// Exact rank of `target` under `q` ignoring `q.k` — `R({target}, q)`.
    fn rank_of(&self, q: &Query, target: ObjectId) -> usize;
}

/// Identifies an engine implementation; used by config and benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Best-first over the SetR-tree (the YASK default).
    SetRTree,
    /// Best-first over the KcR-tree.
    KcRTree,
    /// Best-first over the IR-tree.
    IrTree,
    /// Linear scan baseline.
    Scan,
}

impl EngineKind {
    /// Builds the chosen engine over `corpus`.
    pub fn build(
        self,
        corpus: Corpus,
        params: ScoreParams,
        tree_params: RTreeParams,
    ) -> Box<dyn SpatialKeywordEngine> {
        match self {
            EngineKind::SetRTree => Box::new(SetRTreeEngine::new(corpus, params, tree_params)),
            EngineKind::KcRTree => Box::new(KcRTreeEngine::new(corpus, params, tree_params)),
            EngineKind::IrTree => Box::new(IrTreeEngine::new(corpus, params, tree_params)),
            EngineKind::Scan => Box::new(ScanEngine::new(corpus, params)),
        }
    }
}

macro_rules! tree_engine {
    ($(#[$doc:meta])* $name:ident, $tree:ty, $label:literal) => {
        $(#[$doc])*
        pub struct $name {
            tree: $tree,
            params: ScoreParams,
        }

        impl $name {
            /// Bulk-loads the index over `corpus`.
            pub fn new(corpus: Corpus, params: ScoreParams, tree_params: RTreeParams) -> Self {
                Self {
                    tree: <$tree>::bulk_load(corpus, tree_params),
                    params,
                }
            }

            /// Wraps an existing tree.
            pub fn from_tree(tree: $tree, params: ScoreParams) -> Self {
                Self { tree, params }
            }

            /// The underlying tree (the why-not engine shares it).
            pub fn tree(&self) -> &$tree {
                &self.tree
            }
        }

        impl SpatialKeywordEngine for $name {
            fn name(&self) -> &'static str {
                $label
            }

            fn corpus(&self) -> &Corpus {
                self.tree.corpus()
            }

            fn score_params(&self) -> ScoreParams {
                self.params
            }

            fn top_k(&self, q: &Query) -> Vec<RankedObject> {
                topk_tree(&self.tree, &self.params, q)
            }

            fn top_k_with_stats(&self, q: &Query) -> (Vec<RankedObject>, TraversalStats) {
                topk_tree_with_stats(&self.tree, &self.params, q)
            }

            fn rank_of(&self, q: &Query, target: ObjectId) -> usize {
                let mut search = IncrementalSearch::new(&self.tree, self.params, q.clone());
                search
                    .rank_of(target)
                    .expect("target object is indexed by this engine")
            }
        }
    };
}

tree_engine!(
    /// The paper's default engine: best-first search over the SetR-tree.
    SetRTreeEngine,
    SetRTree,
    "setr-tree"
);
tree_engine!(
    /// Best-first search over the KcR-tree (same bounds as SetR, plus
    /// counting information used by the keyword-adaptation module).
    KcRTreeEngine,
    KcRTree,
    "kcr-tree"
);
tree_engine!(
    /// Best-first search over the IR-tree — union-only textual bounds.
    IrTreeEngine,
    IrTree,
    "ir-tree"
);

/// The exact linear-scan engine (baseline).
pub struct ScanEngine {
    corpus: Corpus,
    params: ScoreParams,
}

impl ScanEngine {
    /// Creates the baseline engine.
    pub fn new(corpus: Corpus, params: ScoreParams) -> Self {
        ScanEngine { corpus, params }
    }
}

impl SpatialKeywordEngine for ScanEngine {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    fn score_params(&self) -> ScoreParams {
        self.params
    }

    fn top_k(&self, q: &Query) -> Vec<RankedObject> {
        topk_scan(&self.corpus, &self.params, q)
    }

    fn top_k_with_stats(&self, q: &Query) -> (Vec<RankedObject>, TraversalStats) {
        let res = topk_scan(&self.corpus, &self.params, q);
        let stats = TraversalStats {
            nodes_expanded: 0,
            objects_scored: self.corpus.len(),
            heap_pushes: self.corpus.len(),
        };
        (res, stats)
    }

    fn rank_of(&self, q: &Query, target: ObjectId) -> usize {
        rank_of_scan(&self.corpus, &self.params, q, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yask_geo::{Point, Space};
    use yask_index::CorpusBuilder;
    use yask_text::KeywordSet;
    use yask_util::Xoshiro256;

    fn corpus(n: usize, seed: u64) -> Corpus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
        for i in 0..n {
            let doc = KeywordSet::from_raw((0..1 + rng.below(4)).map(|_| rng.below(10) as u32));
            b.push(Point::new(rng.next_f64(), rng.next_f64()), doc, format!("o{i}"));
        }
        b.build()
    }

    #[test]
    fn all_kinds_agree() {
        let c = corpus(150, 77);
        let params = ScoreParams::new(c.space());
        let tp = RTreeParams::new(8, 3);
        let engines: Vec<Box<dyn SpatialKeywordEngine>> = vec![
            EngineKind::SetRTree.build(c.clone(), params, tp),
            EngineKind::KcRTree.build(c.clone(), params, tp),
            EngineKind::IrTree.build(c.clone(), params, tp),
            EngineKind::Scan.build(c.clone(), params, tp),
        ];
        let q = Query::new(Point::new(0.3, 0.3), KeywordSet::from_raw([1, 2]), 7);
        let want: Vec<ObjectId> = engines[3].top_k(&q).iter().map(|r| r.id).collect();
        for e in &engines {
            let got: Vec<ObjectId> = e.top_k(&q).iter().map(|r| r.id).collect();
            assert_eq!(got, want, "{} diverged", e.name());
        }
    }

    #[test]
    fn rank_of_consistent_across_engines() {
        let c = corpus(100, 78);
        let params = ScoreParams::new(c.space());
        let tp = RTreeParams::new(8, 3);
        let setr = SetRTreeEngine::new(c.clone(), params, tp);
        let scan = ScanEngine::new(c.clone(), params);
        let q = Query::new(Point::new(0.6, 0.1), KeywordSet::from_raw([3]), 5);
        for id in [0u32, 17, 42, 99] {
            assert_eq!(
                setr.rank_of(&q, ObjectId(id)),
                scan.rank_of(&q, ObjectId(id)),
                "object {id}"
            );
        }
    }

    #[test]
    fn engine_names_are_distinct() {
        let c = corpus(10, 79);
        let params = ScoreParams::new(c.space());
        let tp = RTreeParams::new(4, 2);
        let names: Vec<&str> = [
            EngineKind::SetRTree,
            EngineKind::KcRTree,
            EngineKind::IrTree,
            EngineKind::Scan,
        ]
        .into_iter()
        .map(|k| k.build(c.clone(), params, tp).name())
        .collect();
        let set: std::collections::HashSet<&str> = names.iter().copied().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn scan_stats_report_full_scan() {
        let c = corpus(50, 80);
        let params = ScoreParams::new(c.space());
        let e = ScanEngine::new(c, params);
        let q = Query::new(Point::new(0.5, 0.5), KeywordSet::from_raw([1]), 3);
        let (res, stats) = e.top_k_with_stats(&q);
        assert_eq!(res.len(), 3);
        assert_eq!(stats.objects_scored, 50);
    }
}
