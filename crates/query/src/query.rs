//! Query parameters: `q = (q.loc, q.doc, k, ~w)` (paper §2.1).

use yask_geo::Point;
use yask_text::KeywordSet;

/// The preference vector `~w = ⟨ws, wt⟩` with `ws + wt = 1`.
///
/// The paper restricts weights to the open interval (`0 < ws, wt < 1`);
/// the constructor accepts the closed interval so parameter sweeps can
/// probe the endpoints, and normalizes un-normalized pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Weights {
    ws: f64,
}

impl Weights {
    /// Creates weights from the spatial component; `wt = 1 − ws`.
    /// Panics unless `0 ≤ ws ≤ 1` and finite.
    pub fn from_ws(ws: f64) -> Self {
        assert!(ws.is_finite() && (0.0..=1.0).contains(&ws), "ws out of range: {ws}");
        Weights { ws }
    }

    /// Creates weights from both components, normalizing so they sum to 1.
    /// Panics on non-positive sums or non-finite input.
    pub fn new(ws: f64, wt: f64) -> Self {
        assert!(ws.is_finite() && wt.is_finite(), "non-finite weights");
        assert!(ws >= 0.0 && wt >= 0.0, "negative weights: ({ws}, {wt})");
        let sum = ws + wt;
        assert!(sum > 0.0, "zero weight vector");
        Weights { ws: ws / sum }
    }

    /// The demo default `~w = ⟨0.5, 0.5⟩` ("spatial distance and textual
    /// similarity are weighed equally", paper §3.2).
    pub fn balanced() -> Self {
        Weights { ws: 0.5 }
    }

    /// Spatial weight `ws`.
    #[inline]
    pub fn ws(&self) -> f64 {
        self.ws
    }

    /// Textual weight `wt = 1 − ws`.
    #[inline]
    pub fn wt(&self) -> f64 {
        1.0 - self.ws
    }

    /// `‖~w − ~w'‖₂` — the `Δ~w` of the preference penalty (Eqn 3).
    /// Because both vectors lie on the line `ws + wt = 1`, this equals
    /// `√2 · |ws − ws'|`.
    pub fn l2_distance(&self, other: &Weights) -> f64 {
        std::f64::consts::SQRT_2 * (self.ws - other.ws).abs()
    }

    /// `√(1 + ws² + wt²)` — the normalizer of `Δ~w` in Eqn (3). The paper
    /// proves `Δ~w` never exceeds this quantity.
    pub fn penalty_normalizer(&self) -> f64 {
        (1.0 + self.ws * self.ws + self.wt() * self.wt()).sqrt()
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::balanced()
    }
}

/// A spatial keyword top-k query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// `q.loc` — the query point.
    pub loc: Point,
    /// `q.doc` — the query keywords.
    pub doc: KeywordSet,
    /// `k` — result size; must be ≥ 1.
    pub k: usize,
    /// `~w` — the spatial/textual preference.
    pub weights: Weights,
}

impl Query {
    /// Creates a query with the default balanced weights.
    pub fn new(loc: Point, doc: KeywordSet, k: usize) -> Self {
        assert!(k >= 1, "top-k query requires k ≥ 1");
        Query {
            loc,
            doc,
            k,
            weights: Weights::balanced(),
        }
    }

    /// Creates a query with explicit weights.
    pub fn with_weights(loc: Point, doc: KeywordSet, k: usize, weights: Weights) -> Self {
        assert!(k >= 1, "top-k query requires k ≥ 1");
        Query {
            loc,
            doc,
            k,
            weights,
        }
    }

    /// A copy with different weights (used by the preference-adjustment
    /// module when materializing refined queries).
    pub fn reweighted(&self, weights: Weights) -> Query {
        Query { weights, ..self.clone() }
    }

    /// A copy with a different keyword set (used by the keyword-adaptation
    /// module when materializing refined queries).
    pub fn with_doc(&self, doc: KeywordSet) -> Query {
        Query { doc, ..self.clone() }
    }

    /// A copy with a different `k`.
    pub fn with_k(&self, k: usize) -> Query {
        assert!(k >= 1);
        Query { k, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn weights_sum_to_one() {
        let w = Weights::new(0.3, 0.7);
        assert!((w.ws() - 0.3).abs() < 1e-12);
        assert!((w.wt() - 0.7).abs() < 1e-12);
        assert!((w.ws() + w.wt() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_normalize() {
        let w = Weights::new(2.0, 6.0);
        assert!((w.ws() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn balanced_is_half() {
        let w = Weights::balanced();
        assert_eq!(w.ws(), 0.5);
        assert_eq!(w.wt(), 0.5);
        assert_eq!(Weights::default(), w);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_ws_rejects_out_of_range() {
        Weights::from_ws(1.5);
    }

    #[test]
    #[should_panic(expected = "zero weight")]
    fn new_rejects_zero_vector() {
        Weights::new(0.0, 0.0);
    }

    #[test]
    fn l2_distance_on_the_simplex() {
        let a = Weights::from_ws(0.5);
        let b = Weights::from_ws(0.8);
        // (0.5,0.5) → (0.8,0.2): √(0.09 + 0.09) = 0.3√2.
        assert!((a.l2_distance(&b) - 0.3 * std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(a.l2_distance(&a), 0.0);
    }

    #[test]
    fn penalty_normalizer_matches_eqn3() {
        let w = Weights::from_ws(0.5);
        assert!((w.penalty_normalizer() - 1.5f64.sqrt()).abs() < 1e-12);
        // The normalizer bounds every achievable Δ~w: the extreme moves on
        // the simplex are to (0,1) or (1,0).
        for ws in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let w = Weights::from_ws(ws);
            let to_ends = w
                .l2_distance(&Weights::from_ws(0.0))
                .max(w.l2_distance(&Weights::from_ws(1.0)));
            assert!(to_ends <= w.penalty_normalizer() + 1e-12);
        }
    }

    #[test]
    fn query_constructors() {
        let q = Query::new(Point::new(0.1, 0.2), ks(&[1, 2]), 3);
        assert_eq!(q.k, 3);
        assert_eq!(q.weights, Weights::balanced());
        let q2 = q.reweighted(Weights::from_ws(0.9));
        assert_eq!(q2.loc, q.loc);
        assert_eq!(q2.weights.ws(), 0.9);
        let q3 = q.with_doc(ks(&[5]));
        assert_eq!(q3.doc, ks(&[5]));
        assert_eq!(q3.k, 3);
        let q4 = q.with_k(10);
        assert_eq!(q4.k, 10);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_rejected() {
        Query::new(Point::new(0.0, 0.0), ks(&[1]), 0);
    }
}
