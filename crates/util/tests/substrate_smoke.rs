//! Randomized smoke tests for the util substrate: top-k heap ordering
//! against a full sort, and the float total order the heaps rely on.

use std::cmp::Ordering;

use yask_util::{OrderedF64, Scored, TopK, Xoshiro256};

#[test]
fn topk_agrees_with_full_sort_under_random_workloads() {
    let mut rng = Xoshiro256::seed_from_u64(2016);
    for round in 0..200 {
        let n = rng.below(120);
        let k = rng.below(12) + 1;
        let scores: Vec<f64> = (0..n).map(|_| rng.range_f64(-5.0, 5.0)).collect();

        let mut heap = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            heap.push(s, i as u32);
        }
        let got: Vec<(f64, u32)> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|s: Scored<u32>| (s.score.get(), s.item))
            .collect();

        let mut want: Vec<(f64, u32)> = scores.iter().copied().zip(0..n as u32).collect();
        // Best first; ties broken toward the smaller item, matching TopK.
        want.sort_by(|a, b| {
            OrderedF64(b.0)
                .cmp(&OrderedF64(a.0))
                .then(a.1.cmp(&b.1))
        });
        want.truncate(k);
        assert_eq!(got, want, "round {round}: top-{k} of {n}");
    }
}

#[test]
fn topk_threshold_is_kth_best_exactly() {
    let mut rng = Xoshiro256::seed_from_u64(7);
    let mut heap = TopK::new(5);
    let mut all = Vec::new();
    for i in 0..300u32 {
        let s = rng.range_f64(0.0, 1.0);
        all.push(s);
        heap.push(s, i);
        if heap.is_full() {
            let mut sorted = all.clone();
            sorted.sort_by_key(|&v| std::cmp::Reverse(OrderedF64(v)));
            assert_eq!(heap.threshold(), sorted[4], "after {} pushes", i + 1);
        }
    }
}

#[test]
fn ordered_f64_is_a_total_order() {
    let specials = [
        f64::NEG_INFINITY,
        -1.5,
        -0.0,
        0.0,
        f64::MIN_POSITIVE,
        1.5,
        f64::INFINITY,
        f64::NAN,
    ];
    for &a in &specials {
        for &b in &specials {
            let ab = OrderedF64(a).cmp(&OrderedF64(b));
            let ba = OrderedF64(b).cmp(&OrderedF64(a));
            assert_eq!(ab, ba.reverse(), "antisymmetry for {a} vs {b}");
            for &c in &specials {
                // Transitivity of <=.
                if ab != Ordering::Greater
                    && OrderedF64(b).cmp(&OrderedF64(c)) != Ordering::Greater
                {
                    assert_ne!(
                        OrderedF64(a).cmp(&OrderedF64(c)),
                        Ordering::Greater,
                        "transitivity for {a} <= {b} <= {c}"
                    );
                }
            }
        }
    }
    // Sorting anything (NaN included) must not panic, and NaN sorts first
    // (below every real score) so it can never displace a real result.
    let mut v: Vec<OrderedF64> = specials.iter().map(|&x| OrderedF64(x)).collect();
    v.sort();
    assert!(v[0].0.is_nan());
    assert_eq!(v.last().unwrap().0, f64::INFINITY);
}

#[test]
fn scored_ordering_is_score_major_item_minor() {
    let a = Scored::new(0.5, 2u32);
    let b = Scored::new(0.5, 3u32);
    let c = Scored::new(0.9, 1u32);
    assert!(c > a, "higher score wins");
    assert!(a > b, "equal score: smaller item ranks higher");
    let mut v = vec![b.clone(), c.clone(), a.clone()];
    v.sort();
    assert_eq!(v, vec![b, a, c]);
}
