//! Shared utilities for the YASK workspace.
//!
//! This crate is the lowest layer of the workspace and deliberately has no
//! dependencies. It provides the small, performance-sensitive building
//! blocks that the index, query and why-not layers lean on:
//!
//! * [`float`] — total ordering for `f64` scores ([`OrderedF64`]) plus
//!   tolerant float comparison helpers, so ranking code never has to deal
//!   with `PartialOrd` escape hatches.
//! * [`hash`] — an FxHash-style fast hasher ([`hash::FxHashMap`],
//!   [`hash::FxHashSet`]) used for small integer keys (keyword ids, node
//!   ids) where SipHash is measurably slow.
//! * [`heap`] — a bounded top-k max/min heap ([`heap::TopK`]) and scored
//!   priority-queue entries ([`heap::Scored`]) for best-first search.
//! * [`stats`] — streaming summary statistics and percentile helpers used
//!   by the benchmark harness.
//! * [`rng`] — a tiny deterministic RNG ([`rng::SplitMix64`],
//!   [`rng::Xoshiro256`]) and a Zipf sampler, so fixtures and datasets are
//!   reproducible without depending on `rand`'s version churn.
//! * [`epoch`] — an arc-swap-style snapshot cell ([`EpochCell`]) that the
//!   execution layer uses to publish whole engine epochs to readers.
//! * [`failpoint`] — a named fault-injection registry (error / delay /
//!   panic-once), compile-time no-op in release builds, used by the
//!   chaos test suite to certify crash and overload behaviour.

pub mod epoch;
pub mod failpoint;
pub mod float;
pub mod hash;
pub mod heap;
pub mod rng;
pub mod stats;

pub use epoch::EpochCell;
pub use float::{approx_eq, approx_le, OrderedF64};
pub use hash::{FxHashMap, FxHashSet};
pub use heap::{Scored, TopK};
pub use rng::{SplitMix64, Xoshiro256, Zipf};
pub use stats::Summary;
