//! Fault injection points — a zero-dependency failpoint registry.
//!
//! A *failpoint* is a named hook compiled into a fragile code path
//! (an fsync, a rename, a shard job). In release builds (without the
//! `failpoints` feature) every hook compiles to an inline no-op — the
//! registry, the env parse, and the per-site branch all vanish. In
//! debug/test builds (or with the `failpoints` feature) a test can arm
//! the point with an [`Action`] and the next [`fire`] call at that
//! site injects the fault:
//!
//! * [`Action::Error`] — [`fire`] returns an `io::Error` the caller
//!   must propagate like any real I/O failure.
//! * [`Action::Delay`] — [`fire`] sleeps for the configured duration,
//!   simulating a stalled disk or a slow shard.
//! * [`Action::Panic`] — [`fire`] panics, simulating a crashed worker
//!   (the pool's `catch_unwind` and the recovery paths must cope).
//!
//! Every action carries an optional *remaining* count: `panic(1)`
//! fires once and then disarms itself, which is how "panic-once"
//! crash windows are scripted without the test having to race the
//! disarm.
//!
//! Activation is programmatic ([`cfg()`], [`cfg_times`], [`clear`]) or
//! via the `YASK_FAILPOINTS` environment variable, parsed on first
//! use: `YASK_FAILPOINTS="wal.sync.payload=error;shard.exec=delay(50)"`.
//!
//! Sites call [`fire`] (for `io::Result` paths) or [`eval`] (to
//! handle the action themselves). Both are free when nothing is armed:
//! one relaxed load, no lock, no allocation.

use std::io;

/// What an armed failpoint does when its site is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Return an `io::Error` (kind `Other`) naming the point.
    Error,
    /// Sleep for this many milliseconds, then continue normally.
    Delay(u64),
    /// Panic with a message naming the point.
    Panic,
}

#[cfg(any(debug_assertions, feature = "failpoints"))]
mod active {
    use super::Action;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    #[derive(Clone, Copy, Debug)]
    pub(super) struct Config {
        pub(super) action: Action,
        /// `None` = fire every time; `Some(n)` = fire `n` more times,
        /// then disarm.
        pub(super) remaining: Option<u64>,
    }

    struct Registry {
        points: Mutex<HashMap<String, Config>>,
        /// Total fires per point, for test assertions.
        hits: Mutex<HashMap<String, u64>>,
    }

    /// 0 = uninitialised (env not parsed yet), 1 = disarmed, 2 = armed.
    static STATE: AtomicU8 = AtomicU8::new(0);
    /// Total injected faults (all points), exported for observability.
    static INJECTED: AtomicU64 = AtomicU64::new(0);
    static REGISTRY: OnceLock<Registry> = OnceLock::new();

    fn registry() -> &'static Registry {
        REGISTRY.get_or_init(|| Registry {
            points: Mutex::new(HashMap::new()),
            hits: Mutex::new(HashMap::new()),
        })
    }

    /// Lazily parse `YASK_FAILPOINTS` the first time any site or
    /// config call touches the registry, then flip `STATE` off the
    /// `uninit` value so the fast path never comes back here.
    fn ensure_init() {
        if STATE.load(Ordering::Acquire) != 0 {
            return;
        }
        let reg = registry();
        let mut points = reg.points.lock().expect("failpoint registry");
        if STATE.load(Ordering::Acquire) != 0 {
            return; // lost the race; the winner already parsed
        }
        if let Ok(spec) = std::env::var("YASK_FAILPOINTS") {
            for (name, config) in parse_spec(&spec) {
                points.insert(name, config);
            }
        }
        let armed = !points.is_empty();
        STATE.store(if armed { 2 } else { 1 }, Ordering::Release);
    }

    /// Parses `name=action;name=action` where action is `error`,
    /// `panic`, `delay(MS)`, optionally suffixed with a fire budget:
    /// `panic(1)`, `error(3)`, `delay(50,2)`. Unparseable entries are
    /// ignored.
    pub(super) fn parse_spec(spec: &str) -> Vec<(String, Config)> {
        let mut out = Vec::new();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, action)) = entry.split_once('=') else {
                continue;
            };
            let (head, args) = match action.split_once('(') {
                Some((head, rest)) => (head.trim(), rest.trim_end_matches(')').trim()),
                None => (action.trim(), ""),
            };
            let num = |s: &str| s.trim().parse::<u64>().ok();
            let config = match head {
                "error" => Config {
                    action: Action::Error,
                    remaining: num(args),
                },
                "panic" => Config {
                    action: Action::Panic,
                    remaining: num(args),
                },
                "delay" => {
                    let (ms, times) = match args.split_once(',') {
                        Some((ms, times)) => (num(ms), num(times)),
                        None => (num(args), None),
                    };
                    match ms {
                        Some(ms) => Config {
                            action: Action::Delay(ms),
                            remaining: times,
                        },
                        None => continue,
                    }
                }
                _ => continue,
            };
            out.push((name.trim().to_string(), config));
        }
        out
    }

    pub(super) fn set(name: &str, action: Action, remaining: Option<u64>) {
        ensure_init();
        let reg = registry();
        let mut points = reg.points.lock().expect("failpoint registry");
        points.insert(name.to_string(), Config { action, remaining });
        STATE.store(2, Ordering::Release);
    }

    pub(super) fn clear(name: &str) {
        ensure_init();
        let reg = registry();
        let mut points = reg.points.lock().expect("failpoint registry");
        points.remove(name);
        if points.is_empty() {
            STATE.store(1, Ordering::Release);
        }
    }

    pub(super) fn clear_all() {
        ensure_init();
        let reg = registry();
        reg.points.lock().expect("failpoint registry").clear();
        STATE.store(1, Ordering::Release);
    }

    pub(super) fn hits(name: &str) -> u64 {
        ensure_init();
        let reg = registry();
        let hits = reg.hits.lock().expect("failpoint hits");
        hits.get(name).copied().unwrap_or(0)
    }

    pub(super) fn injected_total() -> u64 {
        INJECTED.load(Ordering::Relaxed)
    }

    #[inline]
    pub(super) fn eval(name: &str) -> Option<Action> {
        if STATE.load(Ordering::Relaxed) == 1 {
            return None;
        }
        eval_slow(name)
    }

    #[cold]
    fn eval_slow(name: &str) -> Option<Action> {
        ensure_init();
        if STATE.load(Ordering::Acquire) != 2 {
            return None;
        }
        let reg = registry();
        let action = {
            let mut points = reg.points.lock().expect("failpoint registry");
            let config = points.get_mut(name)?;
            let action = config.action;
            if let Some(remaining) = &mut config.remaining {
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    points.remove(name);
                    if points.is_empty() {
                        STATE.store(1, Ordering::Release);
                    }
                }
            }
            action
        };
        // Count and act *after* dropping the registry lock: a
        // panicking or sleeping site must not poison or serialize the
        // registry.
        INJECTED.fetch_add(1, Ordering::Relaxed);
        *reg.hits
            .lock()
            .expect("failpoint hits")
            .entry(name.to_string())
            .or_insert(0) += 1;
        match action {
            Action::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
            Action::Panic => panic!("failpoint {name} fired: panic"),
            Action::Error => {}
        }
        Some(action)
    }
}

/// Arms `name` with `action`, firing on every hit until [`clear`]ed.
#[inline]
pub fn cfg(name: &str, action: Action) {
    #[cfg(any(debug_assertions, feature = "failpoints"))]
    active::set(name, action, None);
    #[cfg(not(any(debug_assertions, feature = "failpoints")))]
    let _ = (name, action);
}

/// Arms `name` with `action` for the next `times` hits, after which
/// the point disarms itself (`cfg_times("x", Panic, 1)` = panic-once).
#[inline]
pub fn cfg_times(name: &str, action: Action, times: u64) {
    #[cfg(any(debug_assertions, feature = "failpoints"))]
    active::set(name, action, Some(times));
    #[cfg(not(any(debug_assertions, feature = "failpoints")))]
    let _ = (name, action, times);
}

/// Disarms `name` (no-op if it was not armed).
#[inline]
pub fn clear(name: &str) {
    #[cfg(any(debug_assertions, feature = "failpoints"))]
    active::clear(name);
    #[cfg(not(any(debug_assertions, feature = "failpoints")))]
    let _ = name;
}

/// Disarms every point.
#[inline]
pub fn clear_all() {
    #[cfg(any(debug_assertions, feature = "failpoints"))]
    active::clear_all();
}

/// How many times `name` has fired (injected a fault) since process
/// start. Sites reached while the point was disarmed do not count.
#[inline]
pub fn hits(name: &str) -> u64 {
    #[cfg(any(debug_assertions, feature = "failpoints"))]
    return active::hits(name);
    #[cfg(not(any(debug_assertions, feature = "failpoints")))]
    {
        let _ = name;
        0
    }
}

/// Total injected faults across every point since process start.
#[inline]
pub fn injected_total() -> u64 {
    #[cfg(any(debug_assertions, feature = "failpoints"))]
    return active::injected_total();
    #[cfg(not(any(debug_assertions, feature = "failpoints")))]
    0
}

/// Looks up and consumes one firing of `name`, returning the action
/// the caller should take (`None` = not armed, continue normally).
/// [`Action::Delay`] is already slept here; it is returned anyway so
/// callers can observe that a delay happened.
#[inline]
pub fn eval(name: &str) -> Option<Action> {
    #[cfg(any(debug_assertions, feature = "failpoints"))]
    return active::eval(name);
    #[cfg(not(any(debug_assertions, feature = "failpoints")))]
    {
        let _ = name;
        None
    }
}

/// The standard site hook for `io::Result` paths: injects the armed
/// fault, mapping [`Action::Error`] to an `io::Error`. Free (one
/// relaxed load) when nothing is armed, gone entirely in release.
#[inline]
pub fn fire(name: &str) -> io::Result<()> {
    match eval(name) {
        Some(Action::Error) => Err(io::Error::other(format!("failpoint {name} fired: error"))),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // Tests in this module share the global registry with each other
    // (and with any other failpoint test in this binary); they use
    // unique point names so parallel execution cannot interfere.

    #[test]
    fn disarmed_points_are_free_and_silent() {
        assert!(fire("test.never-armed").is_ok());
        assert_eq!(hits("test.never-armed"), 0);
    }

    #[test]
    fn error_action_fires_until_cleared() {
        cfg("test.err", Action::Error);
        assert!(fire("test.err").is_err());
        assert!(fire("test.err").is_err());
        assert!(hits("test.err") >= 2);
        clear("test.err");
        assert!(fire("test.err").is_ok());
    }

    #[test]
    fn counted_action_disarms_itself() {
        cfg_times("test.twice", Action::Error, 2);
        assert!(fire("test.twice").is_err());
        assert!(fire("test.twice").is_err());
        assert!(fire("test.twice").is_ok(), "third hit must pass");
        assert_eq!(hits("test.twice"), 2);
    }

    #[test]
    fn panic_action_panics_once() {
        cfg_times("test.panic", Action::Panic, 1);
        let result = std::panic::catch_unwind(|| fire("test.panic"));
        assert!(result.is_err(), "armed panic point must panic");
        assert!(fire("test.panic").is_ok(), "panic(1) disarms after one hit");
    }

    #[test]
    fn delay_action_sleeps_and_reports() {
        cfg_times("test.delay", Action::Delay(10), 1);
        let t0 = std::time::Instant::now();
        assert_eq!(eval("test.delay"), Some(Action::Delay(10)));
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(eval("test.delay"), None);
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "failpoints"))]
    fn spec_parser_accepts_the_documented_grammar() {
        let parsed = active::parse_spec("a=error; b=panic(1) ;c=delay(50);d=delay(5,2);junk;e=wat");
        let by_name: std::collections::HashMap<_, _> = parsed.into_iter().collect();
        assert_eq!(by_name["a"].action, Action::Error);
        assert_eq!(by_name["a"].remaining, None);
        assert_eq!(by_name["b"].action, Action::Panic);
        assert_eq!(by_name["b"].remaining, Some(1));
        assert_eq!(by_name["c"].action, Action::Delay(50));
        assert_eq!(by_name["d"].action, Action::Delay(5));
        assert_eq!(by_name["d"].remaining, Some(2));
        assert!(!by_name.contains_key("junk"));
        assert!(!by_name.contains_key("e"));
    }
}
