//! Heap helpers for best-first search and top-k maintenance.
//!
//! Two pieces:
//!
//! * [`Scored`] — a `(score, payload)` pair ordered by score then payload,
//!   giving deterministic tie-breaking inside `BinaryHeap`. The spatial
//!   keyword top-k algorithm (paper §3.3) pops the *highest-bound* entry
//!   first, so `BinaryHeap<Scored<T>>` (a max-heap) is the natural fit.
//! * [`TopK`] — a bounded collector that keeps the k best-scored items seen
//!   so far, with the *threshold* (current k-th best score) exposed so
//!   search can prune.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::float::OrderedF64;

/// A score/payload pair with a total order: by score, ties broken towards
/// the *smaller* payload (a greater `Scored` has higher score, or equal
/// score and smaller payload).
///
/// The payload tie-break keeps heap pop order deterministic across runs and
/// matches the workspace-wide ranking convention (score descending, id
/// ascending), which the paper's ranking definition needs — ranks must be
/// total for the rank-update sweep of the preference-adjustment module to
/// be exact.
#[derive(Clone, Debug)]
pub struct Scored<T> {
    /// The ordering key (e.g. a score or score upper bound).
    pub score: OrderedF64,
    /// The carried item.
    pub item: T,
}

impl<T> Scored<T> {
    /// Creates a new scored entry.
    #[inline]
    pub fn new(score: f64, item: T) -> Self {
        Scored {
            score: OrderedF64(score),
            item,
        }
    }
}

impl<T: Eq> PartialEq for Scored<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.item == other.item
    }
}

impl<T: Eq> Eq for Scored<T> {}

impl<T: Ord> PartialOrd for Scored<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Scored<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| other.item.cmp(&self.item))
    }
}

/// Bounded top-k collector: retains the `k` items with the highest scores.
///
/// Internally a min-heap of size ≤ k over [`Scored`] entries (the *worst*
/// retained item sits at the top so it can be evicted in O(log k)).
/// Ties on score are broken towards the *smaller* payload, matching the
/// deterministic ranking used across the workspace.
///
/// ```
/// use yask_util::TopK;
/// let mut t = TopK::new(2);
/// t.push(0.1, 10u64);
/// t.push(0.9, 20);
/// t.push(0.5, 30);
/// let out = t.into_sorted_vec();
/// assert_eq!(out.len(), 2);
/// assert_eq!(out[0].item, 20); // best first
/// assert_eq!(out[1].item, 30);
/// ```
#[derive(Clone, Debug)]
pub struct TopK<T: Ord> {
    k: usize,
    // Min-heap via Reverse ordering on Scored.
    heap: BinaryHeap<std::cmp::Reverse<Scored<T>>>,
}

impl<T: Ord> TopK<T> {
    /// Creates a collector retaining the best `k` items. `k == 0` retains
    /// nothing.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Number of items currently retained (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no items are retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when k items are retained, i.e. the collector is saturated and
    /// [`threshold`](Self::threshold) is meaningful for pruning.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The k-th best score so far, or `-inf` while unsaturated.
    ///
    /// Best-first search can stop as soon as its frontier upper bound drops
    /// to or below this threshold — with deterministic tie-breaking the
    /// retained set can no longer change.
    pub fn threshold(&self) -> f64 {
        if self.is_full() {
            self.heap
                .peek()
                .map(|e| e.0.score.get())
                .unwrap_or(f64::NEG_INFINITY)
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Offers an item; returns `true` if it was retained.
    pub fn push(&mut self, score: f64, item: T) -> bool {
        if self.k == 0 {
            return false;
        }
        let entry = std::cmp::Reverse(Scored::new(score, item));
        if self.heap.len() < self.k {
            self.heap.push(entry);
            true
        } else if let Some(worst) = self.heap.peek() {
            // Higher score wins; on equal score the smaller item wins, and
            // Reverse flips Scored's ordering, so compare directly.
            if entry.0 > worst.0 {
                self.heap.pop();
                self.heap.push(entry);
                true
            } else {
                false
            }
        } else {
            false
        }
    }

    /// Drains into a vector sorted best-first.
    pub fn into_sorted_vec(self) -> Vec<Scored<T>> {
        let mut v: Vec<Scored<T>> = self.heap.into_iter().map(|r| r.0).collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scored_orders_by_score_then_item() {
        let a = Scored::new(0.5, 1u32);
        let b = Scored::new(0.5, 2u32);
        let c = Scored::new(0.6, 0u32);
        // Equal score: the smaller item is the greater (better) entry.
        assert!(a > b);
        assert!(b < c);
        assert_eq!(a, Scored::new(0.5, 1u32));
    }

    #[test]
    fn binary_heap_pops_highest_first() {
        let mut h = BinaryHeap::new();
        h.push(Scored::new(0.2, 2u32));
        h.push(Scored::new(0.9, 9u32));
        h.push(Scored::new(0.5, 5u32));
        assert_eq!(h.pop().unwrap().item, 9);
        assert_eq!(h.pop().unwrap().item, 5);
        assert_eq!(h.pop().unwrap().item, 2);
    }

    #[test]
    fn topk_keeps_best() {
        let mut t = TopK::new(3);
        for (s, i) in [(0.1, 1u64), (0.7, 2), (0.3, 3), (0.9, 4), (0.5, 5)] {
            t.push(s, i);
        }
        let v = t.into_sorted_vec();
        let items: Vec<u64> = v.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![4, 2, 5]);
    }

    #[test]
    fn topk_threshold_tracks_kth_best() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f64::NEG_INFINITY);
        t.push(0.4, 1u64);
        assert_eq!(t.threshold(), f64::NEG_INFINITY); // not yet saturated
        t.push(0.8, 2);
        assert_eq!(t.threshold(), 0.4);
        t.push(0.6, 3);
        assert_eq!(t.threshold(), 0.6);
    }

    #[test]
    fn topk_tie_break_prefers_smaller_item() {
        let mut t = TopK::new(1);
        t.push(0.5, 7u64);
        // Equal score, smaller id: replaces.
        assert!(t.push(0.5, 3));
        // Equal score, larger id: rejected.
        assert!(!t.push(0.5, 9));
        let v = t.into_sorted_vec();
        assert_eq!(v[0].item, 3);
    }

    #[test]
    fn topk_zero_capacity() {
        let mut t = TopK::new(0);
        assert!(!t.push(1.0, 1u32));
        assert!(t.is_empty());
        assert!(t.is_full());
        assert!(t.into_sorted_vec().is_empty());
    }

    #[test]
    fn topk_matches_full_sort() {
        // Deterministic pseudo-random battery.
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let items: Vec<(f64, u64)> = (0..500).map(|i| (next(), i)).collect();
        let mut t = TopK::new(25);
        for &(s, i) in &items {
            t.push(s, i);
        }
        let got: Vec<u64> = t.into_sorted_vec().into_iter().map(|s| s.item).collect();

        let mut sorted = items.clone();
        sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let want: Vec<u64> = sorted.into_iter().take(25).map(|(_, i)| i).collect();
        assert_eq!(got, want);
    }
}
