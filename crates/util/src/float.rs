//! Total ordering and tolerant comparison for `f64` scores.
//!
//! Ranking scores in YASK (Eqn (1) of the paper) are convex combinations of
//! normalized quantities, so they always lie in `[0, 1]` and are never NaN
//! for well-formed inputs. [`OrderedF64`] still defines a *total* order (NaN
//! sorts below everything) so that heaps and sorts are safe even under
//! adversarial inputs.

use std::cmp::Ordering;
use std::fmt;

/// Default absolute tolerance used by [`approx_eq`] when comparing scores.
///
/// Scores are sums of a handful of `f64` multiplications, so anything below
/// `1e-9` is numerical noise rather than a meaningful ranking difference.
pub const EPSILON: f64 = 1e-9;

/// An `f64` with a total order, usable as a key in heaps and sorts.
///
/// The order is the IEEE total order restricted to the cases that matter
/// here: ordinary numbers compare as usual, and NaN compares *less than*
/// every number (and equal to itself). This means a NaN score can never win
/// a top-k contest, which is the conservative behaviour we want.
///
/// ```
/// use yask_util::OrderedF64;
/// let mut v = vec![OrderedF64(0.3), OrderedF64(0.1), OrderedF64(0.2)];
/// v.sort();
/// assert_eq!(v[0].0, 0.1);
/// assert_eq!(v[2].0, 0.3);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct OrderedF64(pub f64);

impl OrderedF64 {
    /// Wraps a raw `f64`.
    #[inline]
    pub fn new(v: f64) -> Self {
        OrderedF64(v)
    }

    /// Returns the wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Key used for the total order: NaN maps below all numbers.
    #[inline]
    fn key(self) -> (u8, f64) {
        if self.0.is_nan() {
            (0, 0.0)
        } else {
            (1, self.0)
        }
    }
}

impl PartialEq for OrderedF64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        let (ta, va) = self.key();
        let (tb, vb) = other.key();
        ta.cmp(&tb).then_with(|| {
            // Both non-NaN here (or both NaN, in which case values are 0.0).
            va.partial_cmp(&vb).unwrap_or(Ordering::Equal)
        })
    }
}

impl From<f64> for OrderedF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrderedF64(v)
    }
}

impl From<OrderedF64> for f64 {
    #[inline]
    fn from(v: OrderedF64) -> Self {
        v.0
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Returns true when `a` and `b` differ by at most [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

/// Returns true when `a <= b` up to [`EPSILON`] slack.
///
/// Used by bound-soundness assertions: a computed upper bound is accepted if
/// it exceeds the exact value by no more than numerical noise.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPSILON
}

/// Clamps `v` into `[lo, hi]`.
#[inline]
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    v.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_plain_numbers() {
        assert!(OrderedF64(1.0) > OrderedF64(0.5));
        assert!(OrderedF64(-1.0) < OrderedF64(0.0));
        assert_eq!(OrderedF64(0.25), OrderedF64(0.25));
    }

    #[test]
    fn nan_sorts_below_everything() {
        let nan = OrderedF64(f64::NAN);
        assert!(nan < OrderedF64(f64::NEG_INFINITY));
        assert!(nan < OrderedF64(0.0));
        assert_eq!(nan, OrderedF64(f64::NAN));
    }

    #[test]
    fn sort_is_stable_total() {
        let mut v = [OrderedF64(0.7),
            OrderedF64(f64::NAN),
            OrderedF64(0.1),
            OrderedF64(f64::INFINITY)];
        v.sort();
        assert!(v[0].0.is_nan());
        assert_eq!(v[1].0, 0.1);
        assert_eq!(v[2].0, 0.7);
        assert!(v[3].0.is_infinite());
    }

    #[test]
    fn approx_helpers() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(approx_le(0.3, 0.3));
        assert!(approx_le(0.3, 0.300000001));
        assert!(!approx_le(0.31, 0.3));
    }

    #[test]
    fn clamp_works() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn conversions_round_trip() {
        let x: OrderedF64 = 0.42.into();
        let y: f64 = x.into();
        assert_eq!(y, 0.42);
        assert_eq!(x.get(), 0.42);
        assert_eq!(OrderedF64::new(0.42), x);
    }
}
