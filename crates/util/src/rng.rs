//! Deterministic pseudo-random generators for fixtures and datasets.
//!
//! The workspace keeps `rand` for workload shuffling in higher layers, but
//! everything that must be byte-for-byte reproducible across `rand` major
//! versions (the embedded Hong-Kong-hotels stand-in dataset, property-test
//! fixtures, the experiments harness) uses these hand-rolled generators:
//!
//! * [`SplitMix64`] — the standard 64-bit mixer; used for seeding.
//! * [`Xoshiro256`] — xoshiro256** 1.0; the general-purpose generator.
//! * [`Zipf`] — a rank-frequency sampler for skewed keyword draws, matching
//!   the skew of real facility/comment vocabularies.

/// SplitMix64: tiny, fast, and the recommended seeder for xoshiro state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna): fast, high-quality, 256-bit state.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the full 256-bit state from a single `u64` via SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Requires `lo <= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[0, n)` via Lemire-style rejection-free widening
    /// multiply (slight modulo bias is irrelevant for n ≪ 2^64). Panics if
    /// `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Standard normal draw via Box–Muller (one value per call; the pair's
    /// second value is discarded for simplicity — fixtures are not hot).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `m` distinct indices from `[0, n)` (m ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, m: usize) -> Vec<usize> {
        assert!(m <= n);
        // Partial Fisher–Yates over an index vector; fine for fixture sizes.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..m {
            let j = self.range_usize(i, n);
            idx.swap(i, j);
        }
        idx.truncate(m);
        idx
    }
}

/// Zipf-distributed sampler over ranks `0..n` with exponent `s`.
///
/// Precomputes the CDF once (O(n)) and samples by binary search (O(log n)).
/// Rank 0 is the most frequent item, matching the convention that vocabulary
/// index 0 is the most common keyword.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with skew `s` (s = 0 is uniform;
    /// larger s is more skewed; s ≈ 1 matches natural-language keyword
    /// frequencies). Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(s >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point drift on the last bucket.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is NaN-free"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_sequence_is_stable() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn xoshiro_uniform_range() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            let w = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&w));
            let i = r.below(10);
            assert!(i < 10);
        }
    }

    #[test]
    fn xoshiro_mean_is_centered() {
        let mut r = Xoshiro256::seed_from_u64(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_has_right_moments() {
        let mut r = Xoshiro256::seed_from_u64(2);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Xoshiro256::seed_from_u64(4);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let z = Zipf::new(100, 1.0);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 under s=1, n=100 has probability 1/H_100 ≈ 0.193.
        let p0 = counts[0] as f64 / 50_000.0;
        assert!((p0 - 0.193).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut r = Xoshiro256::seed_from_u64(6);
        let z = Zipf::new(10, 0.0);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.02, "p = {p}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Xoshiro256::seed_from_u64(0).below(0);
    }
}
