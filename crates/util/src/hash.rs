//! FxHash-style fast hashing.
//!
//! Keyword ids and tree-node ids are small dense integers; SipHash (the
//! standard library default) costs more than the table lookup itself for
//! such keys. This module hand-rolls the well-known Fx multiply-rotate mix
//! (as used by rustc) instead of pulling an external crate, per the
//! workspace's offline-dependency policy (see DESIGN.md §4).
//!
//! HashDoS resistance is irrelevant here: all hashed keys are internal ids,
//! never attacker-controlled strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher.
///
/// Processes input a word at a time:
/// `state = (state.rotate_left(5) ^ word) * SEED`.
/// Extremely fast for integer keys; low quality for long strings, which
/// we do not use it for.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&3), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn set_basic_ops() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i * 7);
        }
        assert_eq!(s.len(), 100);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_stream_hashing_covers_remainders() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        // Different lengths exercise the chunk/remainder paths.
        assert_ne!(h(b"abcdefgh"), h(b"abcdefg"));
        assert_ne!(h(b"abcdefghi"), h(b"abcdefgh"));
        assert_eq!(h(b"abcdefghi"), h(b"abcdefghi"));
    }

    #[test]
    fn distinct_small_keys_spread() {
        // Sanity: 1000 consecutive integers should produce 1000 distinct
        // hashes (Fx is a bijection on u64 for single-word input).
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..1000 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(i);
            seen.insert(hasher.finish());
        }
        assert_eq!(seen.len(), 1000);
    }
}
