//! Summary statistics for the benchmark harness.
//!
//! The experiments binary reports mean / p50 / p95 / p99 latencies per
//! parameter point, in the same style as the tables of the papers YASK
//! packages. [`Summary`] collects raw samples and computes the digest once
//! at the end — exact percentiles over the full sample set, no sketching,
//! since bench sample counts are small.

use std::time::Duration;

/// A collected sample set with exact percentile queries.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Adds a duration sample, recorded in microseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64() * 1e6);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Sample standard deviation, or 0 for n < 2.
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|x| (x - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&mut self) -> f64 {
        self.percentile(0.0)
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&mut self) -> f64 {
        self.percentile(100.0)
    }

    /// Exact percentile by the nearest-rank method. `p` in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// Median (p50).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// One-line digest: `mean ± std (p50=…, p95=…, n=…)`.
    pub fn digest(&mut self) -> String {
        format!(
            "{:.2} ± {:.2} (p50={:.2}, p95={:.2}, n={})",
            self.mean(),
            self.std_dev(),
            self.percentile(50.0),
            self.percentile(95.0),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroes() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn mean_and_std() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std-dev of this classic set is ~2.138.
        assert!((s.std_dev() - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Summary::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(95.0), 95.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.median(), 50.0);
    }

    #[test]
    fn record_duration_in_micros() {
        let mut s = Summary::new();
        s.record_duration(Duration::from_millis(2));
        assert!((s.mean() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn digest_renders() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(3.0);
        let d = s.digest();
        assert!(d.contains("n=2"), "{d}");
    }

    #[test]
    fn percentile_after_more_records_resorts() {
        let mut s = Summary::new();
        s.record(10.0);
        assert_eq!(s.median(), 10.0);
        s.record(0.0);
        s.record(20.0);
        assert_eq!(s.median(), 10.0);
        assert_eq!(s.max(), 20.0);
    }
}
