//! An arc-swap-style snapshot cell for epoch-published state.
//!
//! Writers build a whole new state value and [`EpochCell::store`] it;
//! readers [`EpochCell::load`] an `Arc` pin of whatever epoch is current
//! and keep using it for the rest of their operation — a concurrent store
//! never tears state out from under them. The cell is a plain
//! `RwLock<Arc<T>>`: the lock is held only for the duration of an `Arc`
//! clone or pointer swap, so readers never block each other and a load is
//! a few nanoseconds. (The real `arc-swap` crate does this wait-free; the
//! lock-based cell has the same API shape and is dependency-free.)

use std::sync::{Arc, RwLock};

/// A cell holding the current epoch of some shared state `T`.
#[derive(Debug)]
pub struct EpochCell<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// Creates a cell publishing `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        EpochCell {
            inner: RwLock::new(initial),
        }
    }

    /// Pins the current epoch. The returned `Arc` stays valid (and
    /// unchanged) however many stores happen afterwards.
    pub fn load(&self) -> Arc<T> {
        self.inner.read().expect("epoch cell poisoned").clone()
    }

    /// Publishes a new epoch. In-flight readers keep their pinned `Arc`;
    /// subsequent loads observe `next`.
    pub fn store(&self, next: Arc<T>) {
        *self.inner.write().expect("epoch cell poisoned") = next;
    }
}

impl<T> From<T> for EpochCell<T> {
    fn from(value: T) -> Self {
        EpochCell::new(Arc::new(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_pins_across_stores() {
        let cell = EpochCell::from(vec![1, 2, 3]);
        let pinned = cell.load();
        cell.store(Arc::new(vec![9]));
        assert_eq!(*pinned, vec![1, 2, 3], "pinned epoch must not change");
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn concurrent_readers_see_whole_epochs() {
        // Each epoch is a vec whose entries all equal the epoch number; a
        // torn read would surface as a mixed vector.
        let cell = std::sync::Arc::new(EpochCell::from(vec![0u64; 64]));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let epoch = cell.load();
                    let first = epoch[0];
                    assert!(epoch.iter().all(|&v| v == first), "torn epoch");
                }
            }));
        }
        for e in 1..200u64 {
            cell.store(Arc::new(vec![e; 64]));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.load()[0], 199);
    }
}
