//! The λ sweep of the demo's "Query Refinement Effectiveness" scenario
//! (paper §4): how the penalty weight λ trades modifying `k` against
//! modifying the weights (Eqn 3) or the keywords (Eqn 4).
//!
//! Small λ makes `k` changes expensive → the refinement moves the weights
//! / edits the keywords instead; large λ makes `k` changes cheap → the
//! refinement converges to "just raise k".
//!
//! Run with: `cargo run --release --example refine_lambda`

use yask::prelude::*;

fn main() {
    let (corpus, vocab) = yask::data::hk_hotels();
    let engine = Yask::with_defaults(corpus);

    let doc = KeywordSet::from_ids(
        ["clean", "comfortable"].iter().map(|w| vocab.lookup(w).unwrap()),
    );
    let query = Query::new(Point::new(114.172, 22.297), doc, 3);
    let top = engine.top_k(&query);

    // A missing hotel a little way down the ranking — preferably one
    // whose revival benefits from *moving the weights* (not only from
    // raising k), so the Eqn (3) sweep shows the trade-off.
    let params = engine.score_params();
    let missing = (0..30)
        .map(|off| yask::data::pick_missing(engine.corpus(), &params, &query, 1, off))
        .find(|m| {
            engine
                .refine_preference(&query, m, 0.5)
                .map(|r| r.delta_w > 0.0)
                .unwrap_or(false)
        })
        .unwrap_or_else(|| yask::data::pick_missing(engine.corpus(), &params, &query, 1, 5));
    let name = &engine.corpus().get(missing[0]).name;
    println!("initial query: top-3 'clean comfortable' near TST");
    println!("missing hotel: {name} (initially ranked {})", {
        let e = engine.explain(&query, &missing).unwrap();
        e[0].rank
    });
    assert!(!top.iter().any(|r| r.id == missing[0]));

    println!("\npreference adjustment (Eqn 3) vs λ:");
    println!("{:>5} {:>9} {:>9} {:>6} {:>9} {:>9}", "λ", "ws'", "wt'", "k'", "Δw", "penalty");
    for lambda in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let r = engine.refine_preference(&query, &missing, lambda).unwrap();
        println!(
            "{:>5.1} {:>9.4} {:>9.4} {:>6} {:>9.4} {:>9.4}",
            lambda,
            r.query.weights.ws(),
            r.query.weights.wt(),
            r.query.k,
            r.delta_w,
            r.penalty
        );
    }

    println!("\nkeyword adaptation (Eqn 4) vs λ:");
    println!("{:>5} {:>6} {:>6} {:>9}  refined keywords", "λ", "Δdoc", "k'", "penalty");
    for lambda in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let r = engine.refine_keywords(&query, &missing, lambda).unwrap();
        let words: Vec<&str> = r.query.doc.iter().map(|id| vocab.resolve(id)).collect();
        println!(
            "{:>5.1} {:>6} {:>6} {:>9.4}  [{}]",
            lambda,
            r.delta_doc,
            r.query.k,
            r.penalty,
            words.join(", ")
        );
    }

    println!(
        "\nreading: larger λ ⇒ the k-term dominates the penalty, so refinements\n\
         drift towards pure k-enlargement; smaller λ ⇒ parameter edits are\n\
         cheaper and the missing hotel is revived with k' closer to the\n\
         original k."
    );
}
