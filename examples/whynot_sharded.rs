//! The execution subsystem in action: the same why-not loop as
//! `quickstart`, but on a 4-shard scatter-gather [`Executor`] with the
//! answer caches on — and the metrics surface printed at the end.
//!
//! Run with: `cargo run --release --example whynot_sharded`

use yask::prelude::*;

fn main() {
    // 1. Build the executor: the corpus is partitioned into 4 STR shards
    //    (one KcR-tree each, built in parallel); top-k queries scatter to
    //    all shards and gather into an exact global answer.
    let (corpus, vocab) = yask::data::hk_hotels();
    let exec = Executor::new(
        corpus,
        ExecConfig {
            shards: 4,
            workers: 4,
            ..ExecConfig::default()
        },
    );
    println!(
        "executor: {} hotels across {} shards",
        exec.corpus().len(),
        exec.shard_count()
    );

    // 2. The usual top-5 query near Tsim Sha Tsui.
    let doc = KeywordSet::from_ids(
        ["clean", "comfortable"]
            .iter()
            .map(|w| vocab.lookup(w).expect("vocabulary term")),
    );
    let query = Query::new(Point::new(114.172, 22.297), doc, 5);
    let result = exec.top_k(&query);
    println!("\ntop-{} for \"clean comfortable\" near TST:", query.k);
    for (i, r) in result.iter().enumerate() {
        println!(
            "  {}. {:<42} score {:.4}",
            i + 1,
            exec.corpus().get(r.id).name,
            r.score
        );
    }

    // 3. Ask why a missing hotel is absent — through the executor, so the
    //    full answer lands in the why-not cache.
    let corpus = exec.corpus();
    let missing = corpus
        .iter()
        .filter(|o| !result.iter().any(|r| r.id == o.id))
        .find(|o| o.name.contains("Harbour"))
        .expect("some Harbour hotel is missing");
    let answer = exec
        .answer(&query, &[missing.id])
        .expect("valid why-not question");
    println!("\nwhy not \"{}\"?", missing.name);
    println!("  {}", answer.explanations[0].message);
    println!(
        "  preference penalty {:.4}, keyword penalty {:.4} → {:?} recommended",
        answer.preference.penalty, answer.keyword.penalty, answer.recommended
    );

    // 4. Repeat both requests: served from the caches, no recomputation.
    let again = exec.top_k(&query);
    assert_eq!(result, again);
    let answer_again = exec.answer(&query, &[missing.id]).expect("cached answer");
    assert_eq!(answer.preference.penalty, answer_again.preference.penalty);

    // 5. The metrics surface the server exports through /stats.
    let stats = exec.stats();
    println!(
        "\nexec stats: {} computed top-k ({} scattered), queue depth {}",
        stats.queries, stats.scatter_queries, stats.queue_depth
    );
    println!(
        "  topk cache:   {} hits / {} misses (rate {:.2})",
        stats.topk_cache.hits,
        stats.topk_cache.misses,
        stats.topk_cache.hit_rate()
    );
    println!(
        "  answer cache: {} hits / {} misses (rate {:.2})",
        stats.answer_cache.hits,
        stats.answer_cache.misses,
        stats.answer_cache.hit_rate()
    );
    for (i, shard) in stats.per_shard.iter().enumerate() {
        println!(
            "  shard {i}: {} objects, {} searches, mean {:.1}µs, {} nodes expanded",
            shard.objects, shard.queries, shard.mean_us, shard.nodes_expanded
        );
    }
    assert_eq!(stats.topk_cache.hits, 1);
    assert_eq!(stats.answer_cache.hits, 1);
}
