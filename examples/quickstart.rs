//! Quickstart: issue a spatial keyword top-k query, lose a hotel, ask why,
//! and get both refined queries — the full YASK loop in one file.
//!
//! Run with: `cargo run --release --example quickstart`

use yask::prelude::*;

fn main() {
    // 1. Load the demo dataset (the 539-hotel Hong Kong stand-in) and
    //    build the engine: one KcR-tree serves both the top-k engine and
    //    the why-not modules.
    let (corpus, vocab) = yask::data::hk_hotels();
    let engine = Yask::with_defaults(corpus);
    println!("database: {} hotels", engine.corpus().len());

    // 2. Issue a top-5 query near Tsim Sha Tsui for "clean comfortable".
    let doc = KeywordSet::from_ids(
        ["clean", "comfortable"]
            .iter()
            .map(|w| vocab.lookup(w).expect("vocabulary term")),
    );
    let query = Query::new(Point::new(114.172, 22.297), doc, 5);
    let result = engine.top_k(&query);
    println!("\ntop-{} for \"clean comfortable\" near TST:", query.k);
    for (i, r) in result.iter().enumerate() {
        println!(
            "  {}. {:<42} score {:.4}",
            i + 1,
            engine.corpus().get(r.id).name,
            r.score
        );
    }

    // 3. Pick a hotel that is *not* in the result and ask why.
    let missing = engine
        .corpus()
        .iter()
        .filter(|o| !result.iter().any(|r| r.id == o.id))
        .find(|o| o.name.contains("Harbour"))
        .expect("some Harbour hotel is missing");
    println!("\nwhy not \"{}\"?", missing.name);

    let answer = engine
        .answer(&query, &[missing.id])
        .expect("valid why-not question");
    println!("  {}", answer.explanations[0].message);

    // 4. The two refinement models (paper Definitions 2 and 3).
    let p = &answer.preference;
    println!(
        "\npreference adjustment: w = <{:.3}, {:.3}>, k = {} (penalty {:.4})",
        p.query.weights.ws(),
        p.query.weights.wt(),
        p.query.k,
        p.penalty
    );
    let kw = &answer.keyword;
    let words: Vec<&str> = kw.query.doc.iter().map(|id| vocab.resolve(id)).collect();
    println!(
        "keyword adaptation:    doc = [{}], k = {} (penalty {:.4})",
        words.join(", "),
        kw.query.k,
        kw.penalty
    );
    println!("recommended model:     {:?}", answer.recommended);

    // 5. Verify the recommendation revives the hotel.
    let refined = match answer.recommended {
        yask::core::engine::RecommendedModel::Preference => &p.query,
        yask::core::engine::RecommendedModel::Keyword => &kw.query,
    };
    let revived = engine.top_k(refined);
    assert!(
        revived.iter().any(|r| r.id == missing.id),
        "refined query must revive the missing hotel"
    );
    println!(
        "\nrefined query revives \"{}\" at rank {} of top-{}",
        missing.name,
        revived.iter().position(|r| r.id == missing.id).unwrap() + 1,
        refined.k
    );
}
