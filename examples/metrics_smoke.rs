//! Observability smoke (ISSUE 7 acceptance, CI's scrape step): boot the
//! YASK web service, drive one traced query and one why-not question
//! through the HTTP surface, then scrape `GET /metrics` and validate the
//! whole payload with the same Prometheus text-exposition parser the
//! unit tests use — every family declared, every sample well-formed,
//! every histogram series consistent. Finishes by checking the slow-query
//! log (`GET /debug/slow`) carries the span trees it just produced.
//!
//! Run with: `cargo run --release --example metrics_smoke`

use std::sync::Arc;

use yask::obs::validate_exposition;
use yask::server::{http_get_text, http_post, HttpServer, Json, YaskService};

fn main() {
    let service = Arc::new(YaskService::hk_demo());
    let server = HttpServer::spawn(0, 4, service.clone().into_handler()).expect("bind server");
    let addr = server.addr();
    println!("YASK server listening on http://{addr}/");

    // One query and one why-not explanation so every request-path
    // histogram (top-k, per-shard search, why-not module) has samples.
    let (status, reply) = http_post(
        addr,
        "/query",
        &Json::obj([
            ("x", Json::Num(114.172)),
            ("y", Json::Num(22.297)),
            (
                "keywords",
                Json::Arr(vec![Json::str("clean"), Json::str("comfortable")]),
            ),
            ("k", Json::Num(3.0)),
        ]),
    )
    .expect("query");
    assert_eq!(status, 200, "POST /query failed: {reply}");
    let session = reply.get("session").unwrap().as_f64().unwrap();
    let top: Vec<String> = reply
        .get("results")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r.get("name").unwrap().as_str().unwrap().to_owned())
        .collect();
    let missing = service
        .engine()
        .corpus()
        .iter()
        .map(|o| o.name.clone())
        .find(|n| !top.contains(n))
        .unwrap();
    let (status, reply) = http_post(
        addr,
        "/whynot/explain",
        &Json::obj([
            ("session", Json::Num(session)),
            ("missing", Json::Arr(vec![Json::str(missing)])),
        ]),
    )
    .expect("explain");
    assert_eq!(status, 200, "POST /whynot/explain failed: {reply}");

    // The scrape: the full payload must parse as valid exposition.
    let (status, text) = http_get_text(addr, "/metrics").expect("scrape /metrics");
    assert_eq!(status, 200);
    let summary = validate_exposition(&text)
        .unwrap_or_else(|e| panic!("/metrics is not valid Prometheus exposition: {e}"));
    println!(
        "GET /metrics -> {} families, {} histograms, {} samples",
        summary.families, summary.histograms, summary.samples
    );
    for family in [
        "yask_queries_total",
        "yask_cache_hits_total",
        "yask_sessions_live",
        "yask_topk_latency_seconds",
        "yask_shard_search_latency_seconds",
        "yask_whynot_latency_seconds",
        "yask_wal_append_latency_seconds",
        "yask_write_apply_latency_seconds",
        "yask_shed_total",
        "yask_deadline_exceeded_total",
        "yask_degraded_answers_total",
    ] {
        assert!(summary.has_family(family), "missing family {family}");
    }
    assert!(
        summary.histograms >= 8,
        "expected >= 8 histogram families, got {}",
        summary.histograms
    );

    // Both requests ran with ambient tracing on, so the slow-query log
    // must hold their span trees.
    let (status, slow) = http_get_text(addr, "/debug/slow").expect("scrape /debug/slow");
    assert_eq!(status, 200);
    let slow = Json::parse(&slow).expect("parse /debug/slow");
    let recorded = slow.get("recorded").unwrap().as_usize().unwrap();
    let slowest = slow.get("slowest").unwrap().as_array().unwrap();
    assert!(recorded >= 2, "expected >= 2 recorded traces, got {recorded}");
    assert!(!slowest.is_empty(), "slow-query log is empty");
    assert!(
        slowest[0].get("spans").unwrap().as_array().unwrap().len() > 1,
        "slowest trace has no span tree"
    );
    println!("GET /debug/slow -> {recorded} traces recorded");
    println!("metrics smoke OK");
}
