//! Interactive YASK console — the terminal stand-in for the demo's GUI
//! panels (Figs 3–5). Commands mirror the panels:
//!
//! ```text
//! query <x> <y> <k> <keyword> [keyword...]   Panel 2: issue a top-k query
//! list [n]                                   browse hotels (grey markers)
//! why <hotel name>                           Panels 3–4: explanation
//! prefer <hotel name> [lambda]               Panel 5: preference adjustment
//! adapt <hotel name> [lambda]                Panel 5: keyword adaptation
//! both <hotel name> [lambda]                 both models simultaneously
//! help | quit
//! ```
//!
//! Run with: `cargo run --release --example interactive`
//! Scriptable: `printf 'query 114.172 22.297 3 clean comfortable\nquit\n' |
//! cargo run --release --example interactive`

use std::io::{BufRead, Write};

use yask::prelude::*;

struct Console {
    engine: Yask,
    vocab: Vocabulary,
    last_query: Option<Query>,
    last_result: Vec<RankedObject>,
}

fn main() {
    let (corpus, vocab) = yask::data::hk_hotels();
    let mut console = Console {
        engine: Yask::with_defaults(corpus),
        vocab,
        last_query: None,
        last_result: Vec::new(),
    };
    println!(
        "YASK interactive console — {} hotels loaded. Type 'help' for commands.",
        console.engine.corpus().len()
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("yask> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        if let Err(msg) = console.dispatch(line) {
            println!("  error: {msg}");
        }
    }
    println!("bye");
}

impl Console {
    fn dispatch(&mut self, line: &str) -> Result<(), String> {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("help") => {
                println!(
                    "  query <x> <y> <k> <kw> [kw...]  issue a top-k query\n  \
                     list [n]                        show the first n hotels\n  \
                     why <name>                      explain a missing hotel\n  \
                     prefer <name> [λ]               preference-adjusted refinement\n  \
                     adapt <name> [λ]                keyword-adapted refinement\n  \
                     both <name> [λ]                 combined refinement\n  \
                     quit"
                );
                Ok(())
            }
            Some("list") => {
                let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(10);
                for o in self.engine.corpus().iter().take(n) {
                    let words: Vec<&str> =
                        o.doc.iter().map(|id| self.vocab.resolve(id)).collect();
                    println!("  {:<44} [{}]", o.name, words.join(", "));
                }
                Ok(())
            }
            Some("query") => {
                let x: f64 = parse_next(&mut parts, "x")?;
                let y: f64 = parse_next(&mut parts, "y")?;
                let k: usize = parse_next(&mut parts, "k")?;
                let kws: Vec<&str> = parts.collect();
                if kws.is_empty() {
                    return Err("need at least one keyword".into());
                }
                let doc = KeywordSet::from_ids(
                    kws.iter().map(|w| self.vocab.intern(&w.to_lowercase())),
                );
                let q = Query::new(Point::new(x, y), doc, k.max(1));
                let result = self.engine.top_k(&q);
                self.print_result(&result);
                self.last_query = Some(q);
                self.last_result = result;
                Ok(())
            }
            Some(cmd @ ("why" | "prefer" | "adapt" | "both")) => {
                let rest: Vec<&str> = parts.collect();
                let (name, lambda) = split_name_lambda(&rest)?;
                let q = self
                    .last_query
                    .clone()
                    .ok_or("issue a query first")?;
                let obj = self
                    .engine
                    .corpus()
                    .iter()
                    .find(|o| o.name.eq_ignore_ascii_case(&name))
                    .ok_or_else(|| format!("no hotel named {name:?}"))?;
                let missing = [obj.id];
                match cmd {
                    "why" => {
                        let ex = self
                            .engine
                            .explain(&q, &missing)
                            .map_err(|e| e.to_string())?;
                        println!("  {}", ex[0].message);
                    }
                    "prefer" => {
                        let r = self
                            .engine
                            .refine_preference(&q, &missing, lambda)
                            .map_err(|e| e.to_string())?;
                        println!(
                            "  refined: w = <{:.3}, {:.3}>, k = {} (penalty {:.4})",
                            r.query.weights.ws(),
                            r.query.weights.wt(),
                            r.query.k,
                            r.penalty
                        );
                        self.print_result(&self.engine.top_k(&r.query));
                    }
                    "adapt" => {
                        let r = self
                            .engine
                            .refine_keywords(&q, &missing, lambda)
                            .map_err(|e| e.to_string())?;
                        let words: Vec<&str> =
                            r.query.doc.iter().map(|id| self.vocab.resolve(id)).collect();
                        println!(
                            "  refined: doc = [{}], k = {} (Δdoc {}, penalty {:.4})",
                            words.join(", "),
                            r.query.k,
                            r.delta_doc,
                            r.penalty
                        );
                        self.print_result(&self.engine.top_k(&r.query));
                    }
                    "both" => {
                        let r = self
                            .engine
                            .refine_combined(&q, &missing, lambda)
                            .map_err(|e| e.to_string())?;
                        let words: Vec<&str> =
                            r.query.doc.iter().map(|id| self.vocab.resolve(id)).collect();
                        println!(
                            "  refined ({:?}): doc = [{}], w = <{:.3}, {:.3}>, k = {} (penalty {:.4})",
                            r.order,
                            words.join(", "),
                            r.query.weights.ws(),
                            r.query.weights.wt(),
                            r.query.k,
                            r.penalty
                        );
                        self.print_result(&self.engine.top_k(&r.query));
                    }
                    _ => unreachable!(),
                }
                Ok(())
            }
            Some(other) => Err(format!("unknown command {other:?}; try 'help'")),
            None => Ok(()),
        }
    }

    fn print_result(&self, result: &[RankedObject]) {
        for (i, r) in result.iter().enumerate() {
            println!(
                "  {:>2}. {:<44} score {:.4}",
                i + 1,
                self.engine.corpus().get(r.id).name,
                r.score
            );
        }
    }
}

fn parse_next<T: std::str::FromStr>(
    parts: &mut std::str::SplitWhitespace<'_>,
    what: &str,
) -> Result<T, String> {
    parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("expected {what}"))
}

/// The hotel name may contain spaces; a trailing numeric token is λ.
fn split_name_lambda(rest: &[&str]) -> Result<(String, f64), String> {
    if rest.is_empty() {
        return Err("expected a hotel name".into());
    }
    let (name_parts, lambda) = match rest.last().and_then(|s| s.parse::<f64>().ok()) {
        Some(l) if rest.len() > 1 && (0.0..=1.0).contains(&l) => (&rest[..rest.len() - 1], l),
        _ => (rest, 0.5),
    };
    Ok((name_parts.join(" "), lambda))
}
