//! Overload survival, end to end: a YASK service configured with a
//! demo-dial trip wire (top-k p99 limit of zero — the very first
//! completed query "overloads" the engine) walks through the whole
//! robustness surface:
//!
//! 1. a healthy query is admitted and establishes a why-not session;
//! 2. the admission valve flips: why-not requests — the most expensive
//!    route — are shed with `429` + `Retry-After`, while top-k keeps
//!    being served on the degraded budget;
//! 3. the bundled client's retry loop honors the server's hint
//!    (capped exponential backoff with jitter when there is none);
//! 4. a request deadline (`x-yask-deadline-ms`) expires mid-scatter
//!    and maps to a clean `504`, trace preserved in the slow log;
//! 5. `/debug/health` names the exact signal, observed value and limit
//!    that tripped, and `/stats` + `/metrics` carry the shed grid;
//! 6. the spike ages out of its 10 s window and the valve reopens on
//!    its own — no restart, no counter reset.
//!
//! Run with: `cargo run --release --example overload_demo`

use std::sync::Arc;
use std::time::Duration;

use yask::exec::AdmissionConfig;
use yask::server::api::OverloadConfig;
use yask::server::{
    http_get, http_get_text, http_post, http_post_retry, http_post_with_headers, HttpServer,
    Json, RetryPolicy, ServiceConfig, YaskService,
};

fn query_body() -> Json {
    Json::obj([
        ("x", Json::Num(114.172)),
        ("y", Json::Num(22.297)),
        (
            "keywords",
            Json::Arr(vec![Json::str("clean"), Json::str("comfortable")]),
        ),
        ("k", Json::Num(3.0)),
    ])
}

fn main() {
    let (corpus, vocab) = yask::data::hk_hotels();
    // The demo dial: a p99 limit of zero means any completed top-k
    // counts as overload for the next 10 s — deterministic theater, but
    // every code path below is the production one.
    let service = Arc::new(YaskService::with_config(
        corpus,
        vocab,
        ServiceConfig {
            overload: OverloadConfig {
                max_queue_depth: usize::MAX,
                max_topk_p99: Duration::ZERO,
            },
            admission: AdmissionConfig {
                max_queue_depth: usize::MAX,
                max_topk_p99: Duration::ZERO,
                ..AdmissionConfig::default()
            },
            default_deadline: None,
            ..ServiceConfig::default()
        },
    ));
    // The accept-boundary policy: at the critical level the listener
    // sheds with a canned 503 before reading; under any overload the
    // keep-alive idle timeout shrinks so parked connections stop
    // holding worker threads.
    let server = HttpServer::spawn_with_policy(
        0,
        4,
        service.clone().into_handler(),
        service.conn_policy(),
    )
    .expect("bind server");
    let addr = server.addr();
    println!("YASK server listening on http://{addr}/  (overload trip wire: p99 > 0)");

    // 1. Healthy: the first query is admitted normally.
    let (status, reply) = http_post(addr, "/query", &query_body()).expect("query");
    println!("\nPOST /query -> {status} (admitted while healthy)");
    let session = reply.get("session").unwrap().as_f64().unwrap();
    let top: Vec<String> = reply
        .get("results")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r.get("name").unwrap().as_str().unwrap().to_owned())
        .collect();
    let missing = service
        .engine()
        .corpus()
        .iter()
        .map(|o| o.name.clone())
        .find(|n| !top.contains(n))
        .unwrap();
    let whynot = Json::obj([
        ("session", Json::Num(session)),
        ("missing", Json::Arr(vec![Json::str(missing)])),
    ]);

    // 2. That query's latency tripped the wire: why-not is shed first.
    let reply = http_post_with_headers(addr, "/whynot/explain", &whynot, &[]).expect("whynot");
    println!(
        "\nPOST /whynot/explain -> {} retry-after={:?}\n  {}",
        reply.status,
        reply.retry_after,
        reply.body.get("error").and_then(|e| e.as_str()).unwrap_or("")
    );
    assert_eq!(reply.status, 429, "why-not must be shed under overload");

    // 3. The client-side answer: retry with backoff, honoring the hint.
    println!("\nretrying with the bundled backoff client (honors Retry-After)...");
    let reply = http_post_retry(
        addr,
        "/whynot/explain",
        &whynot,
        &RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
    )
    .expect("retry");
    println!("  final status after retries: {} (still overloaded — expected)", reply.status);

    // Top-k is never refused at this level — it runs on the degraded
    // budget instead.
    let (status, _) = http_post(addr, "/query", &query_body()).expect("query");
    println!("\nPOST /query -> {status} (admitted on the degraded budget)");

    // 4. Deadlines: a zero budget expires before any shard finishes.
    // (A fresh query — the one above is already in the top-k cache, and
    // a cached answer beats any deadline.)
    let uncached = Json::obj([
        ("x", Json::Num(114.01)),
        ("y", Json::Num(22.51)),
        ("keywords", Json::Arr(vec![Json::str("quiet")])),
        ("k", Json::Num(7.0)),
    ]);
    let reply = http_post_with_headers(
        addr,
        "/query",
        &uncached,
        &[("x-yask-deadline-ms", "0")],
    )
    .expect("deadline query");
    println!(
        "\nPOST /query (x-yask-deadline-ms: 0) -> {} ({})",
        reply.status,
        reply.body.get("error").and_then(|e| e.as_str()).unwrap_or("")
    );
    assert_eq!(reply.status, 504);

    // 5. The operator surfaces: health names the tripped signal...
    let (_, health) = http_get(addr, "/debug/health").expect("health");
    let reasons = health.get("reasons").unwrap().as_array().unwrap();
    println!(
        "\nGET /debug/health -> overloaded={} admission_level={}",
        health.get("overloaded").unwrap(),
        health.get("admission_level").unwrap()
    );
    for r in reasons {
        println!(
            "  signal={} observed={} limit={}",
            r.get("signal").unwrap(),
            r.get("observed").unwrap(),
            r.get("limit").unwrap()
        );
    }
    // ...and /stats + /metrics carry the shed/degrade/deadline grid.
    let (_, stats) = http_get(addr, "/stats").expect("stats");
    let admission = stats.get("admission").unwrap();
    println!(
        "GET /stats -> shed_total={} degraded_admits={} deadline_exceeded={}",
        admission.get("shed_total").unwrap(),
        admission.get("degraded_admits").unwrap(),
        admission.get("deadline_exceeded").unwrap()
    );
    let (_, metrics) = http_get_text(addr, "/metrics").expect("metrics");
    for line in metrics.lines().filter(|l| {
        l.starts_with("yask_shed_total{") || l.starts_with("yask_deadline_exceeded_total")
    }) {
        println!("  {line}");
    }

    // 6. Self-clear: the spike ages out of the 10 s p99 window.
    println!("\nwaiting for the latency spike to age out of its 10 s window...");
    std::thread::sleep(Duration::from_millis(10_500));
    let (_, health) = http_get(addr, "/debug/health").expect("health");
    println!(
        "GET /debug/health -> overloaded={} admission_level={}",
        health.get("overloaded").unwrap(),
        health.get("admission_level").unwrap()
    );
    let reply = http_post_with_headers(addr, "/whynot/explain", &whynot, &[]).expect("whynot");
    println!("POST /whynot/explain -> {} (the valve reopened on its own)", reply.status);
    assert_eq!(reply.status, 200);
    println!("\noverload demo OK");
}
