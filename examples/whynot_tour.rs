//! A terminal walk-through of the paper's two motivating scenarios:
//!
//! * **Example 1 (Bob)** — a top-3 "coffee" query misses the Starbucks
//!   down the street because the scoring function under-weighs spatial
//!   proximity → *preference adjustment* fixes it.
//! * **Example 2 (Carol)** — a top-3 "clean comfortable" hotel query
//!   misses a well-known international hotel that is described by
//!   "luxury" instead → *keyword adaptation* fixes it.
//!
//! Run with: `cargo run --release --example whynot_tour`

use yask::prelude::*;

fn main() {
    bob_and_the_missing_cafe();
    println!("\n{}\n", "=".repeat(72));
    carol_and_the_luxury_hotel();
}

/// Example 1: the preference between distance and text is off.
fn bob_and_the_missing_cafe() {
    println!("Example 1 — Bob wants coffee in New York\n");

    // A small cafe scene: Bob at the origin; the Starbucks is the closest
    // cafe but its description is terse, so with text-heavy weights it
    // loses to farther, wordier cafes.
    let mut vocab = Vocabulary::new();
    let mut kws = |words: &[&str]| {
        KeywordSet::from_ids(words.iter().map(|w| vocab.intern(w)))
    };
    let coffee_doc = kws(&["coffee"]);
    let mut b = CorpusBuilder::new().with_space(Space::unit());
    b.push(Point::new(0.02, 0.01), kws(&["coffee", "espresso", "bakery", "wifi"]), "Starbucks");
    b.push(Point::new(0.30, 0.25), kws(&["coffee"]), "Corner Coffee");
    b.push(Point::new(0.35, 0.20), kws(&["coffee"]), "Java Express");
    b.push(Point::new(0.25, 0.35), kws(&["coffee"]), "Bean Scene");
    b.push(Point::new(0.60, 0.60), kws(&["tea", "bubble"]), "Tea Garden");
    let corpus = b.build();
    let engine = Yask::with_defaults(corpus);

    // Bob's initial query: text-heavy server default gone wrong.
    let query = Query::with_weights(
        Point::new(0.0, 0.0),
        coffee_doc,
        3,
        Weights::from_ws(0.1), // "very low importance given to spatial proximity"
    );
    print_result(&engine, &query, "top-3 'coffee'");

    let starbucks = engine.corpus().find_by_name("Starbucks").unwrap().id;
    let answer = engine.answer(&query, &[starbucks]).expect("Starbucks is missing");
    println!("\n  Q: why is Starbucks not in the result?");
    println!("  A: {}", answer.explanations[0].message);

    let p = &answer.preference;
    println!(
        "\n  preference adjustment: <ws, wt> = <{:.3}, {:.3}> -> <{:.3}, {:.3}>, k = {} (penalty {:.4})",
        query.weights.ws(),
        query.weights.wt(),
        p.query.weights.ws(),
        p.query.weights.wt(),
        p.query.k,
        p.penalty
    );
    print_result(&engine, &p.query, "refined result");
    assert!(engine.top_k(&p.query).iter().any(|r| r.id == starbucks));
    println!("\n  Starbucks is back.");
}

/// Example 2: the query keywords don't match the hotel's description.
fn carol_and_the_luxury_hotel() {
    println!("Example 2 — Carol books a conference hotel\n");

    let (corpus, vocab) = yask::data::hk_hotels();
    let engine = Yask::with_defaults(corpus);

    // Carol queries "clean comfortable" near the convention centre.
    let doc = KeywordSet::from_ids(
        ["clean", "comfortable"].iter().map(|w| vocab.lookup(w).unwrap()),
    );
    let query = Query::new(Point::new(114.173, 22.283), doc, 3);
    print_result(&engine, &query, "top-3 'clean comfortable'");

    // The "well-known international hotel" she expected: pick a luxury
    // hotel near the venue that the query missed.
    let top = engine.top_k(&query);
    let luxury = vocab.lookup("luxury").unwrap();
    let expected = engine
        .corpus()
        .iter()
        .filter(|o| o.doc.contains(luxury) && !top.iter().any(|r| r.id == o.id))
        .min_by(|a, b| {
            let da = a.loc.dist(&query.loc);
            let db = b.loc.dist(&query.loc);
            da.partial_cmp(&db).unwrap()
        })
        .expect("some luxury hotel is missing");
    println!("\n  Q: why is \"{}\" not in the result?", expected.name);

    let answer = engine.answer(&query, &[expected.id]).expect("valid question");
    println!("  A: {}", answer.explanations[0].message);

    let kw = &answer.keyword;
    let words: Vec<&str> = kw.query.doc.iter().map(|id| vocab.resolve(id)).collect();
    println!(
        "\n  keyword adaptation: doc = [{}], k = {} (Δdoc = {}, penalty {:.4})",
        words.join(", "),
        kw.query.k,
        kw.delta_doc,
        kw.penalty
    );
    print_result(&engine, &kw.query, "refined result");
    assert!(engine.top_k(&kw.query).iter().any(|r| r.id == expected.id));
    println!("\n  The expected hotel is back.");
}

fn print_result(engine: &Yask, query: &Query, label: &str) {
    println!("\n  {label} (k = {}):", query.k);
    for (i, r) in engine.top_k(query).iter().enumerate() {
        println!(
            "    {}. {:<42} score {:.4}",
            i + 1,
            engine.corpus().get(r.id).name,
            r.score
        );
    }
}
