//! Index persistence (the "Hard Disk" box of the paper's Fig 1): save the
//! corpus and the KcR-tree topology through the pager, reload through the
//! buffer pool, and show the reloaded index answers identically.
//!
//! Run with: `cargo run --release --example persistence`

use yask::index::{KcRTree, RTreeParams};
use yask::pager::{load_index, save_index};
use yask::prelude::*;
use yask::query::topk_tree;

fn main() {
    let (corpus, vocab) = yask::data::hk_hotels();
    let params = RTreeParams::default();
    let tree = KcRTree::bulk_load(corpus.clone(), params);
    let score = ScoreParams::new(corpus.space());

    let path = std::env::temp_dir().join("yask-demo-index.db");
    save_index(&path, &corpus, &tree.structure(), params).expect("save");
    let bytes = std::fs::metadata(&path).expect("metadata").len();
    println!(
        "saved {} hotels + tree ({} nodes, height {}) to {} ({} KiB)",
        corpus.len(),
        tree.stats().nodes,
        tree.height(),
        path.display(),
        bytes / 1024
    );

    let (loaded, pool_stats): (KcRTree, _) = load_index(&path, 128).expect("load");
    loaded.validate().expect("loaded tree is consistent");
    println!(
        "loaded through the buffer pool: {} page reads ({} hits, {} misses)",
        pool_stats.hits + pool_stats.misses,
        pool_stats.hits,
        pool_stats.misses
    );

    // Same query, same answer, on the reloaded index.
    let doc = KeywordSet::from_ids(
        ["harbour", "view"].iter().map(|w| vocab.lookup(w).unwrap()),
    );
    let q = Query::new(Point::new(114.17, 22.29), doc, 5);
    let a = topk_tree(&tree, &score, &q);
    let b = topk_tree(&loaded, &score, &q);
    println!("\ntop-5 'harbour view' on both indexes:");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert!((x.score - y.score).abs() < 1e-12);
        println!("  {:<42} score {:.4}", corpus.get(x.id).name, x.score);
    }
    println!("\nreloaded index answers identically.");
    std::fs::remove_file(&path).ok();
}
