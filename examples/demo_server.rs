//! The browser–server demo (paper Fig 1, §3.2–3.3) end to end: start the
//! YASK web service over the HK dataset, then drive it with the bundled
//! HTTP client exactly as the demo's GUI would — query, ask why-not,
//! refine, close the session.
//!
//! Run with: `cargo run --release --example demo_server`
//! (add `--serve` to keep the server running in the foreground for manual
//! curl exploration).

use std::sync::Arc;

use yask::server::{http_get, http_post, HttpServer, Json, YaskService};

fn main() {
    let serve_forever = std::env::args().any(|a| a == "--serve");

    let service = Arc::new(YaskService::hk_demo());
    let port = if serve_forever { 8080 } else { 0 };
    // Accept-boundary admission: under critical overload the listener sheds
    // new requests with a canned 503 + Retry-After before reading them.
    let server = HttpServer::spawn_with_policy(
        port,
        4,
        service.clone().into_handler(),
        service.conn_policy(),
    )
    .expect("bind server");
    let addr = server.addr();
    println!("YASK server listening on http://{addr}/");

    if serve_forever {
        // Expired sessions are evicted in the background even when no
        // requests arrive.
        let _sweeper = service.spawn_session_sweeper(std::time::Duration::from_secs(30));
        println!("press Ctrl-C to stop; try:");
        println!(
            "  curl -s http://{addr}/query -d '{{\"x\":114.172,\"y\":22.297,\"keywords\":[\"clean\",\"comfortable\"],\"k\":3}}'"
        );
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    // --- scripted client session (what the GUI does behind the panels) ---
    let (status, health) = http_get(addr, "/health").expect("health");
    println!("\nGET /health -> {status} {health}");

    // Panel 2: the initial spatial keyword top-k query.
    let (status, reply) = http_post(
        addr,
        "/query",
        &Json::obj([
            ("x", Json::Num(114.172)),
            ("y", Json::Num(22.297)),
            (
                "keywords",
                Json::Arr(vec![Json::str("clean"), Json::str("comfortable")]),
            ),
            ("k", Json::Num(3.0)),
        ]),
    )
    .expect("query");
    println!("\nPOST /query -> {status}");
    let session = reply.get("session").unwrap().as_f64().unwrap();
    let results = reply.get("results").unwrap().as_array().unwrap().to_vec();
    let mut top_names = Vec::new();
    for r in &results {
        let name = r.get("name").unwrap().as_str().unwrap();
        top_names.push(name.to_owned());
        println!(
            "  rank {} {:<42} score {:.4}",
            r.get("rank").unwrap().as_usize().unwrap(),
            name,
            r.get("score").unwrap().as_f64().unwrap()
        );
    }

    // Panel 3: select a desired hotel that is missing.
    let missing = service
        .engine()
        .corpus()
        .iter()
        .map(|o| o.name.clone())
        .find(|n| !top_names.contains(n))
        .unwrap();
    println!("\nselected missing hotel: {missing}");

    // Panel 4: the explanation.
    let (status, reply) = http_post(
        addr,
        "/whynot/explain",
        &Json::obj([
            ("session", Json::Num(session)),
            ("missing", Json::Arr(vec![Json::str(missing.clone())])),
        ]),
    )
    .expect("explain");
    println!("\nPOST /whynot/explain -> {status}");
    for e in reply.get("explanations").unwrap().as_array().unwrap() {
        println!("  {}", e.get("message").unwrap().as_str().unwrap());
    }

    // Panel 5: both refinement models with their penalties.
    for path in ["/whynot/preference", "/whynot/keywords"] {
        let (status, reply) = http_post(
            addr,
            path,
            &Json::obj([
                ("session", Json::Num(session)),
                ("missing", Json::Arr(vec![Json::str(missing.clone())])),
                ("lambda", Json::Num(0.5)),
            ]),
        )
        .expect("refine");
        println!(
            "\nPOST {path} -> {status}  penalty {:.4}  refined {}",
            reply.get("penalty").unwrap().as_f64().unwrap(),
            reply.get("refined").unwrap()
        );
        let revived = reply
            .get("results")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|r| r.get("name").unwrap().as_str() == Some(missing.as_str()));
        println!("  revives the missing hotel: {revived}");
        assert!(revived);
    }

    // The user gives up asking why-not questions → the cache entry goes.
    let (status, reply) = http_post(
        addr,
        "/session/close",
        &Json::obj([("session", Json::Num(session))]),
    )
    .expect("close");
    println!("\nPOST /session/close -> {status} {reply}");
}
