//! Live corpus updates end to end: WAL-backed ingest over the sharded
//! executor, epoch snapshots, cache invalidation, and restart replay.
//!
//! Run with: `cargo run --release --example live_ingest`

use yask::data::hk_hotels;
use yask::ingest::{Ingestor, NewObject, Update};
use yask::prelude::*;

fn main() {
    let mut wal_path = std::env::temp_dir();
    wal_path.push(format!("yask-live-ingest-{}.wal", std::process::id()));
    std::fs::remove_file(&wal_path).ok();

    // 1. Boot the writable stack: WAL + sharded executor.
    let (corpus, mut vocab) = hk_hotels();
    let ingest = Ingestor::with_wal(corpus.clone(), &wal_path).expect("open WAL");
    let exec = Executor::new(corpus, ExecConfig::default());
    println!(
        "booted: {} hotels, {} shards, epoch {}",
        exec.corpus().len(),
        exec.shard_count(),
        exec.epoch()
    );

    // 2. A baseline query near Tsim Sha Tsui.
    let clean = vocab.intern("clean");
    let comfortable = vocab.intern("comfortable");
    let query = Query::new(
        Point::new(114.172, 22.297),
        KeywordSet::from_ids([clean, comfortable]),
        3,
    );
    let corpus = exec.corpus();
    println!("\ntop-3 before the update:");
    for (i, r) in exec.top_k(&query).iter().enumerate() {
        println!("  {}. {} ({:.4})", i + 1, corpus.get(r.id).name, r.score);
    }

    // 3. Open a brand-new hotel at the query location — it must take
    //    rank 1 — and retire the old winner in the same batch (one epoch,
    //    one WAL commit).
    let old_top = exec.top_k(&query)[0].id;
    let outcome = ingest
        .apply(
            &exec,
            &[
                Update::Insert(NewObject::new(
                    Point::new(114.172, 22.297),
                    KeywordSet::from_ids([clean, comfortable]),
                    "Epoch Grand Hotel",
                )),
                Update::Delete(old_top),
            ],
        )
        .expect("batch commits");
    println!(
        "\napplied batch: epoch {} (inserted {:?}, deleted {:?}, rebalanced: {})",
        outcome.epoch, outcome.inserted, outcome.deleted, outcome.rebalanced
    );

    // 4. The same query now sees the new epoch — the cached answer for
    //    epoch 0 can no longer be served.
    let corpus = exec.corpus();
    println!("top-3 after the update:");
    for (i, r) in exec.top_k(&query).iter().enumerate() {
        println!("  {}. {} ({:.4})", i + 1, corpus.get(r.id).name, r.score);
    }

    // 5. "Restart": replay the WAL over the seed corpus and verify the
    //    epoch survives.
    drop(ingest);
    let (seed, _) = hk_hotels();
    let revived = Ingestor::with_wal(seed, &wal_path).expect("replay WAL");
    println!(
        "\nafter restart: epoch {} replayed, {} live hotels, new hotel present: {}",
        revived.epoch(),
        revived.corpus().len(),
        revived.corpus().find_by_name("Epoch Grand Hotel").is_some()
    );

    let stats = exec.stats();
    println!(
        "\nexecutor: epoch {}, {} batches, {} inserts, {} deletes, {} tombstones",
        stats.epoch, stats.batches, stats.inserts, stats.deletes, stats.tombstones
    );
    std::fs::remove_file(&wal_path).ok();
}
