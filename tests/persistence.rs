//! Persistence integration: the whole engine survives a disk round trip —
//! save corpus + index, reload, and answer the same why-not questions
//! identically.

use yask::index::{KcRTree, RTreeParams, SetRTree};
use yask::pager::{load_index, save_index};
use yask::prelude::*;
use yask::query::{topk_tree, IncrementalSearch};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("yask-it-{}-{}", std::process::id(), name));
    p
}

#[test]
fn hk_dataset_round_trips_through_the_pager() {
    let path = tmp("hk.db");
    let (corpus, _) = yask::data::hk_hotels();
    let params = RTreeParams::default();
    let tree = KcRTree::bulk_load(corpus.clone(), params);
    save_index(&path, &corpus, &tree.structure(), params).unwrap();

    let (loaded, _): (KcRTree, _) = load_index(&path, 256).unwrap();
    loaded.validate().unwrap();
    assert_eq!(loaded.len(), 539);

    let score = ScoreParams::new(corpus.space());
    let q = Query::new(Point::new(114.17, 22.30), KeywordSet::from_raw([0, 2, 4]), 7);
    let a = topk_tree(&tree, &score, &q);
    let b = topk_tree(&loaded, &score, &q);
    assert_eq!(
        a.iter().map(|r| r.id).collect::<Vec<_>>(),
        b.iter().map(|r| r.id).collect::<Vec<_>>()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn whynot_on_reloaded_index_matches_original() {
    let path = tmp("whynot.db");
    let corpus = yask::data::SynthConfig::default().with_n(600).build();
    let params = RTreeParams::new(8, 3);
    let tree = KcRTree::bulk_load(corpus.clone(), params);
    save_index(&path, &corpus, &tree.structure(), params).unwrap();
    let (loaded, _): (KcRTree, _) = load_index(&path, 64).unwrap();

    let score = ScoreParams::new(corpus.space());
    let q = &yask::data::gen_queries(&corpus, 1, 3, 5, 21)[0];
    let missing = yask::data::pick_missing(&corpus, &score, q, 2, 4);

    let original = yask::core::refine_keywords(&tree, &score, q, &missing, 0.5).unwrap();
    let reloaded =
        yask::core::refine_keywords(&loaded, &score, q, &missing, 0.5).unwrap();
    assert_eq!(original.query.doc, reloaded.query.doc);
    assert_eq!(original.query.k, reloaded.query.k);
    assert!((original.penalty - reloaded.penalty).abs() < 1e-12);
    std::fs::remove_file(&path).ok();
}

#[test]
fn cross_augmentation_load_serves_queries() {
    // Save from a SetR-tree, load as a KcR-tree (topology is shared; the
    // augmentation is recomputed) — the loaded tree must answer exactly.
    let path = tmp("cross.db");
    let corpus = yask::data::SynthConfig::default().with_n(400).build();
    let params = RTreeParams::new(16, 6);
    let set_tree = SetRTree::bulk_load(corpus.clone(), params);
    save_index(&path, &corpus, &set_tree.structure(), params).unwrap();
    let (kc_tree, _): (KcRTree, _) = load_index(&path, 64).unwrap();
    kc_tree.validate().unwrap();

    let score = ScoreParams::new(corpus.space());
    for q in yask::data::gen_queries(&corpus, 10, 2, 8, 22) {
        let a: Vec<ObjectId> = topk_tree(&set_tree, &score, &q).iter().map(|r| r.id).collect();
        let b: Vec<ObjectId> = topk_tree(&kc_tree, &score, &q).iter().map(|r| r.id).collect();
        assert_eq!(a, b);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn incremental_search_on_loaded_tree() {
    let path = tmp("inc.db");
    let corpus = yask::data::SynthConfig::default().with_n(300).build();
    let params = RTreeParams::new(8, 3);
    let tree = KcRTree::bulk_load(corpus.clone(), params);
    save_index(&path, &corpus, &tree.structure(), params).unwrap();
    let (loaded, _): (KcRTree, _) = load_index(&path, 64).unwrap();

    let score = ScoreParams::new(corpus.space());
    let q = &yask::data::gen_queries(&corpus, 1, 2, 5, 23)[0];
    let stream: Vec<ObjectId> = IncrementalSearch::new(&loaded, score, q.clone())
        .take(50)
        .map(|r| r.id)
        .collect();
    let oracle: Vec<ObjectId> = yask::query::topk_scan(&corpus, &score, &q.with_k(50))
        .iter()
        .map(|r| r.id)
        .collect();
    assert_eq!(stream, oracle);
    std::fs::remove_file(&path).ok();
}
