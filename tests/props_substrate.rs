//! Property tests for the substrate crates: pager streams and store,
//! R-tree mutation invariants, tokenizer, and the session cache.

use proptest::prelude::*;

use yask::index::{KcRTree, RTreeParams, SetRTree};
use yask::pager::{load_index, save_index, BufferPool, PageFile};
use yask::prelude::*;

fn tmp(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("yask-props-{}-{}", std::process::id(), tag));
    p
}

// ---------------------------------------------------------------------------
// Pager
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary record sequences survive the paged stream, across page
    /// boundaries and pool capacities.
    #[test]
    fn paged_streams_round_trip(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..700), 1..40
        ),
        capacity in 1usize..8
    ) {
        let path = tmp(&format!("stream-{capacity}-{}", records.len()));
        {
            let pool = BufferPool::new(PageFile::create(&path).unwrap(), capacity);
            let mut w = yask::pager::codec::StreamWriter::new(&pool).unwrap();
            for r in &records {
                w.write_u32(r.len() as u32).unwrap();
                w.write_bytes(r).unwrap();
            }
            let (first, len) = w.finish().unwrap();

            let mut rd = yask::pager::codec::StreamReader::new(&pool, first, len).unwrap();
            for r in &records {
                let n = rd.read_u32().unwrap() as usize;
                prop_assert_eq!(n, r.len());
                let mut buf = vec![0u8; n];
                rd.read_bytes(&mut buf).unwrap();
                prop_assert_eq!(&buf, r);
            }
            prop_assert_eq!(rd.remaining(), 0);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Any corpus + tree built from generated objects survives save/load
    /// and still validates.
    #[test]
    fn store_round_trip_validates(
        objs in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, proptest::collection::vec(0u32..25, 1..5)),
            1..60
        )
    ) {
        let path = tmp(&format!("store-{}", objs.len()));
        let mut b = CorpusBuilder::new();
        for (i, (x, y, kws)) in objs.iter().enumerate() {
            b.push(Point::new(*x, *y), KeywordSet::from_raw(kws.clone()), format!("n{i}"));
        }
        let corpus = b.build();
        let params = RTreeParams::new(4, 2);
        let tree = SetRTree::bulk_load(corpus.clone(), params);
        save_index(&path, &corpus, &tree.structure(), params).unwrap();
        let (loaded, _): (SetRTree, _) = load_index(&path, 16).unwrap();
        prop_assert!(loaded.validate().is_ok());
        prop_assert_eq!(loaded.structure(), tree.structure());
        std::fs::remove_file(&path).ok();
    }
}

// ---------------------------------------------------------------------------
// R-tree mutation invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random interleavings of inserts and deletes preserve every tree
    /// invariant and index exactly the live set.
    #[test]
    fn rtree_churn_preserves_invariants(
        objs in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, proptest::collection::vec(0u32..15, 1..4)),
            4..50
        ),
        ops in proptest::collection::vec(any::<bool>(), 10..80)
    ) {
        let mut b = CorpusBuilder::new();
        for (i, (x, y, kws)) in objs.iter().enumerate() {
            b.push(Point::new(*x, *y), KeywordSet::from_raw(kws.clone()), format!("c{i}"));
        }
        let corpus = b.build();
        let mut tree = KcRTree::new(corpus.clone(), RTreeParams::new(4, 2));
        let mut live: Vec<ObjectId> = Vec::new();
        let mut next = 0usize;
        for &insert in &ops {
            if insert && next < corpus.len() {
                let id = ObjectId(next as u32);
                tree.insert(id);
                live.push(id);
                next += 1;
            } else if let Some(id) = live.pop() {
                prop_assert!(tree.delete(id));
            }
        }
        prop_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
        let mut got = tree.object_ids();
        got.sort();
        live.sort();
        prop_assert_eq!(got, live);
    }
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tokenization is idempotent, lower-case, deduplicated, and free of
    /// stopwords/single characters.
    #[test]
    fn tokenizer_output_is_canonical(text in ".{0,200}") {
        let tokens = yask::text::tokenize(&text);
        let set: std::collections::HashSet<&String> = tokens.iter().collect();
        prop_assert_eq!(set.len(), tokens.len(), "duplicates");
        for t in &tokens {
            prop_assert_eq!(t.to_lowercase(), t.clone(), "not lower-cased");
            prop_assert!(t.chars().count() >= 2, "single char token {t:?}");
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()), "separator kept in {t:?}");
        }
        // Re-tokenizing the joined output is a fixed point.
        let rejoined = tokens.join(" ");
        prop_assert_eq!(yask::text::tokenize(&rejoined), tokens);
    }
}

// ---------------------------------------------------------------------------
// Session cache
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Create/remove sequences keep the live-count bookkeeping exact.
    #[test]
    fn session_store_counts_are_exact(ops in proptest::collection::vec(any::<bool>(), 1..60)) {
        let store = SessionStore::new(std::time::Duration::from_secs(300));
        let q = Query::new(Point::new(0.0, 0.0), KeywordSet::from_raw([1]), 1);
        let mut ids = Vec::new();
        for &create in &ops {
            if create || ids.is_empty() {
                ids.push(store.create(q.clone(), vec![]));
            } else {
                let id = ids.pop().unwrap();
                prop_assert!(store.remove(id));
                prop_assert!(!store.remove(id), "double remove succeeded");
            }
            prop_assert_eq!(store.len(), ids.len());
        }
        for id in &ids {
            prop_assert!(store.get(*id).is_some());
        }
    }
}
