//! Property-based tests (proptest) over the workspace's core invariants.
//!
//! Strategy-generated corpora, queries and keyword sets drive the
//! soundness properties that the hand-written tests can only spot-check:
//! index/scan agreement, bound soundness, penalty ranges, refinement
//! optimality vs the naive oracles, and serialization round trips.

use proptest::prelude::*;

use yask::index::{Augmentation, KcAug, KcRTree, RTreeParams, SetAug, SetRTree, TextualBound};
use yask::prelude::*;
use yask::query::{rank_of_scan, topk_scan, topk_tree};
use yask::server::Json;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn keyword_set(max_id: u32, max_len: usize) -> impl Strategy<Value = KeywordSet> {
    proptest::collection::vec(0..max_id, 0..=max_len)
        .prop_map(KeywordSet::from_raw)
}

#[derive(Debug, Clone)]
struct ArbCorpus {
    corpus: Corpus,
}

fn corpus(min: usize, max: usize) -> impl Strategy<Value = ArbCorpus> {
    proptest::collection::vec(
        (
            0.0f64..1.0,
            0.0f64..1.0,
            proptest::collection::vec(0u32..20, 1..=6),
        ),
        min..=max,
    )
    .prop_map(|objs| {
        let mut b = CorpusBuilder::new().with_space(Space::unit());
        for (i, (x, y, kws)) in objs.into_iter().enumerate() {
            b.push(Point::new(x, y), KeywordSet::from_raw(kws), format!("o{i}"));
        }
        ArbCorpus { corpus: b.build() }
    })
}

fn query() -> impl Strategy<Value = Query> {
    (
        0.0f64..1.0,
        0.0f64..1.0,
        proptest::collection::vec(0u32..20, 1..=4),
        1usize..=8,
        0.05f64..0.95,
    )
        .prop_map(|(x, y, kws, k, ws)| {
            Query::with_weights(
                Point::new(x, y),
                KeywordSet::from_raw(kws),
                k,
                Weights::from_ws(ws),
            )
        })
}

// ---------------------------------------------------------------------------
// KeywordSet algebra
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn keyword_set_algebra_laws(a in keyword_set(40, 10), b in keyword_set(40, 10)) {
        // |A∪B| + |A∩B| = |A| + |B|.
        prop_assert_eq!(
            a.union_size(&b) + a.intersection_size(&b),
            a.len() + b.len()
        );
        // Materialized ops agree with size ops.
        prop_assert_eq!(a.union(&b).len(), a.union_size(&b));
        prop_assert_eq!(a.intersection(&b).len(), a.intersection_size(&b));
        // Difference partitions the union.
        prop_assert_eq!(
            a.difference(&b).len() + b.difference(&a).len() + a.intersection_size(&b),
            a.union_size(&b)
        );
        // Edit distance is a metric on sets (symmetry + identity).
        prop_assert_eq!(a.edit_distance(&b), b.edit_distance(&a));
        prop_assert_eq!(a.edit_distance(&a), 0);
        // Jaccard symmetric, in [0,1].
        let j = a.jaccard(&b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, b.jaccard(&a));
    }

    #[test]
    fn edit_distance_triangle_inequality(
        a in keyword_set(15, 8),
        b in keyword_set(15, 8),
        c in keyword_set(15, 8)
    ) {
        prop_assert!(a.edit_distance(&c) <= a.edit_distance(&b) + b.edit_distance(&c));
    }
}

// ---------------------------------------------------------------------------
// Index correctness
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn topk_matches_scan_on_arbitrary_corpora(c in corpus(1, 120), q in query()) {
        let params = ScoreParams::new(c.corpus.space());
        let tree = SetRTree::bulk_load(c.corpus.clone(), RTreeParams::new(4, 2));
        tree.validate().unwrap();
        let got: Vec<ObjectId> =
            topk_tree(&tree, &params, &q).iter().map(|r| r.id).collect();
        let want: Vec<ObjectId> =
            topk_scan(&c.corpus, &params, &q).iter().map(|r| r.id).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn node_bounds_are_sound_for_random_nodes(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u32..15, 1..=6), 1..=10
        ),
        q in keyword_set(15, 4)
    ) {
        let mut b = CorpusBuilder::new();
        for (i, kws) in docs.iter().enumerate() {
            b.push(Point::new(i as f64, 0.0), KeywordSet::from_raw(kws.clone()), format!("o{i}"));
        }
        let corpus = b.build();
        let objs: Vec<&yask::index::SpatioTextualObject> = corpus.iter().collect();
        let set = SetAug::for_leaf(&objs);
        let kc = KcAug::for_leaf(&objs);
        for model in SimilarityModel::ALL {
            for (aug_name, lb, ub) in [
                ("set", set.sim_lower(&q, model), set.sim_upper(&q, model)),
                ("kc", kc.sim_lower(&q, model), kc.sim_upper(&q, model)),
            ] {
                prop_assert!(lb <= ub + 1e-12, "{} {:?}", aug_name, model);
                for o in &objs {
                    let s = model.similarity(&q, &o.doc);
                    prop_assert!(s <= ub + 1e-12, "{} {:?}: {} > {}", aug_name, model, s, ub);
                    prop_assert!(s + 1e-12 >= lb, "{} {:?}: {} < {}", aug_name, model, s, lb);
                }
            }
        }
    }

    #[test]
    fn insertion_and_bulk_load_index_the_same_set(c in corpus(1, 80)) {
        let bulk = SetRTree::bulk_load(c.corpus.clone(), RTreeParams::new(4, 2));
        let dynamic = SetRTree::build_by_insertion(c.corpus.clone(), RTreeParams::new(4, 2));
        bulk.validate().unwrap();
        dynamic.validate().unwrap();
        let mut a = bulk.object_ids();
        let mut b = dynamic.object_ids();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Why-not refinement optimality and validity
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn preference_refinement_is_valid_and_optimal_vs_naive(
        c in corpus(20, 80),
        q in query(),
        lambda in 0.0f64..=1.0,
        offset in 0usize..5
    ) {
        let corpus = &c.corpus;
        let params = ScoreParams::new(corpus.space());
        prop_assume!(corpus.len() > q.k + offset + 1);
        let missing = yask::data::pick_missing(corpus, &params, &q, 1, offset);

        let fast = yask::core::refine_preference(corpus, &params, &q, &missing, lambda);
        let slow = yask::core::refine_preference_naive(corpus, &params, &q, &missing, lambda);
        match (fast, slow) {
            (Ok(f), Ok(s)) => {
                prop_assert!((f.penalty - s.penalty).abs() < 1e-9,
                    "sweep {} vs naive {}", f.penalty, s.penalty);
                // Validity: the refined query revives the missing object.
                let res = topk_scan(corpus, &params, &f.query);
                prop_assert!(res.iter().any(|r| r.id == missing[0]));
                prop_assert!((0.0..=1.0 + 1e-9).contains(&f.penalty));
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "disagree: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    #[test]
    fn keyword_refinement_is_valid_and_optimal_vs_naive(
        c in corpus(20, 60),
        q in query(),
        lambda in 0.05f64..=0.95,
        offset in 0usize..4
    ) {
        let corpus = &c.corpus;
        let params = ScoreParams::new(corpus.space());
        prop_assume!(corpus.len() > q.k + offset + 1);
        let missing = yask::data::pick_missing(corpus, &params, &q, 1, offset);
        let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(4, 2));

        let fast = yask::core::refine_keywords(&tree, &params, &q, &missing, lambda);
        let slow = yask::core::refine_keywords_naive(corpus, &params, &q, &missing, lambda);
        match (fast, slow) {
            (Ok(f), Ok(s)) => {
                prop_assert!((f.penalty - s.penalty).abs() < 1e-9,
                    "prune {} vs naive {}", f.penalty, s.penalty);
                prop_assert_eq!(&f.query.doc, &s.query.doc);
                let res = topk_scan(corpus, &params, &f.query);
                prop_assert!(res.iter().any(|r| r.id == missing[0]));
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "disagree: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    #[test]
    fn explanation_ranks_are_exact(c in corpus(5, 60), q in query(), idx in 0usize..60) {
        let corpus = &c.corpus;
        prop_assume!(idx < corpus.len());
        let params = ScoreParams::new(corpus.space());
        let target = ObjectId(idx as u32);
        let ex = yask::core::explain(corpus, &params, &q, &[target]).unwrap();
        prop_assert_eq!(ex[0].rank, rank_of_scan(corpus, &params, &q, target));
        let in_result = ex[0].rank <= q.k;
        prop_assert_eq!(matches!(ex[0].reason, MissingReason::InResult), in_result);
    }
}

// ---------------------------------------------------------------------------
// JSON round trips
// ---------------------------------------------------------------------------

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1.0e9f64..1.0e9).prop_map(|v| Json::Num((v * 1000.0).round() / 1000.0)),
        "[a-zA-Z0-9 _\\-\"\\\\/\u{00e9}\u{4e16}]{0,20}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..6).prop_map(|pairs| {
                // Deduplicate keys so parse(print(x)) == x.
                let mut seen = std::collections::HashSet::new();
                Json::Obj(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_print_parse_round_trip(v in arb_json()) {
        let text = v.to_string();
        let parsed = Json::parse(&text).unwrap();
        prop_assert_eq!(parsed, v);
    }
}

// ---------------------------------------------------------------------------
// Penalty function ranges
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn penalties_always_in_unit_interval(
        k0 in 1usize..50,
        gap in 1usize..100,
        lambda in 0.0f64..=1.0,
        ws0 in 0.0f64..=1.0,
        ws1 in 0.0f64..=1.0,
        dd in 0usize..20,
        r_new_frac in 0.0f64..=1.0
    ) {
        let r_m_q = k0 + gap;
        let ctx = yask::core::PenaltyContext::new(k0, r_m_q, lambda);
        // r_new anywhere between 1 and R(M,q).
        let r_new = 1 + ((r_m_q - 1) as f64 * r_new_frac) as usize;
        let w0 = Weights::from_ws(ws0);
        let w1 = Weights::from_ws(ws1);
        let p = yask::core::preference_penalty(&ctx, &w0, &w1, r_new);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "pref {}", p);
        let norm = (dd + 5).max(1);
        let p = yask::core::keyword_penalty(&ctx, dd.min(norm), norm, r_new);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "kw {}", p);
    }
}
