//! Integration tests over a real TCP server: the browser–server loop of
//! the demo (query → why-not → refine → close) across the wire.

use std::sync::Arc;

use yask::server::{http_get, http_post, HttpServer, Json, YaskService};

fn spawn_demo() -> (yask::server::ServerHandle, Arc<YaskService>) {
    let service = Arc::new(YaskService::hk_demo());
    let server = HttpServer::spawn(0, 4, service.clone().into_handler()).expect("bind");
    (server, service)
}

fn query_payload(k: usize) -> Json {
    Json::obj([
        ("x", Json::Num(114.172)),
        ("y", Json::Num(22.297)),
        (
            "keywords",
            Json::Arr(vec![Json::str("clean"), Json::str("wifi")]),
        ),
        ("k", Json::Num(k as f64)),
    ])
}

#[test]
fn health_over_the_wire() {
    let (server, _service) = spawn_demo();
    let (status, body) = http_get(server.addr(), "/health").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body.get("objects").unwrap().as_usize(), Some(539));
}

#[test]
fn full_demo_loop_over_tcp() {
    let (server, service) = spawn_demo();
    let addr = server.addr();

    let (status, reply) = http_post(addr, "/query", &query_payload(3)).unwrap();
    assert_eq!(status, 200, "{reply}");
    let session = reply.get("session").unwrap().as_f64().unwrap();
    let top: Vec<String> = reply
        .get("results")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r.get("name").unwrap().as_str().unwrap().to_owned())
        .collect();
    assert_eq!(top.len(), 3);

    let missing = service
        .engine()
        .corpus()
        .iter()
        .map(|o| o.name.clone())
        .find(|n| !top.contains(n))
        .unwrap();

    let whynot_body = Json::obj([
        ("session", Json::Num(session)),
        ("missing", Json::Arr(vec![Json::str(missing.clone())])),
        ("lambda", Json::Num(0.4)),
    ]);
    for path in ["/whynot/explain", "/whynot/preference", "/whynot/keywords"] {
        let (status, reply) = http_post(addr, path, &whynot_body).unwrap();
        assert_eq!(status, 200, "{path}: {reply}");
    }

    let (status, reply) = http_post(
        addr,
        "/session/close",
        &Json::obj([("session", Json::Num(session))]),
    )
    .unwrap();
    assert_eq!(status, 200);
    assert_eq!(reply.get("closed").unwrap().as_bool(), Some(true));

    // Session is gone: follow-up why-not questions are rejected.
    let (status, _) = http_post(addr, "/whynot/explain", &whynot_body).unwrap();
    assert_eq!(status, 410);
}

#[test]
fn concurrent_sessions_are_isolated() {
    let (server, _service) = spawn_demo();
    let addr = server.addr();
    let mut handles = Vec::new();
    for t in 0..6 {
        handles.push(std::thread::spawn(move || {
            let (status, reply) = http_post(addr, "/query", &query_payload(2 + t % 3)).unwrap();
            assert_eq!(status, 200);
            reply.get("session").unwrap().as_f64().unwrap() as u64
        }));
    }
    let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "sessions must not collide");
}

#[test]
fn malformed_requests_are_rejected_not_crashing() {
    let (server, _service) = spawn_demo();
    let addr = server.addr();
    // Bad JSON.
    let (status, body) = http_post(addr, "/query", &Json::str("just a string")).unwrap();
    assert_eq!(status, 400, "{body}");
    // Unknown path.
    let (status, _) = http_get(addr, "/wat").unwrap();
    assert_eq!(status, 404);
    // Raw garbage over the socket: server answers 400 and stays alive.
    {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
    }
    let (status, _) = http_get(addr, "/health").unwrap();
    assert_eq!(status, 200, "server must survive garbage input");
}

#[test]
fn keep_alive_connection_serves_a_full_session() {
    use std::io::{BufRead, BufReader, Read, Write};

    let (server, _service) = spawn_demo();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let round_trip = |stream: &mut std::net::TcpStream,
                          reader: &mut BufReader<std::net::TcpStream>,
                          method: &str,
                          path: &str,
                          body: &str|
     -> (u16, String, Json) {
        let req = format!(
            "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes()).unwrap();
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut connection = String::new();
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            reader.read_line(&mut h).unwrap();
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                match k.trim().to_ascii_lowercase().as_str() {
                    "connection" => connection = v.trim().to_owned(),
                    "content-length" => content_length = v.trim().parse().unwrap(),
                    _ => {}
                }
            }
        }
        let mut raw = vec![0u8; content_length];
        reader.read_exact(&mut raw).unwrap();
        let json = Json::parse(std::str::from_utf8(&raw).unwrap()).unwrap();
        (status, connection, json)
    };

    // The whole demo loop — query, explain, close — over ONE connection.
    let (status, connection, reply) = round_trip(
        &mut stream,
        &mut reader,
        "POST",
        "/query",
        &query_payload(3).to_string(),
    );
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive", "HTTP/1.1 defaults to keep-alive");
    let session = reply.get("session").unwrap().as_f64().unwrap();

    let (status, connection, reply) = round_trip(
        &mut stream,
        &mut reader,
        "POST",
        "/session/close",
        &Json::obj([("session", Json::Num(session))]).to_string(),
    );
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive");
    assert_eq!(reply.get("closed").unwrap().as_bool(), Some(true));

    let (status, _, body) = round_trip(&mut stream, &mut reader, "GET", "/health", "");
    assert_eq!(status, 200);
    assert_eq!(body.get("objects").unwrap().as_usize(), Some(539));
}

#[test]
fn unknown_hotel_name_is_a_clean_400() {
    let (server, _service) = spawn_demo();
    let addr = server.addr();
    let (_, reply) = http_post(addr, "/query", &query_payload(3)).unwrap();
    let session = reply.get("session").unwrap().as_f64().unwrap();
    let (status, reply) = http_post(
        addr,
        "/whynot/explain",
        &Json::obj([
            ("session", Json::Num(session)),
            ("missing", Json::Arr(vec![Json::str("Hotel Nonexistent")])),
        ]),
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(reply
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("Nonexistent"));
}
