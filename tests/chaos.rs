//! The fault-injection (chaos) suite — ISSUE 9 acceptance.
//!
//! Every test arms `yask::util::failpoint` hooks compiled into the
//! fragile paths (WAL two-phase commit, checkpoint rename dance, pager
//! I/O, shard scatter jobs) and asserts the *oracle invariant* the
//! subsystem advertises: a failed WAL commit is invisible to replay, a
//! failed checkpoint leaves the previous one intact, a dead or stalled
//! shard never corrupts a top-k answer, an expired deadline never leaks
//! pool workers, and an overloaded server sheds — then recovers — on
//! its own.
//!
//! The suite is **opt-in**: it runs only with `YASK_CHAOS=1` (CI has a
//! dedicated job) because the tests sleep through real overload windows
//! and serialize on the global failpoint registry. Without the variable
//! every test passes as a no-op skip, so `cargo test` stays fast and
//! deterministic. Failpoints are compiled out in release, so the suite
//! also skips itself under `--release`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use yask::exec::{Deadline, TopKOutcome};
use yask::ingest::{checkpoint_path, CheckpointConfig};
use yask::pager::load_checkpoint;
use yask::prelude::*;
use yask::query::topk_scan;
use yask::server::api::OverloadConfig;
use yask::server::{
    http_get, http_post, http_post_retry, http_post_with_headers, HttpServer, Json, RetryPolicy,
    ServiceConfig, YaskService,
};
use yask::util::failpoint;

// --- harness ------------------------------------------------------------

static SERIAL: Mutex<()> = Mutex::new(());

/// Serializes chaos tests (the failpoint registry is process-global) and
/// guarantees every armed point is cleared again even when an assert
/// panics mid-test.
struct ChaosGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        failpoint::clear_all();
    }
}

fn chaos() -> Option<ChaosGuard> {
    if std::env::var("YASK_CHAOS").ok().as_deref() != Some("1") {
        eprintln!("chaos test skipped: set YASK_CHAOS=1 to run");
        return None;
    }
    if !cfg!(debug_assertions) {
        eprintln!("chaos test skipped: failpoints are compiled out in release builds");
        return None;
    }
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear_all();
    Some(ChaosGuard(guard))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("yask-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn small_corpus(n: usize) -> Corpus {
    let mut b = CorpusBuilder::with_capacity(n).with_space(Space::unit());
    for i in 0..n {
        let x = (i as f64 * 0.137).fract();
        let y = (i as f64 * 0.311).fract();
        let doc = KeywordSet::from_raw([(i % 7) as u32, ((i + 3) % 7) as u32]);
        b.push(Point::new(x, y), doc, format!("seed{i}"));
    }
    b.build()
}

fn insert(name: &str) -> Vec<Update> {
    vec![Update::Insert(NewObject::new(
        Point::new(0.5, 0.5),
        KeywordSet::from_raw([1, 2]),
        name,
    ))]
}

fn live_names(corpus: &Corpus) -> Vec<String> {
    corpus.iter().map(|o| o.name.clone()).collect()
}

fn exec_config(shards: usize) -> ExecConfig {
    // Caches off: every query must actually scatter, or the fault under
    // test is papered over by a cache hit.
    ExecConfig {
        shards,
        topk_cache: 0,
        answer_cache: 0,
        ..ExecConfig::default()
    }
}

// --- WAL commit faults --------------------------------------------------

#[test]
fn wal_fsync_error_rejects_the_batch_and_preserves_the_log() {
    let Some(_g) = chaos() else { return };
    let wal = tmp("fsync.wal");
    let seed = small_corpus(40);
    let exec = Executor::new(seed.clone(), exec_config(2));
    let ing = Ingestor::with_wal(seed.clone(), &wal).unwrap();

    ing.apply(&exec, &insert("alpha")).unwrap();
    assert_eq!(ing.epoch(), 1);

    // The payload fsync fails once: the batch must be rejected whole —
    // no epoch, no corpus change, nothing for replay to see.
    failpoint::cfg_times("wal.sync.payload", failpoint::Action::Error, 1);
    assert!(ing.apply(&exec, &insert("beta")).is_err());
    assert_eq!(ing.epoch(), 1);
    assert!(!live_names(&ing.corpus()).contains(&"beta".to_string()));
    assert!(failpoint::hits("wal.sync.payload") >= 1);

    // The commit is idempotent at the old tail: a plain retry lands the
    // same batch cleanly.
    ing.apply(&exec, &insert("beta")).unwrap();
    assert_eq!(ing.epoch(), 2);

    // Restart oracle: replay reproduces exactly the committed epochs.
    drop(ing);
    let reopened = Ingestor::with_wal(seed, &wal).unwrap();
    assert_eq!(reopened.epoch(), 2);
    let names = live_names(&reopened.corpus());
    assert!(names.contains(&"alpha".to_string()));
    assert!(names.contains(&"beta".to_string()));
    std::fs::remove_file(&wal).ok();
}

#[test]
fn torn_wal_tail_is_invisible_to_replay() {
    let Some(_g) = chaos() else { return };
    let wal = tmp("torn.wal");
    let seed = small_corpus(40);
    let exec = Executor::new(seed.clone(), exec_config(2));
    let ing = Ingestor::with_wal(seed.clone(), &wal).unwrap();
    ing.apply(&exec, &insert("alpha")).unwrap();

    // Phase 1 (payload write + sync) succeeds, phase 2 (header publish)
    // fails: the record's bytes ARE on disk past the committed tail —
    // the torn-rename analogue for the log. Replay must stop at the
    // last published header and never surface the torn record.
    failpoint::cfg_times("wal.write.header", failpoint::Action::Error, 1);
    assert!(ing.apply(&exec, &insert("torn")).is_err());
    drop(ing); // simulated crash: no retry, straight to recovery

    let reopened = Ingestor::with_wal(seed.clone(), &wal).unwrap();
    assert_eq!(reopened.epoch(), 1, "torn tail must not replay");
    assert!(!live_names(&reopened.corpus()).contains(&"torn".to_string()));

    // The recovered log is writable: the next commit overwrites the
    // torn bytes at the same offset.
    let exec2 = Executor::new_at_epoch(reopened.corpus(), exec_config(2), reopened.epoch());
    reopened.apply(&exec2, &insert("gamma")).unwrap();
    assert_eq!(reopened.epoch(), 2);
    drop(reopened);
    let again = Ingestor::with_wal(seed, &wal).unwrap();
    assert_eq!(again.epoch(), 2);
    assert!(live_names(&again.corpus()).contains(&"gamma".to_string()));
    std::fs::remove_file(&wal).ok();
}

#[test]
fn panic_during_wal_append_is_survivable_and_recoverable() {
    let Some(_g) = chaos() else { return };
    let wal = tmp("panic.wal");
    let seed = small_corpus(40);
    let exec = Executor::new(seed.clone(), exec_config(2));
    let ing = Ingestor::with_wal(seed.clone(), &wal).unwrap();
    ing.apply(&exec, &insert("alpha")).unwrap();

    // A worker crashes inside the append (before any byte is written).
    failpoint::cfg_times("wal.write.payload", failpoint::Action::Panic, 1);
    let result = catch_unwind(AssertUnwindSafe(|| ing.apply(&exec, &insert("boom"))));
    assert!(result.is_err(), "armed panic point must unwind");

    // The ingestor survives the unwind (locks are poison-transparent)
    // and the panicked batch left no trace.
    assert_eq!(ing.epoch(), 1);
    ing.apply(&exec, &insert("beta")).unwrap();
    assert_eq!(ing.epoch(), 2);

    drop(ing);
    let reopened = Ingestor::with_wal(seed, &wal).unwrap();
    assert_eq!(reopened.epoch(), 2);
    let names = live_names(&reopened.corpus());
    assert!(names.contains(&"beta".to_string()));
    assert!(!names.contains(&"boom".to_string()));
    std::fs::remove_file(&wal).ok();
}

// --- checkpoint faults --------------------------------------------------

#[test]
fn checkpoint_faults_leave_the_previous_checkpoint_intact() {
    let Some(_g) = chaos() else { return };
    let wal = tmp("ckpt.wal");
    let ckpt = checkpoint_path(&wal);
    let _ = std::fs::remove_file(&ckpt);
    let seed = small_corpus(40);
    let exec = Executor::new(seed.clone(), exec_config(2));
    let ing = Ingestor::with_wal_config(seed.clone(), &wal, CheckpointConfig::disabled()).unwrap();
    ing.apply(&exec, &insert("alpha")).unwrap();
    ing.apply(&exec, &insert("beta")).unwrap();
    ing.checkpoint_now().unwrap();
    assert_eq!(load_checkpoint(&ckpt).unwrap().unwrap().epoch, 2);

    ing.apply(&exec, &insert("gamma")).unwrap();

    // Fault the two steps *before* the rename lands: after either
    // failure the previous checkpoint must still load at its old epoch.
    for point in ["checkpoint.tmp.sync", "checkpoint.rename"] {
        failpoint::cfg_times(point, failpoint::Action::Error, 1);
        assert!(ing.checkpoint_now().is_err(), "{point} must fail the save");
        let survivor = load_checkpoint(&ckpt).unwrap().unwrap();
        assert_eq!(survivor.epoch, 2, "{point} clobbered the old checkpoint");
        assert_eq!(survivor.corpus.len(), seed.len() + 2);
    }

    // The directory sync fires *after* the rename: the new snapshot is
    // visible, but its rename is unanchored — the save must report the
    // error so the log is NOT truncated on its strength.
    let batches_before = ing.wal_stats().unwrap().batches;
    failpoint::cfg_times("checkpoint.dirsync", failpoint::Action::Error, 1);
    assert!(ing.checkpoint_now().is_err(), "dirsync failure must surface");
    assert_eq!(
        ing.wal_stats().unwrap().batches,
        batches_before,
        "log truncated on an unanchored rename"
    );

    // Faults cleared: the save lands and the snapshot advances.
    assert_eq!(ing.checkpoint_now().unwrap(), 3);
    assert_eq!(load_checkpoint(&ckpt).unwrap().unwrap().epoch, 3);

    // Recovery from the fresh checkpoint + empty tail reproduces state.
    drop(ing);
    let reopened = Ingestor::with_wal(seed, &wal).unwrap();
    assert_eq!(reopened.epoch(), 3);
    assert!(live_names(&reopened.corpus()).contains(&"gamma".to_string()));
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(&ckpt).ok();
}

// --- shard scatter faults -----------------------------------------------

#[test]
fn shard_error_falls_back_to_the_exact_scan() {
    let Some(_g) = chaos() else { return };
    let (corpus, _vocab) = yask::data::hk_hotels();
    let params = ScoreParams::new(corpus.space());
    let exec = Executor::new(corpus.clone(), exec_config(4));
    let q = Query::new(Point::new(114.17, 22.30), KeywordSet::from_raw([0, 1]), 5);
    let want: Vec<ObjectId> = topk_scan(&corpus, &params, &q).iter().map(|r| r.id).collect();

    // One shard drops its reply: the gather comes up short and the
    // executor must fall back to the exact scan — same answer, no hole.
    failpoint::cfg_times("exec.shard", failpoint::Action::Error, 1);
    let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
    assert_eq!(got, want, "fallback answer diverged from the scan oracle");
    assert!(failpoint::hits("exec.shard") >= 1, "failpoint never fired");

    // And with the fault gone the scatter path agrees too.
    let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
    assert_eq!(got, want);
}

#[test]
fn shard_panic_leaves_the_pool_alive() {
    let Some(_g) = chaos() else { return };
    let (corpus, _vocab) = yask::data::hk_hotels();
    let params = ScoreParams::new(corpus.space());
    let exec = Executor::new(corpus.clone(), exec_config(4));
    let q = Query::new(Point::new(114.17, 22.30), KeywordSet::from_raw([0, 1]), 5);
    let want: Vec<ObjectId> = topk_scan(&corpus, &params, &q).iter().map(|r| r.id).collect();

    // A shard job panics mid-query. The pool's catch_unwind absorbs it,
    // the gather comes up short, the caller falls back to the scan.
    failpoint::cfg_times("exec.shard", failpoint::Action::Panic, 1);
    let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
    assert_eq!(got, want);

    // The pool survived: every worker still answers, repeatedly.
    for _ in 0..8 {
        let got: Vec<ObjectId> = exec.top_k(&q).iter().map(|r| r.id).collect();
        assert_eq!(got, want, "pool lost workers after a shard panic");
    }
}

#[test]
fn expired_deadlines_mid_scatter_leak_no_workers() {
    let Some(_g) = chaos() else { return };
    let (corpus, _vocab) = yask::data::hk_hotels();
    let params = ScoreParams::new(corpus.space());
    let exec = Executor::new(corpus.clone(), exec_config(4));
    let handle = exec.engine();
    let q = Query::new(Point::new(114.17, 22.30), KeywordSet::from_raw([0, 1]), 5);

    // Stalled shards + a 1 ms budget: every query comes back partial.
    failpoint::cfg("exec.shard", failpoint::Action::Delay(15));
    for _ in 0..6 {
        let TopKOutcome { complete, .. } = exec.top_k_deadline_on_traced(
            &handle,
            &q,
            None,
            Some(Deadline::after(Duration::from_millis(1))),
        );
        assert!(!complete, "a 1ms budget against 15ms shard stalls must truncate");
    }
    failpoint::clear("exec.shard");

    // The regression this guards: expired deadlines must drain through
    // the pool, not strand jobs. The queue returns to empty...
    let mut drained = false;
    for _ in 0..100 {
        if exec.stats().queue_depth == 0 {
            drained = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(drained, "scatter queue never drained after deadline expiry");

    // ...and the very same pool still produces exact, complete answers.
    let want: Vec<ObjectId> = topk_scan(&corpus, &params, &q).iter().map(|r| r.id).collect();
    let out = exec.top_k_deadline_on_traced(&handle, &q, None, None);
    assert!(out.complete);
    let got: Vec<ObjectId> = out.results.iter().map(|r| r.id).collect();
    assert_eq!(got, want);
}

// --- end-to-end overload + deadline over HTTP ---------------------------

fn overload_service() -> std::sync::Arc<YaskService> {
    let (corpus, vocab) = yask::data::hk_hotels();
    // Latency trigger only (queue limit effectively infinite): any
    // top-k p99 over 5 ms in the 10 s window flips both the health
    // verdict and the admission valve to Overloaded — never Critical,
    // so the accept boundary stays open and the shed is per-route.
    let trip = OverloadConfig {
        max_queue_depth: usize::MAX,
        max_topk_p99: Duration::from_millis(5),
    };
    std::sync::Arc::new(YaskService::with_config(
        corpus,
        vocab,
        ServiceConfig {
            exec: exec_config(2),
            overload: trip,
            admission: yask::exec::AdmissionConfig {
                max_queue_depth: usize::MAX,
                max_topk_p99: Duration::from_millis(5),
                ..yask::exec::AdmissionConfig::default()
            },
            default_deadline: None,
            ..ServiceConfig::default()
        },
    ))
}

fn query_body() -> Json {
    Json::obj([
        ("x", Json::Num(114.172)),
        ("y", Json::Num(22.297)),
        (
            "keywords",
            Json::Arr(vec![Json::str("clean"), Json::str("comfortable")]),
        ),
        ("k", Json::Num(3.0)),
    ])
}

#[test]
fn overload_sheds_whynot_first_then_self_clears() {
    let Some(_g) = chaos() else { return };
    let service = overload_service();
    let server = HttpServer::spawn_with_policy(
        0,
        4,
        service.clone().into_handler(),
        service.conn_policy(),
    )
    .unwrap();
    let addr = server.addr();

    // Establish a session while healthy.
    let (status, reply) = http_post(addr, "/query", &query_body()).unwrap();
    assert_eq!(status, 200);
    let session = reply.get("session").unwrap().as_f64().unwrap();
    let missing = service
        .engine()
        .corpus()
        .iter()
        .map(|o| o.name.clone())
        .find(|n| {
            !reply.get("results").unwrap().as_array().unwrap().iter().any(|r| {
                r.get("name").unwrap().as_str() == Some(n.as_str())
            })
        })
        .unwrap();
    let whynot = Json::obj([
        ("session", Json::Num(session)),
        ("missing", Json::Arr(vec![Json::str(missing)])),
    ]);
    let (status, _) = http_post(addr, "/whynot/explain", &whynot).unwrap();
    assert_eq!(status, 200, "healthy service must answer why-not");

    // Inject the incident: stalled shards push the 10 s top-k p99 far
    // over the 5 ms trip wire.
    failpoint::cfg("exec.shard", failpoint::Action::Delay(25));
    for _ in 0..3 {
        let (status, _) = http_post(addr, "/query", &query_body()).unwrap();
        assert_eq!(status, 200);
    }
    failpoint::clear("exec.shard");

    // Why-not is the first load to drop: 429 with the Retry-After hint.
    let reply = http_post_with_headers(addr, "/whynot/explain", &whynot, &[]).unwrap();
    assert_eq!(reply.status, 429, "overloaded service must shed why-not: {:?}", reply.body);
    assert_eq!(reply.retry_after, Some(1), "shed reply must carry Retry-After");

    // The bundled client honors the hint: it sleeps and retries, and
    // while the overload persists it surfaces the final shed reply.
    let reply = http_post_retry(
        addr,
        "/whynot/explain",
        &whynot,
        &RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
    )
    .unwrap();
    assert_eq!(reply.status, 429);

    // Top-k keeps being served — admitted on the degraded budget, never
    // refused. (The response's `degraded` flag stays false when the
    // search still completes inside the budget: it marks answers that
    // are actually stale or truncated, not the admission path.)
    let (status, reply) = http_post(addr, "/query", &query_body()).unwrap();
    assert_eq!(status, 200, "top-k must survive overload");
    assert_eq!(reply.get("complete").and_then(|c| c.as_bool()), Some(true));

    // The health surface tells the same story, machine-parseably.
    let (status, health) = http_get(addr, "/debug/health").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("overloaded").unwrap().as_bool(), Some(true));
    assert_eq!(health.get("admission_level").unwrap().as_str(), Some("overloaded"));
    let reasons = health.get("reasons").unwrap().as_array().unwrap();
    assert!(reasons
        .iter()
        .any(|r| r.get("signal").unwrap().as_str() == Some("topk_p99_10s")));

    // The shed grid reached /stats and /metrics.
    let (status, stats) = http_get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let admission = stats.get("admission").unwrap();
    assert!(admission.get("shed_total").unwrap().as_f64().unwrap() >= 2.0);
    assert!(
        admission.get("degraded_admits").unwrap().as_f64().unwrap() >= 1.0,
        "the overloaded top-k must have gone through the degraded budget"
    );
    let (status, text) = yask::server::http_get_text(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(text.contains("yask_shed_total{route=\"whynot\""), "shed grid missing from /metrics");

    // Self-clear: the spike ages out of the 10 s window — no restart,
    // no counter reset — and the same why-not question is admitted.
    std::thread::sleep(Duration::from_millis(10_500));
    let (status, health) = http_get(addr, "/debug/health").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("overloaded").unwrap().as_bool(), Some(false));
    assert_eq!(health.get("admission_level").unwrap().as_str(), Some("normal"));
    let (status, _) = http_post(addr, "/whynot/explain", &whynot).unwrap();
    assert_eq!(status, 200, "the valve must reopen once the spike ages out");
}

#[test]
fn header_deadline_expiry_maps_to_504_and_is_counted() {
    let Some(_g) = chaos() else { return };
    let (corpus, vocab) = yask::data::hk_hotels();
    let service = std::sync::Arc::new(YaskService::with_config(
        corpus,
        vocab,
        ServiceConfig {
            exec: exec_config(2),
            default_deadline: None,
            ..ServiceConfig::default()
        },
    ));
    let server = HttpServer::spawn_with_policy(
        0,
        4,
        service.clone().into_handler(),
        service.conn_policy(),
    )
    .unwrap();
    let addr = server.addr();

    // Every shard stalls past the 1 ms budget: no shard finishes, so
    // the partial answer is empty and the request gets a clean 504.
    failpoint::cfg("exec.shard", failpoint::Action::Delay(25));
    let reply = http_post_with_headers(
        addr,
        "/query",
        &query_body(),
        &[("x-yask-deadline-ms", "1")],
    )
    .unwrap();
    assert_eq!(reply.status, 504, "expired deadline must be a 504: {:?}", reply.body);
    failpoint::clear("exec.shard");

    // The expiry is counted for the operator...
    let (status, stats) = http_get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let admission = stats.get("admission").unwrap();
    assert!(admission.get("deadline_exceeded").unwrap().as_f64().unwrap() >= 1.0);

    // ...and the timed-out request still left its span tree in the
    // slow-query log — the trace of a 504 is exactly the one you want.
    let (status, slow) = yask::server::http_get_text(addr, "/debug/slow").unwrap();
    assert_eq!(status, 200);
    let slow = Json::parse(&slow).unwrap();
    assert!(slow.get("recorded").unwrap().as_usize().unwrap() >= 1);

    // A generous budget on the same path completes normally.
    let reply = http_post_with_headers(
        addr,
        "/query",
        &query_body(),
        &[("x-yask-deadline-ms", "30000")],
    )
    .unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body.get("complete").and_then(|c| c.as_bool()), Some(true));
}

// --- pager faults -------------------------------------------------------

#[test]
fn pager_read_faults_surface_as_errors_not_corruption() {
    let Some(_g) = chaos() else { return };
    let path = tmp("pager.db");
    let mut f = yask::pager::PageFile::create(&path).unwrap();
    let id = f.allocate().unwrap();
    let mut data = vec![0u8; yask::pager::PAGE_SIZE];
    data[7] = 0xEE;
    f.write_page(id, &data).unwrap();

    // Reads and syncs fail loudly while armed...
    failpoint::cfg_times("pager.read", failpoint::Action::Error, 1);
    assert!(f.read_page(id).is_err());
    failpoint::cfg_times("pager.sync", failpoint::Action::Error, 1);
    assert!(f.sync().is_err());

    // ...and the stored bytes are untouched once the fault clears.
    assert_eq!(f.read_page(id).unwrap()[7], 0xEE);
    f.sync().unwrap();

    // A faulted write must not tear the page either.
    failpoint::cfg_times("pager.write", failpoint::Action::Error, 1);
    let mut other = vec![0u8; yask::pager::PAGE_SIZE];
    other[7] = 0x11;
    assert!(f.write_page(id, &other).is_err());
    assert_eq!(f.read_page(id).unwrap()[7], 0xEE, "failed write tore the page");
    std::fs::remove_file(&path).ok();
}
