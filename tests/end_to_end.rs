//! Cross-crate integration: the whole pipeline from dataset generation
//! through indexing, querying, why-not answering, and differential
//! validation of optimized vs naive refinement algorithms.

use yask::core::{refine_keywords_naive, refine_preference_naive};
use yask::data::{gen_queries, pick_missing, SynthConfig};
use yask::index::{KcRTree, RTreeParams};
use yask::prelude::*;

fn synth(n: usize, seed: u64) -> Corpus {
    SynthConfig {
        n,
        vocab: 60,
        min_doc: 2,
        max_doc: 8,
        ..SynthConfig::default()
    }
    .with_seed(seed)
    .build()
}

#[test]
fn engines_agree_on_synthetic_workload() {
    let corpus = synth(3000, 1);
    let params = ScoreParams::new(corpus.space());
    let tp = RTreeParams::new(16, 6);
    let engines: Vec<Box<dyn SpatialKeywordEngine>> = vec![
        EngineKind::SetRTree.build(corpus.clone(), params, tp),
        EngineKind::KcRTree.build(corpus.clone(), params, tp),
        EngineKind::IrTree.build(corpus.clone(), params, tp),
        EngineKind::Scan.build(corpus.clone(), params, tp),
    ];
    for q in gen_queries(&corpus, 25, 3, 10, 2) {
        let want: Vec<ObjectId> = engines[3].top_k(&q).iter().map(|r| r.id).collect();
        for e in &engines[..3] {
            let got: Vec<ObjectId> = e.top_k(&q).iter().map(|r| r.id).collect();
            assert_eq!(got, want, "{} diverged on {q:?}", e.name());
        }
    }
}

#[test]
fn optimized_refinements_match_naive_on_many_scenarios() {
    let corpus = synth(800, 3);
    let params = ScoreParams::new(corpus.space());
    let tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::new(8, 3));
    for (i, q) in gen_queries(&corpus, 8, 2, 5, 4).into_iter().enumerate() {
        let missing = pick_missing(&corpus, &params, &q, 1 + i % 3, i);
        for lambda in [0.25, 0.5, 0.75] {
            let pf = yask::core::refine_preference(&corpus, &params, &q, &missing, lambda)
                .unwrap();
            let pn = refine_preference_naive(&corpus, &params, &q, &missing, lambda).unwrap();
            assert!(
                (pf.penalty - pn.penalty).abs() < 1e-12,
                "pref scenario {i} λ={lambda}: {} vs {}",
                pf.penalty,
                pn.penalty
            );
            let kf = yask::core::refine_keywords(&tree, &params, &q, &missing, lambda).unwrap();
            let kn = refine_keywords_naive(&corpus, &params, &q, &missing, lambda).unwrap();
            assert!(
                (kf.penalty - kn.penalty).abs() < 1e-12,
                "kw scenario {i} λ={lambda}: {} vs {}",
                kf.penalty,
                kn.penalty
            );
            assert_eq!(kf.query.doc, kn.query.doc, "kw scenario {i} λ={lambda}");
        }
    }
}

#[test]
fn penalty_is_monotone_in_initial_rank_distance() {
    // The farther the missing object initially ranks, the more the
    // k-only fallback costs relative to the normalizer — but the chosen
    // optimum must never exceed the k-only penalty λ·1.
    let corpus = synth(1000, 5);
    let params = ScoreParams::new(corpus.space());
    let q = &gen_queries(&corpus, 1, 3, 5, 6)[0];
    for offset in [0usize, 10, 50, 200] {
        let missing = pick_missing(&corpus, &params, q, 1, offset);
        let r = yask::core::refine_preference(&corpus, &params, q, &missing, 0.5).unwrap();
        assert!(r.penalty <= 0.5 + 1e-12, "offset {offset}: {}", r.penalty);
        assert!(r.rank <= r.initial_rank, "refinement made the rank worse");
    }
}

#[test]
fn multi_object_whynot_covers_all_objects() {
    let (corpus, _) = yask::data::hk_hotels();
    let engine = Yask::with_defaults(corpus.clone());
    let params = engine.score_params();
    let q = Query::new(Point::new(114.17, 22.30), KeywordSet::from_raw([0, 1, 3]), 4);
    let missing = pick_missing(&corpus, &params, &q, 4, 6);
    let answer = engine.answer(&q, &missing).unwrap();
    assert_eq!(answer.explanations.len(), 4);
    // R(M, q') for the bundle is the worst revived rank.
    for refined in [&answer.preference.query, &answer.keyword.query] {
        let res = engine.top_k(refined);
        let worst = missing
            .iter()
            .map(|m| res.iter().position(|r| r.id == *m).expect("revived") + 1)
            .max()
            .unwrap();
        assert!(worst <= refined.k);
    }
}

#[test]
fn whynot_works_through_every_engine_combination() {
    // The Yask facade uses a KcR-tree; verify the preference module (pure
    // scan based) and the keyword module (tree based) agree with a
    // stand-alone reconstruction.
    let corpus = synth(500, 8);
    let engine = Yask::with_defaults(corpus.clone());
    let params = engine.score_params();
    let q = &gen_queries(&corpus, 1, 2, 5, 9)[0];
    let missing = pick_missing(&corpus, &params, q, 2, 3);

    let via_facade = engine.refine_keywords(q, &missing, 0.5).unwrap();
    let own_tree = KcRTree::bulk_load(corpus.clone(), RTreeParams::default());
    let direct = yask::core::refine_keywords(&own_tree, &params, q, &missing, 0.5).unwrap();
    assert_eq!(via_facade.query.doc, direct.query.doc);
    assert!((via_facade.penalty - direct.penalty).abs() < 1e-12);
}

#[test]
fn dynamic_index_stays_correct_under_churn() {
    // Insert/delete churn on the KcR-tree, checking top-k against scan
    // after every batch — the index invariants survive mutation.
    let corpus = synth(400, 10);
    let params = ScoreParams::new(corpus.space());
    let mut tree = KcRTree::new(corpus.clone(), RTreeParams::new(8, 3));
    let ids: Vec<ObjectId> = corpus.iter().map(|o| o.id).collect();

    // Grow in batches of 80.
    for chunk in ids.chunks(80) {
        for &id in chunk {
            tree.insert(id);
        }
        tree.validate().unwrap();
    }
    // Remove every third object.
    for &id in ids.iter().step_by(3) {
        assert!(tree.delete(id));
    }
    tree.validate().unwrap();

    let q = &gen_queries(&corpus, 1, 2, 10, 11)[0];
    let got: Vec<ObjectId> = yask::query::topk_tree(&tree, &params, q)
        .iter()
        .map(|r| r.id)
        .collect();
    // Oracle: scan over the surviving objects (step_by(3) deleted every
    // id with index ≡ 0 mod 3).
    let mut live = yask::util::TopK::new(q.k);
    for o in corpus.iter().filter(|o| o.id.index() % 3 != 0) {
        live.push(params.score(o, q), o.id);
    }
    let want: Vec<ObjectId> = live.into_sorted_vec().into_iter().map(|s| s.item).collect();
    assert_eq!(got, want);
}

#[test]
fn lambda_sweep_shapes_are_sane() {
    // E7/E9 shape: the k-term weight λ monotonically drives the optimum
    // towards (λ→1) or away from (λ→0) pure-k refinements.
    let (corpus, _) = yask::data::hk_hotels();
    let engine = Yask::with_defaults(corpus.clone());
    let params = engine.score_params();
    let q = Query::new(Point::new(114.172, 22.297), KeywordSet::from_raw([1, 2]), 3);
    let missing = pick_missing(&corpus, &params, &q, 1, 8);

    let mut prev_kw_delta_doc = usize::MAX;
    for lambda in [0.05, 0.5, 0.95] {
        let kw = engine.refine_keywords(&q, &missing, lambda).unwrap();
        // As λ grows, edits get relatively cheaper, so Δdoc can only grow
        // or stay equal along the sweep ... for the *same* scenario the
        // optimum can only move towards more edits / fewer k increases.
        assert!(kw.delta_doc == 0 || kw.delta_doc >= 1);
        if kw.delta_doc > prev_kw_delta_doc {
            // allowed: more edits at higher λ
        }
        prev_kw_delta_doc = prev_kw_delta_doc.min(kw.delta_doc);
        // λ=0 ⇒ zero penalty is always achievable (keep params, raise k).
        if lambda < 0.1 {
            let k0 = engine.refine_keywords(&q, &missing, 0.0).unwrap();
            assert_eq!(k0.penalty, 0.0);
        }
    }
}
