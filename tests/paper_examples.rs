//! Reproductions of the concrete artifacts in the paper: the Fig 2
//! KcR-tree example, the two motivating examples (§1), and the formal
//! properties of the definitions in §2.

use yask::index::{KcRTree, RTreeParams};
use yask::prelude::*;

/// Paper Fig 2: five objects in two leaves under one root, with the
/// exact keyword-count maps printed in the figure.
///
/// o1, o2 = {Chinese, restaurant}; o3 = {restaurant};
/// o4, o5 = {Spanish, restaurant}.
/// R1 = {o1,o2,o3}: Chinese 2, restaurant 3, cnt 3.
/// R2 = {o4,o5}:    Spanish 2, restaurant 2, cnt 2.
/// R3 = {R1,R2}:    Chinese 2, Spanish 2, restaurant 5, cnt 5.
#[test]
fn fig2_kcr_tree_example() {
    let mut vocab = Vocabulary::new();
    let chinese = vocab.intern("chinese");
    let restaurant = vocab.intern("restaurant");
    let spanish = vocab.intern("spanish");
    let ks = |ids: &[KeywordId]| KeywordSet::from_ids(ids.iter().copied());

    // Left cluster (o1..o3) and right cluster (o4, o5): STR with fanout 3
    // packs them into exactly the paper's two leaves.
    let mut b = CorpusBuilder::new();
    b.push(Point::new(0.10, 0.10), ks(&[chinese, restaurant]), "o1");
    b.push(Point::new(0.12, 0.30), ks(&[chinese, restaurant]), "o2");
    b.push(Point::new(0.14, 0.50), ks(&[restaurant]), "o3");
    b.push(Point::new(0.80, 0.20), ks(&[spanish, restaurant]), "o4");
    b.push(Point::new(0.82, 0.40), ks(&[spanish, restaurant]), "o5");
    let corpus = b.build();

    // Fanout 4 / min 2: STR slices the five objects by x into the paper's
    // two leaves ({o1,o2,o3} left, {o4,o5} right).
    let tree = KcRTree::bulk_load(corpus, RTreeParams::new(4, 2));
    tree.validate().unwrap();
    assert_eq!(tree.height(), 2, "one root over two leaves");

    let root = tree.node(tree.root().unwrap());
    let r3 = root.aug();
    assert_eq!(r3.cnt(), 5);
    assert_eq!(r3.count(chinese.0), 2);
    assert_eq!(r3.count(spanish.0), 2);
    assert_eq!(r3.count(restaurant.0), 5);

    let children = root.children();
    assert_eq!(children.len(), 2);
    let (mut r1, mut r2) = (None, None);
    for &c in children {
        let node = tree.node(c);
        match node.aug().cnt() {
            3 => r1 = Some(node),
            2 => r2 = Some(node),
            n => panic!("unexpected leaf size {n}"),
        }
    }
    let r1 = r1.expect("R1 leaf");
    let r2 = r2.expect("R2 leaf");
    assert_eq!(r1.aug().count(chinese.0), 2);
    assert_eq!(r1.aug().count(restaurant.0), 3);
    assert_eq!(r1.aug().count(spanish.0), 0);
    assert_eq!(r2.aug().count(spanish.0), 2);
    assert_eq!(r2.aug().count(restaurant.0), 2);
    assert_eq!(r2.aug().count(chinese.0), 0);
}

/// Paper Example 1 (Bob): the missing Starbucks is revived by preference
/// adjustment, and the refined query minimally modifies the original.
#[test]
fn example1_bob_preference_adjustment() {
    let mut vocab = Vocabulary::new();
    let mut kws =
        |words: &[&str]| KeywordSet::from_ids(words.iter().map(|w| vocab.intern(w)));
    let coffee = kws(&["coffee"]);
    let mut b = CorpusBuilder::new().with_space(Space::unit());
    b.push(Point::new(0.02, 0.01), kws(&["coffee", "espresso", "bakery", "wifi"]), "Starbucks");
    b.push(Point::new(0.30, 0.25), kws(&["coffee"]), "Corner Coffee");
    b.push(Point::new(0.35, 0.20), kws(&["coffee"]), "Java Express");
    b.push(Point::new(0.25, 0.35), kws(&["coffee"]), "Bean Scene");
    let corpus = b.build();
    let engine = Yask::with_defaults(corpus);

    // Text-heavy weights: Starbucks' diluted Jaccard loses to the
    // single-keyword cafes despite being closest.
    let q = Query::with_weights(Point::new(0.0, 0.0), coffee, 3, Weights::from_ws(0.1));
    let top = engine.top_k(&q);
    let starbucks = engine.corpus().find_by_name("Starbucks").unwrap().id;
    assert!(
        !top.iter().any(|r| r.id == starbucks),
        "fixture: Starbucks must be missing initially"
    );

    let r = engine.refine_preference(&q, &[starbucks], 0.5).unwrap();
    let revived = engine.top_k(&r.query);
    assert!(revived.iter().any(|r| r.id == starbucks));
    // The refinement shifted weight towards spatial proximity.
    assert!(
        r.query.weights.ws() > 0.1,
        "expected more spatial weight, got {}",
        r.query.weights.ws()
    );
    assert!(r.penalty <= 0.5, "penalty {} too high", r.penalty);
}

/// Paper Example 2 (Carol): the missing luxury hotel is revived by
/// keyword adaptation with a minimal edit.
#[test]
fn example2_carol_keyword_adaptation() {
    let mut vocab = Vocabulary::new();
    let mut kws =
        |words: &[&str]| KeywordSet::from_ids(words.iter().map(|w| vocab.intern(w)));
    let mut b = CorpusBuilder::new().with_space(Space::unit());
    // Local hotels described exactly as Carol queried.
    b.push(Point::new(0.10, 0.10), kws(&["clean", "comfortable"]), "Local A");
    b.push(Point::new(0.12, 0.11), kws(&["clean", "comfortable"]), "Local B");
    b.push(Point::new(0.11, 0.13), kws(&["clean", "comfortable"]), "Local C");
    // The international hotel is described by "luxury" instead.
    b.push(Point::new(0.10, 0.12), kws(&["luxury", "spa", "pool"]), "International");
    let corpus = b.build();
    let engine = Yask::with_defaults(corpus);

    let q = Query::new(Point::new(0.1, 0.1), kws(&["clean", "comfortable"]), 3);
    let top = engine.top_k(&q);
    let intl = engine.corpus().find_by_name("International").unwrap().id;
    assert!(!top.iter().any(|r| r.id == intl));

    let r = engine.refine_keywords(&q, &[intl], 0.5).unwrap();
    let revived = engine.top_k(&r.query);
    assert!(revived.iter().any(|r| r.id == intl), "refined {:?}", r.query);
    // The adapted keywords must involve the hotel's own vocabulary.
    let m_doc = &engine.corpus().get(intl).doc;
    assert!(
        r.query.doc.intersection_size(m_doc) > 0 || r.delta_doc == 0,
        "adaptation should adopt keywords describing the hotel"
    );
}

/// Definition 1: the result is exactly the k highest-scoring objects.
#[test]
fn definition1_topk_is_exact() {
    let (corpus, _) = yask::data::hk_hotels();
    let engine = Yask::with_defaults(corpus.clone());
    let params = engine.score_params();
    let q = Query::new(Point::new(114.16, 22.28), KeywordSet::from_raw([0, 5, 9]), 10);
    let top = engine.top_k(&q);
    // Every non-result object scores no better than the worst result.
    let worst = top.last().unwrap();
    for o in corpus.iter() {
        if top.iter().any(|r| r.id == o.id) {
            continue;
        }
        let s = params.score(o, &q);
        assert!(
            !ScoreParams::ranks_before(s, o.id, worst.score, worst.id),
            "object {} should have been in the result",
            o.name
        );
    }
}

/// Eqn (1) invariants: ws + wt = 1, scores within [0, 1].
#[test]
fn eqn1_score_bounds() {
    let (corpus, _) = yask::data::hk_hotels();
    let params = ScoreParams::new(corpus.space());
    for ws in [0.0, 0.3, 0.5, 0.8, 1.0] {
        let w = Weights::from_ws(ws);
        assert!((w.ws() + w.wt() - 1.0).abs() < 1e-12);
        let q = Query::with_weights(
            Point::new(114.17, 22.30),
            KeywordSet::from_raw([1, 2]),
            3,
            w,
        );
        for o in corpus.iter().take(100) {
            let s = params.score(o, &q);
            assert!((0.0..=1.0 + 1e-12).contains(&s), "score {s}");
        }
    }
}

/// Definitions 2 & 3: the refined queries of both models always contain
/// every missing object in their result.
#[test]
fn definitions_2_and_3_revival_guarantee() {
    let (corpus, vocab) = yask::data::hk_hotels();
    let engine = Yask::with_defaults(corpus.clone());
    let params = engine.score_params();
    let doc = KeywordSet::from_ids(["wifi", "harbour"].iter().map(|w| vocab.lookup(w).unwrap()));
    let q = Query::new(Point::new(114.18, 22.29), doc, 5);
    for offset in [0usize, 3, 10, 40] {
        for m_count in [1usize, 2, 3] {
            let missing = yask::data::pick_missing(&corpus, &params, &q, m_count, offset);
            let answer = engine.answer(&q, &missing).unwrap();
            for refined in [&answer.preference.query, &answer.keyword.query] {
                let res = engine.top_k(refined);
                for m in &missing {
                    assert!(
                        res.iter().any(|r| r.id == *m),
                        "offset {offset} count {m_count}: {m} not revived by {refined:?}"
                    );
                }
            }
        }
    }
}
