//! Property tests for the dynamic KcR-tree mutators (ISSUE 3 satellite):
//! an arbitrary interleaving of `insert` / `delete` followed by a top-k
//! query must equal a fresh `str_bulk_load` of the surviving objects.
//!
//! These low-level mutators were previously exercised only at the unit
//! level; the ingest layer now leans on them for every write batch, so
//! the equivalence is checked property-style here: same corpus, one tree
//! maintained incrementally, one bulk-loaded from the survivor set, and
//! both must validate and answer identically (ids, order, scores).

use proptest::prelude::*;

use yask::index::{Corpus, CorpusBuilder, KcRTree, ObjectId, RTreeParams};
use yask::query::{topk_tree, Query, ScoreParams, Weights};
use yask_geo::{Point, Space};
use yask_text::KeywordSet;

#[derive(Debug, Clone)]
struct Workload {
    corpus: Corpus,
    /// Op stream over object slots: `(slot, is_insert)`. Ops that do not
    /// apply (inserting an indexed slot, deleting an unindexed one) are
    /// skipped, so every stream is valid.
    ops: Vec<(usize, bool)>,
    query: Query,
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        proptest::collection::vec(
            (
                0.0f64..1.0,
                0.0f64..1.0,
                proptest::collection::vec(0u32..12, 1..=4),
            ),
            8..=60,
        ),
        proptest::collection::vec((0usize..60, any::<bool>()), 20..=120),
        (
            0.0f64..1.0,
            0.0f64..1.0,
            proptest::collection::vec(0u32..12, 1..=3),
            1usize..=8,
            0.1f64..0.9,
        ),
    )
        .prop_map(|(objs, ops, (qx, qy, qkw, k, ws))| {
            let mut b = CorpusBuilder::new().with_space(Space::unit());
            for (i, (x, y, kws)) in objs.into_iter().enumerate() {
                b.push(Point::new(x, y), KeywordSet::from_raw(kws), format!("o{i}"));
            }
            Workload {
                corpus: b.build(),
                ops,
                query: Query::with_weights(
                    Point::new(qx, qy),
                    KeywordSet::from_raw(qkw),
                    k,
                    Weights::from_ws(ws),
                ),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleaved insert/delete + top-k == fresh STR bulk load of the
    /// survivors.
    #[test]
    fn interleaved_mutations_equal_fresh_bulk_load(w in workload()) {
        let params = RTreeParams::new(6, 2); // small fanout: deep trees, many splits/condenses
        let n = w.corpus.len();
        let mut tree = KcRTree::new(w.corpus.clone(), params);
        let mut indexed = vec![false; n];
        for &(slot, is_insert) in &w.ops {
            let slot = slot % n;
            if is_insert && !indexed[slot] {
                tree.insert(ObjectId(slot as u32));
                indexed[slot] = true;
            } else if !is_insert && indexed[slot] {
                prop_assert!(tree.delete(ObjectId(slot as u32)));
                indexed[slot] = false;
            }
        }
        tree.validate().expect("incremental tree invariants");

        let survivors: Vec<ObjectId> = (0..n)
            .filter(|&i| indexed[i])
            .map(|i| ObjectId(i as u32))
            .collect();
        let fresh = KcRTree::bulk_load_subset(w.corpus.clone(), &survivors, params);
        fresh.validate().expect("bulk tree invariants");
        prop_assert_eq!(tree.len(), fresh.len());

        let mut a = tree.object_ids();
        let mut b = fresh.object_ids();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "indexed sets diverge");

        let score = ScoreParams::new(w.corpus.space());
        let got = topk_tree(&tree, &score, &w.query);
        let want = topk_tree(&fresh, &score, &w.query);
        prop_assert_eq!(got.len(), want.len());
        for (g, v) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, v.id, "top-k ids diverge");
            prop_assert!((g.score - v.score).abs() < 1e-12, "score drift");
        }
    }

    /// Delete-everything round trip: inserting all then deleting all in a
    /// scrambled order leaves an empty, valid tree.
    #[test]
    fn full_round_trip_empties_the_tree(w in workload()) {
        let params = RTreeParams::new(4, 2);
        let n = w.corpus.len();
        let mut tree = KcRTree::new(w.corpus.clone(), params);
        for i in 0..n {
            tree.insert(ObjectId(i as u32));
        }
        // Deletion order scrambled by the op stream.
        let mut order: Vec<usize> = (0..n).collect();
        for (pos, &(r, _)) in w.ops.iter().enumerate() {
            order.swap(pos % n, r % n);
        }
        for &i in &order {
            prop_assert!(tree.delete(ObjectId(i as u32)));
        }
        prop_assert!(tree.is_empty());
        prop_assert_eq!(tree.height(), 0);
        tree.validate().expect("empty tree invariants");
    }
}
