//! # YASK — a why-not question answering engine for spatial keyword queries
//!
//! A from-scratch Rust reproduction of *“YASK: A Why-Not Question
//! Answering Engine for Spatial Keyword Query Services”* (Chen, Xu,
//! Jensen, Li — PVLDB 9(13), VLDB 2016), including every substrate the
//! system depends on: the R-tree index family (plain, SetR-tree,
//! KcR-tree, IR-tree), the spatial keyword top-k engine, the two why-not
//! refinement models (preference adjustment and keyword adaptation), the
//! explanation generator, a disk pager, and the browser–server web
//! service.
//!
//! This crate is a facade: it re-exports the public API of the workspace
//! crates and provides the [`prelude`]. See `README.md` for a tour and
//! `DESIGN.md` for the system inventory.
//!
//! ## Quick start
//!
//! ```
//! use yask::prelude::*;
//!
//! // The demo dataset: 539 Hong Kong hotels (deterministic stand-in).
//! let (corpus, vocab) = yask::data::hk_hotels();
//! let engine = Yask::with_defaults(corpus);
//!
//! // Carol's query: top-3 hotels near the conference venue described as
//! // "clean" and "comfortable" (paper Example 2).
//! let doc = KeywordSet::from_ids(
//!     ["clean", "comfortable"].iter().map(|w| vocab.lookup(w).unwrap()),
//! );
//! let q = Query::new(Point::new(114.172, 22.297), doc, 3);
//! let top = engine.top_k(&q);
//! assert_eq!(top.len(), 3);
//!
//! // Why is some other hotel missing? Ask, and get both refinements.
//! let missing = engine.corpus().iter().map(|o| o.id)
//!     .find(|id| !top.iter().any(|r| r.id == *id)).unwrap();
//! if let Ok(answer) = engine.answer(&q, &[missing]) {
//!     assert!(answer.preference.penalty <= 1.0);
//!     assert!(answer.keyword.penalty <= 1.0);
//! }
//! ```

/// Shared utilities (ordered floats, fast hashing, heaps, RNG, stats).
pub use yask_util as util;

/// Observability kernel (latency histograms, span tracing, Prometheus
/// text exposition).
pub use yask_obs as obs;

/// Geometry substrate (points, rectangles, normalized space).
pub use yask_geo as geo;

/// Text substrate (vocabulary, keyword sets, similarity models).
pub use yask_text as text;

/// The R-tree index family (plain / SetR / KcR / IR trees).
pub use yask_index as index;

/// Disk substrate (page file, buffer pool, index persistence).
pub use yask_pager as pager;

/// The spatial keyword top-k query engine.
pub use yask_query as query;

/// The why-not engine (explanations + both refinement models).
pub use yask_core as core;

/// The execution subsystem (sharding, scatter-gather, answer caches).
pub use yask_exec as exec;

/// The ingest subsystem (live updates: epochs, WAL, write routing).
pub use yask_ingest as ingest;

/// Datasets (HK hotels stand-in, synthetic workloads).
pub use yask_data as data;

/// The browser–server web service (HTTP + JSON).
pub use yask_server as server;

/// The commonly used types in one import.
pub mod prelude {
    pub use yask_core::{
        explain, refine_combined, refine_keywords, refine_preference, CombinedRefinement,
        Explanation, MissingReason, SessionStore, WhyNotError, Yask, YaskConfig,
    };
    pub use yask_exec::{ExecConfig, ExecSnapshot, Executor, ShardedIndex};
    pub use yask_geo::{Point, Rect, Space};
    pub use yask_ingest::{IngestError, Ingestor, NewObject, Update};
    pub use yask_index::{
        Corpus, CorpusBuilder, IrTree, KcRTree, ObjectId, PlainRTree, RTreeParams, SetRTree,
    };
    pub use yask_query::{
        EngineKind, Query, RankedObject, ScoreParams, SpatialKeywordEngine, Weights,
    };
    pub use yask_text::{KeywordId, KeywordSet, SimilarityModel, Vocabulary};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_compose() {
        let (corpus, _) = crate::data::hk_hotels();
        let engine = Yask::with_defaults(corpus);
        let q = Query::new(Point::new(114.17, 22.30), KeywordSet::from_raw([0, 1]), 5);
        assert_eq!(engine.top_k(&q).len(), 5);
    }
}
