//! Minimal in-repo stand-in for the `crossbeam` crate.
//!
//! Provides the multi-producer multi-consumer unbounded channel the HTTP
//! worker pool uses, built on `Mutex` + `Condvar`. Only the surface the
//! workspace uses is implemented.

pub mod channel {
    //! MPMC channels, mirroring `crossbeam::channel`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Receiver::recv`] once the channel is closed and
    /// drained.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of an unbounded channel (cloneable: MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.queue.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks. Errors once every receiver is
        /// gone, handing the value back like real crossbeam.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).unwrap();
            }
        }

        /// Takes a value if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.0.queue.lock().unwrap().items.pop_front()
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_across_workers() {
            let (tx, rx) = unbounded::<u32>();
            let mut handles = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            for i in 0..300 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<u32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..300).collect::<Vec<_>>());
        }

        #[test]
        fn send_errors_after_last_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            let rx2 = rx.clone();
            drop(rx);
            assert_eq!(tx.send(1), Ok(()));
            drop(rx2);
            assert_eq!(tx.send(2), Err(SendError(2)));
        }

        #[test]
        fn recv_errors_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert!(rx.try_recv().is_none());
        }
    }
}
