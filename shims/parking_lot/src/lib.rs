//! Minimal in-repo stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` returns the guard directly and poisoning is transparently
//! cleared (parking_lot has no poisoning). Only the surface the workspace
//! uses is provided.

use std::sync::TryLockError;

/// A mutual exclusion primitive (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
