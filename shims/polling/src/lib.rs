//! Minimal readiness-polling shim over raw `epoll`.
//!
//! The build environment has no crates registry, so this crate stands in
//! for `mio`/`polling` with exactly the surface the YASK server's event
//! loop needs: a level-triggered [`Poller`] that registers file
//! descriptors under caller-chosen tokens, waits for readiness, and can
//! be woken from another thread via an `eventfd`.
//!
//! On Linux the implementation is raw `epoll` through `extern "C"`
//! bindings (the C library is linked by default on `*-linux-gnu`
//! targets, so no `libc` crate is needed). On every other platform the
//! same API compiles but [`Poller::new`] returns
//! [`std::io::ErrorKind::Unsupported`] and [`supported`] is `false` —
//! callers fall back to their blocking implementation.
//!
//! Semantics the server leans on:
//!
//! * **Level-triggered**: a socket that still has unread bytes (or write
//!   space) keeps reporting ready — the connection state machines never
//!   need to drain to `WouldBlock` before re-arming.
//! * **Error folding**: `EPOLLERR`/`EPOLLHUP` surface as
//!   readable-and-writable, so the owner discovers the condition through
//!   the `read`/`write` return value it must handle anyway.
//! * **Wakeups coalesce**: any number of [`Poller::notify`] calls while
//!   the loop is away collapse into one wakeup, and the wakeup itself is
//!   not reported as an [`Event`].

/// Raw file descriptor (i32 on every unix; the value is never used on
/// unsupported platforms).
pub type RawFd = i32;

/// Reserved token for the internal wakeup eventfd.
const NOTIFY_TOKEN: u64 = u64::MAX;

/// What to watch a registration for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable.
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Writable only.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Readable and writable.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (or in an error/hangup state).
    pub readable: bool,
    /// The fd is writable (or in an error/hangup state).
    pub writable: bool,
}

/// True when this platform has a working poller (Linux).
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest, RawFd, NOTIFY_TOKEN};
    use std::io;
    use std::os::raw::{c_int, c_uint, c_void};
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    // The kernel ABI packs epoll_event on x86-64 only (glibc's
    // __EPOLL_PACKED); other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Linux poller: an epoll instance plus a wakeup eventfd.
    pub struct Poller {
        epfd: c_int,
        wakefd: c_int,
    }

    // The epoll fd and eventfd are both safe to use from any thread.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let wakefd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, wakefd };
            poller.ctl(EPOLL_CTL_ADD, wakefd, EPOLLIN, NOTIFY_TOKEN)?;
            Ok(poller)
        }

        fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data: token };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            assert_ne!(token, NOTIFY_TOKEN, "token u64::MAX is reserved");
            self.ctl(EPOLL_CTL_ADD, fd, mask_of(interest), token)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            assert_ne!(token, NOTIFY_TOKEN, "token u64::MAX is reserved");
            self.ctl(EPOLL_CTL_MOD, fd, mask_of(interest), token)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            const CAP: usize = 1024;
            let mut buf = [EpollEvent { events: 0, data: 0 }; CAP];
            let timeout_ms: c_int = match timeout {
                None => -1,
                // Round up so a 1 ns timeout does not spin at 0 ms.
                Some(d) => d.as_millis().min(i32::MAX as u128) as c_int
                    + c_int::from(d.subsec_nanos() % 1_000_000 != 0),
            };
            let n = loop {
                let r = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as c_int, timeout_ms) };
                if r >= 0 {
                    break r as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            let before = events.len();
            for ev in &buf[..n] {
                let (mask, token) = (ev.events, ev.data);
                if token == NOTIFY_TOKEN {
                    self.drain_wake();
                    continue;
                }
                let failed = mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.push(Event {
                    token,
                    readable: failed || mask & EPOLLIN != 0,
                    writable: failed || mask & EPOLLOUT != 0,
                });
            }
            Ok(events.len() - before)
        }

        pub fn notify(&self) -> io::Result<()> {
            let one: u64 = 1;
            let r = unsafe { write(self.wakefd, (&one as *const u64).cast(), 8) };
            // EAGAIN means the counter is already at max: the loop is
            // guaranteed to wake, which is all notify promises.
            if r < 0 {
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }

        fn drain_wake(&self) {
            let mut counter: u64 = 0;
            unsafe { read(self.wakefd, (&mut counter as *mut u64).cast(), 8) };
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wakefd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest, RawFd};
    use std::io;
    use std::time::Duration;

    /// Stub poller for platforms without epoll: construction fails with
    /// [`io::ErrorKind::Unsupported`] and every method is unreachable.
    pub struct Poller {
        _never: std::convert::Infallible,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "polling shim: no readiness backend on this platform",
            ))
        }

        pub fn add(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            match self._never {}
        }

        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            match self._never {}
        }

        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            match self._never {}
        }

        pub fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            match self._never {}
        }

        pub fn notify(&self) -> io::Result<()> {
            match self._never {}
        }
    }
}

pub use sys::Poller;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn platform_is_supported() {
        assert!(supported());
    }

    #[test]
    fn writable_socket_reports_writable() {
        let poller = Poller::new().unwrap();
        let (client, _server) = pair();
        client.set_nonblocking(true).unwrap();
        poller.add(client.as_raw_fd(), 7, Interest::WRITABLE).unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].writable);
    }

    #[test]
    fn readable_after_peer_writes() {
        let poller = Poller::new().unwrap();
        let (client, mut server) = pair();
        client.set_nonblocking(true).unwrap();
        poller.add(client.as_raw_fd(), 3, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        // Nothing to read yet: a short wait times out empty.
        let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        server.write_all(b"ping").unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable);
    }

    #[test]
    fn modify_switches_interest() {
        let poller = Poller::new().unwrap();
        let (client, _server) = pair();
        client.set_nonblocking(true).unwrap();
        poller.add(client.as_raw_fd(), 1, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
        poller.modify(client.as_raw_fd(), 1, Interest::BOTH).unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable);
        poller.delete(client.as_raw_fd()).unwrap();
        events.clear();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
    }

    #[test]
    fn notify_wakes_wait_without_an_event() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = poller.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify().unwrap();
        });
        let start = Instant::now();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(n, 0, "the wakeup itself is not an event");
        assert!(start.elapsed() < Duration::from_secs(5), "notify must cut the wait short");
        handle.join().unwrap();
    }

    #[test]
    fn notifies_coalesce() {
        let poller = Poller::new().unwrap();
        for _ in 0..100 {
            poller.notify().unwrap();
        }
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap(), 0);
        // Drained: the next wait blocks until timeout.
        let start = Instant::now();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(40))).unwrap(), 0);
        assert!(start.elapsed() >= Duration::from_millis(35));
    }

    #[test]
    fn hangup_folds_into_readable_and_writable() {
        let poller = Poller::new().unwrap();
        let (client, server) = pair();
        client.set_nonblocking(true).unwrap();
        poller.add(client.as_raw_fd(), 9, Interest::READABLE).unwrap();
        drop(server);
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable && events[0].writable);
    }
}
