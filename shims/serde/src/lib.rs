//! Minimal in-repo stand-in for the `serde` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the tiny API slice it actually uses: the `Serialize` /
//! `Deserialize` marker traits and their derive macros. The derives generate
//! empty impls (both traits are fully defaulted), which is enough for the
//! geo types that annotate themselves `#[derive(Serialize, Deserialize)]` —
//! nothing in the workspace serializes through serde yet (the server has its
//! own JSON codec). Replacing this shim with the real crate is a one-line
//! change in the root `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (fully defaulted).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (fully defaulted; the
/// lifetime parameter of the real trait is dropped because no workspace
/// code names it).
pub trait Deserialize {}
