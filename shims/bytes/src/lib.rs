//! Minimal in-repo stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable immutable byte buffer backed by
//! `Arc<[u8]>`. Only the surface the workspace uses is provided.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns a sub-slice as a new `Bytes` (copies; the shim does not
    /// implement zero-copy slicing).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes::copy_from_slice(&self.0[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_derefs() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(b[2], 3);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.iter().sum::<u8>(), 10);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.slice(1..3), Bytes::copy_from_slice(&[2, 3]));
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}
