//! Derive macros for the in-repo `serde` shim.
//!
//! Each derive emits an empty trait impl (`impl serde::Serialize for T {}`);
//! the shim traits are fully defaulted, so that is a complete impl. Only
//! plain (non-generic) structs and enums are supported — exactly what the
//! workspace derives on. No `syn`/`quote`: the type name is recovered by a
//! direct token walk.

use proc_macro::{TokenStream, TokenTree};

/// Finds the identifier immediately after the `struct` or `enum` keyword.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

fn empty_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl("::serde::Serialize", input)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl("::serde::Deserialize", input)
}
