//! Minimal, deterministic in-repo stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! shim implements the slice of proptest the workspace's property suites use:
//!
//! - the [`Strategy`] trait with `prop_map`, `boxed`, and `prop_recursive`;
//! - strategies for numeric ranges, tuples, `Just`, [`any`], a regex-subset
//!   string strategy (`.`, `[class]`, `{m,n}` quantifiers), and
//!   [`collection::vec`];
//! - the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`, and `prop_assume!` macros;
//! - a deterministic runner: case seeds derive from a fixed base seed (or
//!   `PROPTEST_SEED`), failures print the exact case seed, and seeds listed
//!   in the checked-in regression file (`proptest-regressions/seeds.txt`, or
//!   `PROPTEST_REGRESSIONS`) replay first.
//!
//! Shrinking is intentionally not implemented — failures replay exactly via
//! their printed seed instead.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod prelude {
    //! The commonly used names, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64)
// ---------------------------------------------------------------------------

/// The per-case deterministic random source handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a case seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, func: f }
    }

    /// Type-erases the strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Builds a recursive strategy: `self` generates leaves, and `expand`
    /// turns a strategy for depth-`d` values into one for depth-`d+1`
    /// values. `depth` bounds the nesting; the size hints of the real
    /// proptest API are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = expand(current).boxed();
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.func)(self.source.generate(rng))
    }
}

/// A type-erased, cheaply cloneable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between several strategies (the engine behind
/// [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of `Self`.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Strategy for any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several magnitudes.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    lo + rng.below(span + 1) as $t
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // Interpolate via half-range so end - start cannot overflow to
        // infinity; fall back to start (always in range) when rounding
        // lands on end.
        let (half_lo, half_hi) = (self.start / 2.0, self.end / 2.0);
        let v = 2.0 * (half_lo + rng.unit_f64() * (half_hi - half_lo));
        if (self.start..self.end).contains(&v) {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Hit the endpoints occasionally; they are the interesting cases.
        match rng.below(16) {
            0 => lo,
            1 => hi,
            _ => {
                // Interpolate via half-range so hi - lo cannot overflow to
                // infinity, then clamp away interpolation rounding.
                let (half_lo, half_hi) = (lo / 2.0, hi / 2.0);
                let v = 2.0 * (half_lo + rng.unit_f64() * (half_hi - half_lo));
                v.clamp(lo, hi)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------------

/// One parsed pattern atom with its repetition bounds.
enum Atom {
    /// `.` — any printable character.
    AnyChar,
    /// `[...]` — one of an explicit alternative set.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
    let mut out = Vec::new();
    loop {
        let c = chars.next().expect("unterminated [class] in pattern");
        match c {
            ']' => break,
            '\\' => out.push(chars.next().expect("dangling escape in pattern")),
            _ => {
                if chars.peek() == Some(&'-') {
                    let mut ahead = chars.clone();
                    ahead.next();
                    match ahead.peek() {
                        Some(&hi) if hi != ']' => {
                            chars.next();
                            chars.next();
                            for v in (c as u32)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(v) {
                                    out.push(ch);
                                }
                            }
                            continue;
                        }
                        _ => {}
                    }
                }
                out.push(c);
            }
        }
    }
    assert!(!out.is_empty(), "empty [class] in pattern");
    out
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("bad {m,n} in pattern"),
            hi.trim().parse().expect("bad {m,n} in pattern"),
        ),
        None => {
            let n = spec.trim().parse().expect("bad {n} in pattern");
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyChar,
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Literal(chars.next().expect("dangling escape in pattern")),
            // Fail loudly on regex constructs the shim does not implement,
            // like the malformed-class/quantifier paths do — silently
            // treating them as literals would green-light garbage data.
            '+' | '*' | '?' | '|' | '(' | ')' => {
                panic!("proptest shim: unsupported regex construct {c:?} in pattern {pattern:?}")
            }
            _ => Atom::Literal(c),
        };
        let (lo, hi) = parse_quantifier(&mut chars);
        atoms.push((atom, lo, hi));
    }
    atoms
}

/// A few characters past ASCII so `.` exercises multi-byte text.
const EXOTIC: &[char] = &['é', 'ß', '中', '世', '界', '√', '😀', '\u{200b}', '香'];

fn gen_any_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0..=7 => (0x20 + rng.below(0x5f) as u32) as u8 as char,
        8 => EXOTIC[rng.below(EXOTIC.len() as u64) as usize],
        _ => char::from_u32(0x20 + rng.below(0x2000) as u32).unwrap_or('?'),
    }
}

/// String literals act as regex-subset strategies, mirroring proptest's
/// `&str: Strategy<Value = String>`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse_pattern(self) {
            let reps = lo as u64 + rng.below((hi - lo + 1) as u64);
            for _ in 0..reps {
                match &atom {
                    Atom::AnyChar => out.push(gen_any_char(rng)),
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Panic payload used by [`prop_assume!`] to reject a case.
pub struct Rejected;

pub mod runner {
    //! The deterministic case runner used by the `proptest!` expansion.

    use super::{ProptestConfig, Rejected, TestRng};
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Default base seed; override with `PROPTEST_SEED`.
    const BASE_SEED: u64 = 0x59_41_53_4b_20_16; // "YASK", 2016

    fn base_seed() -> u64 {
        match std::env::var("PROPTEST_SEED") {
            Ok(s) => parse_seed(&s).unwrap_or_else(|| panic!("bad PROPTEST_SEED {s:?}")),
            Err(_) => BASE_SEED,
        }
    }

    fn parse_seed(s: &str) -> Option<u64> {
        let s = s.trim();
        match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => s.parse().ok(),
        }
    }

    /// Locates the seeds file: `PROPTEST_REGRESSIONS` wins; otherwise walk
    /// up from the test crate's manifest dir (cargo sets the test binary's
    /// cwd to the package root, but member-crate suites live below the
    /// workspace root where the checked-in file is) trying
    /// `proptest-regressions/seeds.txt` at each level.
    fn regressions_file(manifest_dir: &str) -> Option<std::path::PathBuf> {
        if let Ok(p) = std::env::var("PROPTEST_REGRESSIONS") {
            return Some(p.into());
        }
        let mut dir = std::path::Path::new(manifest_dir);
        loop {
            let candidate = dir.join("proptest-regressions/seeds.txt");
            if candidate.is_file() {
                return Some(candidate);
            }
            dir = dir.parent()?;
        }
    }

    /// Loads regression case seeds for `name` from the checked-in seeds
    /// file. `name` is the fully qualified test path; file entries may use
    /// either the full path or any `::`-suffix of it.
    fn regression_seeds(name: &str, manifest_dir: &str) -> Vec<u64> {
        let Some(path) = regressions_file(manifest_dir) else {
            return Vec::new();
        };
        let path = path.display().to_string();
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("proptest shim: cannot read regressions file {path}");
            return Vec::new();
        };
        let mut seeds = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((entry_name, seed)) = line.split_once(char::is_whitespace) else {
                continue;
            };
            let matches = name == entry_name
                || (name.ends_with(entry_name)
                    && name[..name.len() - entry_name.len()].ends_with("::"));
            if matches {
                match parse_seed(seed) {
                    Some(s) => seeds.push(s),
                    None => eprintln!("proptest shim: bad seed in {path}: {line:?}"),
                }
            }
        }
        seeds
    }

    fn mix(base: u64, case: u64) -> u64 {
        // One splitmix64 round over (base ^ rotated case index).
        let mut rng = TestRng::new(base ^ case.rotate_left(17));
        rng.next_u64()
    }

    /// Runs a property test body until `config.cases` cases pass.
    ///
    /// Case seeds are `mix(base_seed, i)`; seeds from the regression file
    /// run first. `manifest_dir` is the test crate's `CARGO_MANIFEST_DIR`
    /// (the `proptest!` macro supplies it) and anchors the regression-file
    /// search. A failing case reports its seed before propagating the
    /// panic; [`Rejected`] payloads (from `prop_assume!`) skip the case.
    pub fn run<F: Fn(&mut TestRng)>(
        name: &str,
        manifest_dir: &str,
        config: ProptestConfig,
        case: F,
    ) {
        let base = base_seed();
        let mut planned: Vec<u64> = regression_seeds(name, manifest_dir);
        let max_attempts = config.cases as u64 * 20 + 100;
        let regressions = planned.len();
        planned.extend((0..max_attempts).map(|i| mix(base, i)));

        let mut passed = 0u32;
        let target = config.cases + regressions as u32;
        for (i, seed) in planned.into_iter().enumerate() {
            if passed >= target {
                break;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut TestRng::new(seed))));
            match outcome {
                Ok(()) => passed += 1,
                Err(payload) if payload.is::<Rejected>() => continue,
                Err(payload) => {
                    eprintln!(
                        "proptest shim: {name} failed at case #{i} (seed {seed:#x}).\n\
                         To replay just this case, add the line\n\
                         \t{name} {seed:#x}\n\
                         to proptest-regressions/seeds.txt."
                    );
                    resume_unwind(payload);
                }
            }
        }
        assert!(
            passed >= target,
            "{name}: only {passed}/{target} cases ran; too many prop_assume! rejections"
        );
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name($($args)*) $body $($rest)*);
    };
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    env!("CARGO_MANIFEST_DIR"),
                    config,
                    |__yask_proptest_rng| {
                        $(
                            let $arg =
                                $crate::Strategy::generate(&($strat), __yask_proptest_rng);
                        )+
                        $body
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::Rejected);
        }
    };
}

/// Uniform choice among strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::generate(&(0.25f64..=0.75), &mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn degenerate_f64_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        let lo = 1.0f64;
        let hi = 1.0f64 + f64::EPSILON; // adjacent representable floats
        for _ in 0..1000 {
            let v = Strategy::generate(&(lo..hi), &mut rng);
            assert!((lo..hi).contains(&v), "{v} outside [{lo}, {hi})");
            let w = Strategy::generate(&(1e300f64..1.7e308), &mut rng);
            assert!((1e300..1.7e308).contains(&w), "{w} outside huge range");
            // Exclusive span wider than f64::MAX must neither overflow
            // nor collapse to a single value.
            let z = Strategy::generate(&(-1e308f64..1e308), &mut rng);
            assert!(z.is_finite() && (-1e308..1e308).contains(&z), "{z} escaped");
            // Inclusive: rounding must not escape [lo, hi], and a span
            // wider than f64::MAX must not overflow to infinity.
            let x = Strategy::generate(&(0.05f64..=0.95), &mut rng);
            assert!((0.05..=0.95).contains(&x), "{x} outside inclusive range");
            let y = Strategy::generate(&(-1e308f64..=1e308), &mut rng);
            assert!(y.is_finite() && (-1e308..=1e308).contains(&y), "{y} escaped");
        }
    }

    #[test]
    fn regex_subset_patterns() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&".{0,20}", &mut rng);
            assert!(t.chars().count() <= 20);
        }
    }

    #[test]
    fn same_seed_same_value() {
        let strat = crate::collection::vec((0u32..9, 0.0f64..1.0), 0..14);
        let a = Strategy::generate(&strat, &mut TestRng::new(99));
        let b = Strategy::generate(&strat, &mut TestRng::new(99));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(v in crate::collection::vec(any::<u8>(), 0..50), x in 1usize..9) {
            prop_assume!(x != 5);
            prop_assert!(v.len() < 50);
            prop_assert_eq!(x.min(9), x, "x was {}", x);
        }
    }

    #[test]
    fn regression_seeds_replay_first() {
        use std::sync::Mutex;

        // An external PROPTEST_REGRESSIONS deliberately overrides the
        // walk-up this test exercises; replaying a seed workspace-wide
        // must not fail the shim's own suite.
        if std::env::var_os("PROPTEST_REGRESSIONS").is_some() {
            return;
        }

        // Exercise the manifest-dir walk-up (no env mutation: sibling
        // tests read the environment concurrently, and set_var during
        // getenv is UB on glibc). The seeds file sits one level above the
        // pretend manifest dir, like a workspace root above a member.
        let root = std::env::temp_dir().join(format!("proptest-shim-{}", std::process::id()));
        let manifest_dir = root.join("member");
        std::fs::create_dir_all(manifest_dir.join("src")).unwrap();
        std::fs::create_dir_all(root.join("proptest-regressions")).unwrap();
        std::fs::write(
            root.join("proptest-regressions/seeds.txt"),
            "# pinned\nsome_property 0xDEAD\nother 1\n",
        )
        .unwrap();

        let seen = Mutex::new(Vec::new());
        crate::runner::run(
            "shim::some_property",
            manifest_dir.to_str().unwrap(),
            crate::ProptestConfig::with_cases(3),
            |rng| {
                seen.lock().unwrap().push(rng.clone().next_u64());
            },
        );
        std::fs::remove_dir_all(&root).ok();

        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 4, "3 sweep cases + 1 regression seed");
        assert_eq!(
            seen[0],
            TestRng::new(0xDEAD).next_u64(),
            "the checked-in seed must replay before the sweep"
        );
    }
}
