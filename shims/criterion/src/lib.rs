//! Minimal in-repo stand-in for the `criterion` crate.
//!
//! Implements the API slice the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! calibrate-then-measure wall-clock loop instead of criterion's statistical
//! machinery. Bench binaries therefore compile and run offline; numbers are
//! mean wall-clock per iteration, good enough for coarse tracking until the
//! real crate can be vendored.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing harness passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the harness-chosen number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id for `function_name` at `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (no function name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI configuration, mirroring criterion's API.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let time = self.measurement_time;
        run_one(&name, time, None, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Caps how long one benchmark measures.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        // The shim trims criterion-scale budgets so `cargo bench` stays quick.
        self.measurement_time = time.min(Duration::from_secs(1));
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.measurement_time, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibration pass: one iteration to size the measured run.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (measurement_time.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3e} elem/s)", n as f64 * 1e9 / mean_ns),
        Throughput::Bytes(n) => format!(" ({:.3e} B/s)", n as f64 * 1e9 / mean_ns),
    });
    println!(
        "bench {name}: {mean_ns:.0} ns/iter over {iters} iters{}",
        rate.unwrap_or_default()
    );
}

/// Bundles bench functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(4));
        g.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &k| {
            b.iter(|| black_box(k * k))
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_end_to_end() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
